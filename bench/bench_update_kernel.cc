// KERNEL experiment: ingest hot-path kernels head to head — scalar
// per-function second-level evaluation vs the bit-sliced GF(2) transpose
// (SecondLevelSlice) vs the batched paths (UpdateBatch / ApplyBatch) —
// swept over s (second-level hash count) and r (bank copies).
//
// Besides the console table, the run writes a machine-readable perf
// trajectory to BENCH_update_kernel.json (override the path with
// SETSKETCH_BENCH_JSON) so successive PRs can compare ns/op per config.
// tools/check.sh smoke-runs this binary and validates the JSON.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sketch_bank.h"
#include "core/two_level_hash_sketch.h"
#include "stream/update.h"

namespace setsketch {
namespace {

constexpr size_t kBatch = 256;   ///< Updates per batched call.
constexpr size_t kPool = 16384;  ///< Prebuilt element pool (cycled).

SketchParams ParamsWithS(int s) {
  SketchParams params;
  params.levels = 32;
  params.num_second_level = s;
  return params;
}

std::vector<ElementDelta> BuildPool(uint64_t walk_start) {
  bench::ElementWalk walk(walk_start);
  std::vector<ElementDelta> pool(kPool);
  for (ElementDelta& u : pool) u = ElementDelta{walk.Next(), 1};
  return pool;
}

// --- Single-sketch second-level kernels, swept over s -------------------

void BM_UpdateScalar(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  TwoLevelHashSketch sketch(
      std::make_shared<const SketchSeed>(ParamsWithS(s), 42));
  bench::ElementWalk walk(1);
  for (auto _ : state) {
    sketch.UpdateScalar(walk.Next(), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateScalar)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_UpdateSliced(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  TwoLevelHashSketch sketch(
      std::make_shared<const SketchSeed>(ParamsWithS(s), 42));
  bench::ElementWalk walk(1);
  for (auto _ : state) {
    sketch.Update(walk.Next(), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateSliced)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_UpdateBatched(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  TwoLevelHashSketch sketch(
      std::make_shared<const SketchSeed>(ParamsWithS(s), 42));
  const std::vector<ElementDelta> pool = BuildPool(1);
  size_t pos = 0;
  for (auto _ : state) {
    sketch.UpdateBatch(std::span(pool).subspan(pos, kBatch));
    pos = (pos + kBatch) % kPool;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_UpdateBatched)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// --- Bank fan-out (all r copies of one stream), swept over r ------------
//
// Per-update Apply walks all r copies per element (r * s counter lines per
// element); ApplyBatch walks elements per copy, so each copy's counters
// stay cache-hot across the whole batch.

void BM_BankApplyPerUpdate(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  SketchBank bank(SketchFamily(ParamsWithS(32), copies, 7));
  bank.AddStream("A");
  bench::ElementWalk walk(3);
  for (auto _ : state) {
    bank.Apply("A", walk.Next(), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankApplyPerUpdate)->Arg(64)->Arg(256)->Arg(512);

void BM_BankApplyBatch(benchmark::State& state) {
  const int copies = static_cast<int>(state.range(0));
  SketchBank bank(SketchFamily(ParamsWithS(32), copies, 7));
  bank.AddStream("A");
  const std::vector<ElementDelta> pool = BuildPool(3);
  size_t pos = 0;
  for (auto _ : state) {
    bank.ApplyBatch("A", std::span(pool).subspan(pos, kBatch));
    pos = (pos + kBatch) % kPool;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_BankApplyBatch)->Arg(64)->Arg(256)->Arg(512);

// --- JSON trajectory reporter -------------------------------------------

/// Console output as usual, plus a flat JSON results file: one entry per
/// benchmark run with ns_per_op (per benchmark iteration) and
/// items_per_second (per logical update — comparable across per-update
/// and batched kernels).
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      entry.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      auto it = run.counters.find("items_per_second");
      entry.items_per_second =
          it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "{\n  \"bench\": \"update_kernel\",\n  \"results\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"name\": \"" << e.name << "\", \"iterations\": "
          << e.iterations << ", \"ns_per_op\": " << e.ns_per_op
          << ", \"items_per_second\": " << e.items_per_second << "}"
          << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Entry {
    std::string name;  // Only [A-Za-z0-9_/:] — safe to emit unescaped.
    int64_t iterations = 0;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace setsketch

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* env = std::getenv("SETSKETCH_BENCH_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_update_kernel.json";
  setsketch::JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!reporter.WriteJson(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
