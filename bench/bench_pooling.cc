// POOL ablation: strict single-level witness sampling (exactly the
// Figure 6 estimator the paper analyzes) versus pooled multi-level
// sampling (every union-singleton bucket contributes an observation; see
// WitnessOptions::pool_all_levels).
//
// Both are unbiased; pooling harvests ~1.4 observations per sketch copy
// instead of ~0.1, cutting the witness-fraction variance by roughly an
// order of magnitude for the same synopsis space. The paper's reported
// error magnitudes line up with the pooled variant, which is what the
// figure benches use.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "core/sketch_bank.h"
#include "stream/stream_generator.h"
#include "util/csv_writer.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace setsketch {
namespace {

int Run() {
  using bench::kSketchCounts;
  const bench::BenchScale scale = bench::ReadBenchScale();
  const int64_t u = scale.union_size;

  std::cout << "=== POOL: strict (Figure 6) vs pooled witness sampling ===\n"
            << "|A n B| target sweep, u = " << u << ", trials = "
            << scale.trials << ", 30% trimmed mean\n\n";

  CsvWriter csv("pooling.csv", {"mode", "target_ratio", "sketches",
                                "avg_rel_error_pct", "avg_valid_obs"});
  TablePrinter table([&] {
    std::vector<std::string> header = {"mode", "|E| target"};
    for (int count : kSketchCounts) {
      header.push_back("r=" + std::to_string(count));
    }
    return header;
  }());

  for (double ratio : {1.0 / 8.0, 1.0 / 32.0}) {
    for (bool pooled : {false, true}) {
      std::vector<std::vector<double>> errors(kSketchCounts.size());
      std::vector<double> valid(kSketchCounts.size(), 0);
      for (int t = 0; t < scale.trials; ++t) {
        const uint64_t seed = 50021 + static_cast<uint64_t>(t) * 131 +
                              static_cast<uint64_t>(ratio * 1e4);
        VennPartitionGenerator gen(2, BinaryIntersectionProbs(ratio));
        const PartitionedDataset data = gen.Generate(u, seed);
        const double exact = static_cast<double>(data.regions[3].size());

        SketchBank bank(SketchFamily(bench::FigureParams(),
                                     kSketchCounts.back(), seed ^ 0x9001));
        bank.AddStream("A");
        bank.AddStream("B");
        for (size_t mask = 1; mask < data.regions.size(); ++mask) {
          for (uint64_t e : data.regions[mask]) {
            if (mask & 1) bank.Apply("A", e, 1);
            if (mask & 2) bank.Apply("B", e, 1);
          }
        }
        const auto all_pairs = bank.Groups({"A", "B"});
        for (size_t i = 0; i < kSketchCounts.size(); ++i) {
          const std::vector<SketchGroup> pairs(
              all_pairs.begin(), all_pairs.begin() + kSketchCounts[i]);
          const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
          WitnessOptions wopts;
          wopts.pool_all_levels = pooled;
          const WitnessEstimate est =
              EstimateSetIntersection(pairs, ue.estimate, wopts);
          errors[i].push_back(est.ok ? RelativeError(est.estimate, exact)
                                     : 1.0);
          valid[i] += est.valid_observations;
        }
      }
      std::vector<std::string> row = {
          pooled ? "pooled" : "strict",
          "u/" + std::to_string(static_cast<int>(1.0 / ratio))};
      for (size_t i = 0; i < kSketchCounts.size(); ++i) {
        const double error =
            TrimmedMeanDropHighest(errors[i], bench::kTrimFraction) * 100;
        row.push_back(FormatDouble(error, 2) + "%");
        csv.AddRow(std::vector<std::string>{
            pooled ? "pooled" : "strict", FormatDouble(ratio, 6),
            std::to_string(kSketchCounts[i]), FormatDouble(error, 4),
            FormatDouble(valid[i] / scale.trials, 1)});
      }
      table.AddRow(row);
    }
  }

  table.Print(std::cout);
  std::cout << "\n(pooled should dominate strict at every r; both improve"
            << " with r)\n"
            << "csv written to pooling.csv\n\n";
  return 0;
}

}  // namespace
}  // namespace setsketch

int main() { return setsketch::Run(); }
