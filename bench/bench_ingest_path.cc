// The ingest fast path versus the legacy serving stack: loopback
// ingest of a churned two-stream workload into the full-size bank
// (copies/levels/s match bench_fault_tolerance, so rows are comparable
// across trajectories).
//
// Legacy rows reproduce the pre-fast-path system end to end: the
// thread-per-connection backend, per-frame copy-and-allocate decode,
// count-sliced 4096-update client batches, and the old default queue
// capacity (16) whose backpressure bounces leave the shard workers
// starved while the client sleeps in retry backoff. Fast rows are this
// PR's path: the epoll backend (batched reads, zero-copy frame decode,
// SIMD varint), a queue sized so admission never bounces, and the
// client batch-width sweep — ingest keeps the update kernel fed, so
// loopback cost approaches the kernel's apply floor instead of sitting
// an order of magnitude above it.
//
// Exit status enforces the fast-path speedup floor: the best fast
// wal-off row must beat the legacy wal-off baseline by at least
// SETSKETCH_INGEST_FLOOR (default 3.0; 0 disables the check), so the
// perf win cannot silently rot.
//
// Emits a JSON perf trajectory (BENCH_ingest_path.json, or the path in
// SETSKETCH_BENCH_JSON) validated by tools/validate_bench_json.py.
// Honors SETSKETCH_BENCH_SCALE (0 < scale <= 1, default 0.25).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "stream/stream_generator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace setsketch;

namespace {

struct Mode {
  std::string name;  // JSON row: "IngestPath/<name>".
  IngestBackend backend = IngestBackend::kEpoll;
  bool wal = false;
  bool fsync = false;
  size_t batch_size = 4096;
  size_t queue_capacity = 8192;
};

struct ModeResult {
  std::string name;
  double seconds = 0.0;
  double ns_per_update = 0.0;
  uint64_t bytes_read = 0;
  uint64_t read_calls = 0;
  uint64_t max_frames_per_read = 0;
};

std::string FormatJsonDouble(double value) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << value;
  return out.str();
}

}  // namespace

int main() {
  const double scale = EnvDouble("SETSKETCH_BENCH_SCALE", 0.25);
  const double floor = EnvDouble("SETSKETCH_INGEST_FLOOR", 3.0);
  const int64_t requested = static_cast<int64_t>(1200000 * scale);
  const int64_t total_updates = std::max<int64_t>(200000, requested);

  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(total_updates / 8, 99);
  std::vector<Update> updates = data.ToInsertUpdates(4);
  ChurnOptions churn;
  churn.seed = 7;
  updates = InjectChurn(updates, churn);
  const std::vector<std::string> names = {"A", "B"};

  std::cout << "ingest-path bench: " << updates.size()
            << " updates, 2 streams (scale=" << scale << ", floor=" << floor
            << "x)\n\n";

  // Legacy rows run the old system's configuration (thread-per-
  // connection backend, queue capacity 16); fast rows run this PR's
  // (epoll backend, queue sized so admission never bounces).
  const std::vector<Mode> modes = {
      {"legacy_wal_off", IngestBackend::kThreaded, false, false, 4096, 16},
      {"fast_wal_off", IngestBackend::kEpoll, false, false, 4096, 8192},
      {"legacy_wal_nofsync", IngestBackend::kThreaded, true, false, 4096,
       16},
      {"fast_wal_nofsync", IngestBackend::kEpoll, true, false, 4096, 8192},
      {"legacy_wal_fsync", IngestBackend::kThreaded, true, true, 4096, 16},
      {"fast_wal_fsync", IngestBackend::kEpoll, true, true, 4096, 8192},
      {"fast_batch_16384", IngestBackend::kEpoll, false, false, 16384,
       8192},
      {"fast_batch_65536", IngestBackend::kEpoll, false, false, 65536,
       8192},
  };
  std::vector<ModeResult> results;
  double legacy_wal_off_ns = 0.0;
  double best_fast_wal_off_ns = 0.0;
  TablePrinter table({"mode", "secs", "updates/s", "ns/update",
                      "frames/read", "bytes read"});
  for (const Mode& mode : modes) {
    const std::filesystem::path wal_dir =
        std::filesystem::temp_directory_path() /
        ("setsketch_bench_ingest_" + mode.name);
    std::filesystem::remove_all(wal_dir);

    SketchServer::Options options;
    options.params.levels = 24;
    options.params.num_second_level = 16;
    options.copies = 128;
    options.seed = 20030609;
    options.shards = 2;
    options.queue_capacity = mode.queue_capacity;
    options.witness.pool_all_levels = true;
    options.backend = mode.backend;
    if (mode.wal) {
      options.wal_dir = wal_dir.string();
      options.wal_fsync = mode.fsync;
    }
    SketchServer server(options);
    std::string error;
    if (!server.Start(&error)) {
      std::cerr << "server start failed: " << error << "\n";
      return 1;
    }
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "bench-site";
    auto client = SketchClient::Connect(client_options, &error);
    if (client == nullptr) {
      std::cerr << "connect failed: " << error << "\n";
      return 1;
    }

    Stopwatch watch;
    for (size_t begin = 0; begin < updates.size();
         begin += mode.batch_size) {
      UpdateBatch batch;
      batch.stream_names = names;
      const size_t end = std::min(updates.size(), begin + mode.batch_size);
      batch.updates.assign(updates.begin() + begin, updates.begin() + end);
      const SketchClient::Status status =
          client->PushUpdatesWithRetry(batch, 10000, 1);
      if (!status.ok) {
        std::cerr << "push failed: " << status.error << "\n";
        return 1;
      }
    }
    const double seconds = watch.Seconds();
    client->Shutdown();
    server.Wait();
    const SketchServer::StatsSnapshot stats = server.stats();
    std::filesystem::remove_all(wal_dir);
    if (stats.updates_applied != updates.size()) {
      std::cerr << mode.name << ": applied " << stats.updates_applied
                << " of " << updates.size() << " updates\n";
      return 1;
    }

    ModeResult result;
    result.name = "IngestPath/" + mode.name;
    result.seconds = seconds;
    result.ns_per_update =
        seconds * 1e9 / static_cast<double>(updates.size());
    result.bytes_read = stats.ingest_bytes_read;
    result.read_calls = stats.ingest_read_calls;
    result.max_frames_per_read = stats.ingest_max_frames_per_read;
    results.push_back(result);
    if (mode.name == "legacy_wal_off") {
      legacy_wal_off_ns = result.ns_per_update;
    }
    if (mode.backend == IngestBackend::kEpoll && !mode.wal &&
        (best_fast_wal_off_ns == 0.0 ||
         result.ns_per_update < best_fast_wal_off_ns)) {
      best_fast_wal_off_ns = result.ns_per_update;
    }
    const double frames_per_read =
        result.read_calls == 0
            ? 0.0
            : static_cast<double>(stats.frames_received) /
                  static_cast<double>(result.read_calls);
    table.AddRow(std::vector<std::string>{
        mode.name, FormatDouble(seconds, 2),
        FormatDouble(static_cast<double>(updates.size()) / seconds, 0),
        FormatDouble(result.ns_per_update, 1),
        FormatDouble(frames_per_read, 2),
        std::to_string(result.bytes_read)});
  }
  table.Print(std::cout);

  const double speedup = best_fast_wal_off_ns > 0.0
                             ? legacy_wal_off_ns / best_fast_wal_off_ns
                             : 0.0;
  std::cout << "\nfast-path speedup (legacy_wal_off / best fast wal-off): "
            << FormatDouble(speedup, 2) << "x\n";

  const char* env = std::getenv("SETSKETCH_BENCH_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_ingest_path.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"ingest_path\",\n";
  out << "  \"scale\": " << FormatJsonDouble(scale) << ",\n";
  out << "  \"updates\": " << updates.size() << ",\n";
  out << "  \"speedup\": " << FormatJsonDouble(speedup) << ",\n";
  out << "  \"floor\": " << FormatJsonDouble(floor) << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& result = results[i];
    out << "    {\"name\": \"" << result.name << "\", \"ns_per_op\": "
        << FormatJsonDouble(result.ns_per_update) << ", \"seconds\": "
        << FormatJsonDouble(result.seconds) << ", \"bytes_read\": "
        << result.bytes_read << ", \"read_calls\": " << result.read_calls
        << ", \"max_frames_per_read\": " << result.max_frames_per_read
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";

  if (floor > 0.0 && speedup < floor) {
    std::cerr << "FAIL: fast-path speedup " << FormatDouble(speedup, 2)
              << "x is below the " << FormatDouble(floor, 2)
              << "x floor\n";
    return 1;
  }
  return 0;
}
