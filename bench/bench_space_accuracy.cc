// SPACE experiment (Section 5.2's space accounting): accuracy as a
// function of synopsis bytes. The paper approximates synopsis size as
// 32 bytes per sketch for insert-only streams (bits instead of counters,
// s = 32 fixed); general update streams need O(log N)-bit counters.
//
// Protocol: Figure 7(a)-style intersection workload (|A n B| = u/8),
// sweeping the sketch count; each row reports both space accountings
// alongside the achieved error, so error-vs-bytes curves can be plotted
// for either regime.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "core/sketch_bank.h"
#include "stream/stream_generator.h"
#include "util/csv_writer.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace setsketch {
namespace {

int Run() {
  using bench::kSketchCounts;
  const bench::BenchScale scale = bench::ReadBenchScale();
  const int64_t u = scale.union_size;
  const double ratio = 1.0 / 8.0;
  const SketchParams params = bench::FigureParams();

  std::cout << "=== SPACE: accuracy vs synopsis size ===\n"
            << "|A n B| = u/8, u = " << u << ", trials = " << scale.trials
            << ", pooled witnesses\n\n";

  CsvWriter csv("space_accuracy.csv",
                {"sketches", "paper_bytes_per_stream",
                 "counter_bytes_per_stream", "avg_rel_error_pct"});
  TablePrinter table({"sketches", "paper acct (KB)", "counters (KB)",
                      "avg error"});

  std::vector<std::vector<double>> errors(kSketchCounts.size());
  for (int t = 0; t < scale.trials; ++t) {
    const uint64_t seed = 70001 + static_cast<uint64_t>(t) * 131;
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(ratio));
    const PartitionedDataset data = gen.Generate(u, seed);
    const double exact = static_cast<double>(data.regions[3].size());

    SketchBank bank(
        SketchFamily(params, kSketchCounts.back(), seed ^ 0x5ACE));
    bank.AddStream("A");
    bank.AddStream("B");
    for (size_t mask = 1; mask < data.regions.size(); ++mask) {
      for (uint64_t e : data.regions[mask]) {
        if (mask & 1) bank.Apply("A", e, 1);
        if (mask & 2) bank.Apply("B", e, 1);
      }
    }
    const auto all_pairs = bank.Groups({"A", "B"});
    for (size_t i = 0; i < kSketchCounts.size(); ++i) {
      const std::vector<SketchGroup> pairs(
          all_pairs.begin(), all_pairs.begin() + kSketchCounts[i]);
      const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
      WitnessOptions wopts;
      wopts.pool_all_levels = true;
      const WitnessEstimate est =
          EstimateSetIntersection(pairs, ue.estimate, wopts);
      errors[i].push_back(est.ok ? RelativeError(est.estimate, exact)
                                 : 1.0);
    }
  }

  for (size_t i = 0; i < kSketchCounts.size(); ++i) {
    const int r = kSketchCounts[i];
    // The paper's rough accounting: #sketches x 32 bytes (bit cells,
    // insert-only regime).
    const double paper_bytes = static_cast<double>(r) * 32.0;
    // Update-stream regime: 64-bit counters at levels x s x 2 cells.
    const double counter_bytes =
        static_cast<double>(r) * params.levels * params.num_second_level *
        2.0 * 8.0;
    const double error =
        TrimmedMeanDropHighest(errors[i], bench::kTrimFraction) * 100;
    table.AddRow(std::vector<std::string>{
        std::to_string(r), FormatDouble(paper_bytes / 1024.0, 1),
        FormatDouble(counter_bytes / 1024.0, 0),
        FormatDouble(error, 2) + "%"});
    csv.AddRow(std::vector<double>{static_cast<double>(r), paper_bytes,
                                   counter_bytes, error});
  }

  table.Print(std::cout);
  std::cout << "\ncsv written to space_accuracy.csv\n\n";
  return 0;
}

}  // namespace
}  // namespace setsketch

int main() { return setsketch::Run(); }
