// RATIO experiment (Theorems 3.4 / 3.5): with fixed synopsis space, the
// witness-based estimators' accuracy degrades as the result shrinks
// relative to the union — the space bound scales with |A u B| / |E|.
//
// Protocol: fix r = 256 sketches, sweep |A n B| from u/2 down to u/2^10
// (the paper's Section 5.1 range), report trimmed-average error and the
// witness counts that explain it.
//
// Expected shape: error grows roughly like sqrt(|union| / |E|) as the
// target shrinks; the witness count falls proportionally to |E| / u.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "core/sketch_bank.h"
#include "stream/stream_generator.h"
#include "util/csv_writer.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace setsketch {
namespace {

constexpr int kCopies = 256;

int Run() {
  const bench::BenchScale scale = bench::ReadBenchScale();
  const int64_t u = scale.union_size;

  std::cout << "=== RATIO: error vs |A n B| at fixed space (r = " << kCopies
            << ") ===\n"
            << "u = " << u << ", trials = " << scale.trials
            << ", 30% trimmed mean, pooled witnesses\n\n";

  CsvWriter csv("ratio_scaling.csv",
                {"ratio_log2", "target_size", "avg_rel_error_pct",
                 "avg_witnesses", "avg_valid_observations"});
  TablePrinter table({"|E| target", "|E| exact(avg)", "avg error",
                      "avg witnesses", "avg valid obs"});

  for (int log2_ratio = 1; log2_ratio <= 10; ++log2_ratio) {
    const double ratio = 1.0 / static_cast<double>(1LL << log2_ratio);
    std::vector<double> errors;
    double witness_sum = 0, valid_sum = 0, exact_sum = 0;
    for (int t = 0; t < scale.trials; ++t) {
      const uint64_t seed = 90001 + static_cast<uint64_t>(t) * 131 +
                            static_cast<uint64_t>(log2_ratio) * 7919;
      VennPartitionGenerator gen(2, BinaryIntersectionProbs(ratio));
      const PartitionedDataset data = gen.Generate(u, seed);
      const double exact = static_cast<double>(data.regions[3].size());
      exact_sum += exact;

      SketchBank bank(
          SketchFamily(bench::FigureParams(), kCopies, seed ^ 0xCAFE));
      bank.AddStream("A");
      bank.AddStream("B");
      for (size_t mask = 1; mask < data.regions.size(); ++mask) {
        for (uint64_t e : data.regions[mask]) {
          if (mask & 1) bank.Apply("A", e, 1);
          if (mask & 2) bank.Apply("B", e, 1);
        }
      }
      const auto pairs = bank.Groups({"A", "B"});
      const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
      WitnessOptions wopts;
      wopts.pool_all_levels = true;
      const WitnessEstimate est =
          EstimateSetIntersection(pairs, ue.estimate, wopts);
      errors.push_back(est.ok ? RelativeError(est.estimate, exact) : 1.0);
      witness_sum += est.witnesses;
      valid_sum += est.valid_observations;
    }
    const double error =
        TrimmedMeanDropHighest(errors, bench::kTrimFraction) * 100;
    table.AddRow(std::vector<std::string>{
        "u/2^" + std::to_string(log2_ratio),
        FormatDouble(exact_sum / scale.trials, 0),
        FormatDouble(error, 2) + "%",
        FormatDouble(witness_sum / scale.trials, 1),
        FormatDouble(valid_sum / scale.trials, 1)});
    csv.AddRow(std::vector<double>{
        static_cast<double>(log2_ratio), exact_sum / scale.trials, error,
        witness_sum / scale.trials, valid_sum / scale.trials});
  }

  table.Print(std::cout);
  std::cout << "\n(error should grow as |E| shrinks — the |AuB|/|E| space"
            << " dependence of Theorems 3.4/3.5)\n"
            << "csv written to ratio_scaling.csv\n\n";
  return 0;
}

}  // namespace
}  // namespace setsketch

int main() { return setsketch::Run(); }
