// Cluster-mode overhead: what routing costs on top of a single node, and
// what the router's epoch-aware summary cache buys back — plus the
// self-healing turnaround. Seven sweeps:
//   ClusterIngest/single_node        loopback pushes straight to one server,
//   ClusterIngest/router_fanout      the same pushes through the router
//                                    (3 shards, no replication),
//   ClusterIngest/router_replicated  through the router with one replica
//                                    (every update lands on two shards),
//   ClusterQuery/single_node         hot repeated queries on one server,
//   ClusterQuery/federated_cold      federated queries with a write between
//                                    each (every summary re-pulled in full),
//   ClusterQuery/federated_hot       federated repeated queries (summaries
//                                    answered kUnchanged from the router's
//                                    epoch cache),
//   ClusterRepair/time_to_readmit    kill a shard mid-ingest, restart it
//                                    empty, and time one RepairShard call:
//                                    anti-entropy transfer from healthy
//                                    replicas through verified
//                                    re-admission (1 op = 1 readmission).
//
// Emits a JSON perf trajectory (BENCH_cluster.json, or the path in
// SETSKETCH_BENCH_JSON) validated by tools/validate_bench_json.py.
// Honors SETSKETCH_BENCH_SCALE (0 < scale <= 1, default 0.25).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_router.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "stream/update.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace setsketch;

namespace {

constexpr uint64_t kMasterSeed = 20030609;
constexpr int kCopies = 64;

struct BenchResult {
  std::string name;
  double seconds = 0.0;
  double ns_per_op = 0.0;
  int64_t operations = 0;
};

std::string FormatJsonDouble(double value) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << value;
  return out.str();
}

SketchParams BenchParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  return params;
}

SketchServer::Options ShardOptions() {
  SketchServer::Options options;
  options.params = BenchParams();
  options.copies = kCopies;
  options.seed = kMasterSeed;
  options.shards = 2;
  options.witness.pool_all_levels = true;
  return options;
}

UpdateBatch MakeBatch(int index, int per_batch) {
  UpdateBatch batch;
  batch.stream_names = {"A", "B", "C"};
  batch.updates.reserve(static_cast<size_t>(per_batch));
  for (int i = 0; i < per_batch; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(index * per_batch + i) * 2654435761ULL + 3;
    batch.updates.push_back(
        Update{static_cast<StreamId>((index + i) % 3), element, 1});
  }
  return batch;
}

}  // namespace

int main() {
  const double scale = EnvDouble("SETSKETCH_BENCH_SCALE", 0.25);
  const int64_t batches =
      std::max<int64_t>(16, static_cast<int64_t>(256 * scale));
  const int per_batch = 512;
  const int64_t hot_queries =
      std::max<int64_t>(50, static_cast<int64_t>(2000 * scale));
  const int64_t cold_queries =
      std::max<int64_t>(10, static_cast<int64_t>(100 * scale));
  const std::string query_text = "(A - B) & C";

  std::cout << "cluster bench: " << batches << " batches x " << per_batch
            << " updates, " << kCopies << " copies (scale=" << scale
            << ")\n\n";

  std::vector<BenchResult> results;
  const auto record = [&results](const std::string& name, double seconds,
                                 int64_t operations) {
    BenchResult result;
    result.name = name;
    result.seconds = seconds;
    result.operations = operations;
    result.ns_per_op = seconds * 1e9 / static_cast<double>(operations);
    results.push_back(result);
  };

  const auto push_all = [&](SketchClient& client) -> bool {
    for (int64_t i = 0; i < batches; ++i) {
      if (!client.PushUpdatesWithRetry(MakeBatch(static_cast<int>(i),
                                                 per_batch))
               .ok) {
        return false;
      }
    }
    return true;
  };

  // --- single node: the baseline both router modes are measured against.
  SketchServer single(ShardOptions());
  std::string error;
  if (!single.Start(&error)) {
    std::cerr << "single-node start failed: " << error << "\n";
    return 1;
  }
  {
    auto client =
        SketchClient::Connect("127.0.0.1", single.port(), &error);
    if (client == nullptr) {
      std::cerr << "connect failed: " << error << "\n";
      return 1;
    }
    Stopwatch watch;
    if (!push_all(*client)) {
      std::cerr << "single-node push failed\n";
      return 1;
    }
    record("ClusterIngest/single_node", watch.Seconds(),
           batches * per_batch);

    if (!client->Query(query_text).ok) {
      std::cerr << "single-node warm-up query failed\n";
      return 1;
    }
    Stopwatch query_watch;
    for (int64_t i = 0; i < hot_queries; ++i) {
      if (!client->Query(query_text).ok) {
        std::cerr << "single-node query failed\n";
        return 1;
      }
    }
    record("ClusterQuery/single_node", query_watch.Seconds(), hot_queries);
  }

  // --- routed: 3 shards behind a router, without and with replication.
  std::vector<std::unique_ptr<SketchServer>> shards;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<SketchServer>(ShardOptions()));
    if (!shards.back()->Start(&error)) {
      std::cerr << "shard start failed: " << error << "\n";
      return 1;
    }
  }
  const auto route = [&shards](int replicas) {
    ClusterRouter::Options options;
    for (size_t i = 0; i < shards.size(); ++i) {
      ClusterShard shard;
      shard.name = "s" + std::to_string(i);
      shard.port = shards[i]->port();
      options.shards.push_back(shard);
    }
    options.replicas = replicas;
    options.params = BenchParams();
    options.copies = kCopies;
    options.seed = kMasterSeed;
    options.witness.pool_all_levels = true;
    return options;
  };

  for (const int replicas : {0, 1}) {
    ClusterRouter router(route(replicas));
    if (!router.Start(&error)) {
      std::cerr << "router start failed: " << error << "\n";
      return 1;
    }
    if (router.ProbeAll() != shards.size()) {
      std::cerr << "not every shard is healthy\n";
      return 1;
    }
    SketchClient::Options client_options;
    client_options.port = router.port();
    client_options.site_id = "bench-r" + std::to_string(replicas);
    auto client = SketchClient::Connect(client_options, &error);
    if (client == nullptr) {
      std::cerr << "router connect failed: " << error << "\n";
      return 1;
    }
    Stopwatch watch;
    if (!push_all(*client)) {
      std::cerr << "routed push failed\n";
      return 1;
    }
    record(replicas == 0 ? "ClusterIngest/router_fanout"
                         : "ClusterIngest/router_replicated",
           watch.Seconds(), batches * per_batch);

    if (replicas == 1) {
      // Federated query cost against the replicated deployment. Cold: a
      // one-element write between queries bumps an epoch, forcing a full
      // summary re-pull. Hot: nothing changes, the router's epoch cache
      // answers with three one-byte kUnchanged states per query.
      uint64_t element = 1;
      Stopwatch cold_watch;
      for (int64_t i = 0; i < cold_queries; ++i) {
        UpdateBatch poke;
        poke.stream_names = {"A"};
        poke.updates.push_back(
            Update{0, element++ * 0x9E3779B97F4A7C15ULL, 1});
        if (!client->PushUpdatesWithRetry(poke).ok ||
            !client->Query(query_text).ok) {
          std::cerr << "federated cold query failed\n";
          return 1;
        }
      }
      record("ClusterQuery/federated_cold", cold_watch.Seconds(),
             cold_queries);

      Stopwatch hot_watch;
      for (int64_t i = 0; i < hot_queries; ++i) {
        if (!client->Query(query_text).ok) {
          std::cerr << "federated hot query failed\n";
          return 1;
        }
      }
      record("ClusterQuery/federated_hot", hot_watch.Seconds(),
             hot_queries);

      const ClusterRouter::StatsSnapshot stats = router.stats();
      std::cout << "router STATS counters: pushes_forwarded="
                << stats.pushes_forwarded
                << " updates_forwarded=" << stats.updates_forwarded
                << " summary_pulls=" << stats.summary_pulls
                << " summary_streams_full=" << stats.summary_streams_full
                << " summary_streams_unchanged="
                << stats.summary_streams_unchanged << "\n\n";
    }
    router.Stop();
  }

  // --- self-healing: time from "the crashed shard answers again" to its
  // verified re-admission. The shard restarts EMPTY (no WAL), so the
  // repair is a full anti-entropy transfer of every stream it owns from
  // the healthy replicas, dedup watermarks included.
  {
    ClusterRouter router(route(/*replicas=*/1));
    if (!router.Start(&error) || router.ProbeAll() != shards.size()) {
      std::cerr << "repair-bench router start failed: " << error << "\n";
      return 1;
    }
    SketchClient::Options client_options;
    client_options.port = router.port();
    client_options.site_id = "bench-heal";
    auto client = SketchClient::Connect(client_options, &error);
    if (client == nullptr) {
      std::cerr << "repair-bench connect failed: " << error << "\n";
      return 1;
    }
    const int64_t heal_batches = std::max<int64_t>(8, batches / 4);
    for (int64_t i = 0; i < heal_batches; ++i) {
      if (!client->PushUpdatesWithRetry(
                     MakeBatch(static_cast<int>(i), per_batch))
               .ok) {
        std::cerr << "repair-bench push failed\n";
        return 1;
      }
    }
    const std::string owner = router.WriteTargets("A")[0];
    size_t owner_index = 0;
    for (size_t i = 0; i < router.options().shards.size(); ++i) {
      if (router.options().shards[i].name == owner) owner_index = i;
    }
    const int owner_port = shards[owner_index]->port();
    shards[owner_index]->Stop();
    for (int64_t i = heal_batches; i < 2 * heal_batches; ++i) {
      if (!client->PushUpdatesWithRetry(
                     MakeBatch(static_cast<int>(i), per_batch))
               .ok) {
        std::cerr << "repair-bench push (degraded) failed\n";
        return 1;
      }
    }
    SketchServer::Options reborn = ShardOptions();
    reborn.port = owner_port;
    shards[owner_index] = std::make_unique<SketchServer>(reborn);
    if (!shards[owner_index]->Start(&error)) {
      std::cerr << "repair-bench shard restart failed: " << error << "\n";
      return 1;
    }
    Stopwatch heal_watch;
    if (!router.RepairShard(owner, &error)) {
      std::cerr << "repair-bench repair failed: " << error << "\n";
      return 1;
    }
    record("ClusterRepair/time_to_readmit", heal_watch.Seconds(), 1);
    const ClusterRouter::StatsSnapshot stats = router.stats();
    if (stats.stale_shards != 0 || stats.readmissions < 1) {
      std::cerr << "repair-bench did not re-admit the shard\n";
      return 1;
    }
    std::cout << "self-healing counters: repairs=" << stats.repairs
              << " readmissions=" << stats.readmissions
              << " degraded_answers=" << stats.degraded_answers << "\n\n";
    router.Stop();
  }

  TablePrinter table({"mode", "ops", "secs", "ops/s", "ns/op"});
  for (const BenchResult& result : results) {
    table.AddRow(std::vector<std::string>{
        result.name, std::to_string(result.operations),
        FormatDouble(result.seconds, 3),
        FormatDouble(static_cast<double>(result.operations) /
                         result.seconds,
                     0),
        FormatDouble(result.ns_per_op, 1)});
  }
  table.Print(std::cout);

  const char* env = std::getenv("SETSKETCH_BENCH_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_cluster.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cluster\",\n";
  out << "  \"scale\": " << FormatJsonDouble(scale) << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& result = results[i];
    out << "    {\"name\": \"" << result.name << "\", \"ns_per_op\": "
        << FormatJsonDouble(result.ns_per_op) << ", \"seconds\": "
        << FormatJsonDouble(result.seconds) << ", \"operations\": "
        << result.operations << "}" << (i + 1 < results.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";

  for (const auto& shard : shards) shard->Stop();
  single.Stop();
  return 0;
}
