// Reproduces Figure 7(b): average relative error of the set-difference
// cardinality estimator |A - B| as a function of the number of 2-level
// hash sketches, for three target difference sizes.
//
// Paper result shape: small targets (|A - B| = 8192) start at ~48% error
// with few sketches; all series fall to ~10% or lower at 512 sketches.

#include "bench_common.h"

#include "stream/stream_generator.h"

int main() {
  using namespace setsketch;
  using namespace setsketch::bench;

  WitnessFigureSpec spec;
  spec.id = "FIG7B";
  spec.title = "set-difference cardinality |A - B| vs #sketches";
  spec.csv_path = "fig7b_difference.csv";
  spec.num_streams = 2;
  spec.expression = "S0 - S1";
  spec.probs_for_ratio = BinaryDifferenceProbs;
  // A - B is exactly the "A only" region (mask 1).
  spec.result_mask = [](uint32_t mask) { return mask == 1; };
  spec.ratios = {1.0 / 32.0, 1.0 / 8.0, 1.0 / 2.0};
  return RunWitnessFigure(spec);
}
