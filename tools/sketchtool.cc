// sketchtool: command-line front end for building, inspecting, merging
// and querying 2-level hash sketch banks.
//
//   sketchtool build    --updates u.txt --out bank.bin
//                       [--streams A,B,C] [--copies 128] [--seed 42]
//                       [--levels 32] [--second-level 32]
//                       [--kwise t]           (t-wise poly first level)
//   sketchtool info     --bank bank.bin
//   sketchtool merge    --inputs a.bin,b.bin[,...] --out merged.bin
//   sketchtool estimate --bank bank.bin --expr "(A - B) & C"
//                       [--strict]            (single-level witnesses)
//
// Update files are plain text: "stream element delta" per line, '#'
// comments allowed. Banks built with the same seed and parameters can be
// merged across machines (the stored-coins model).

#include <iostream>
#include <string>
#include <vector>

#include "tools/commands.h"
#include "util/flags.h"

namespace {

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) parts.push_back(text.substr(start));
      break;
    }
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

int Usage() {
  std::cerr << "usage: sketchtool <build|info|merge|estimate> [flags]\n"
               "  build    --updates FILE --out FILE [--streams A,B,..]\n"
               "           [--copies N] [--seed N] [--levels N]\n"
               "           [--second-level N] [--kwise T]\n"
               "  info     --bank FILE\n"
               "  merge    --inputs A,B[,..] --out FILE\n"
               "  estimate --bank FILE --expr EXPRESSION [--strict]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setsketch;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = Flags::Parse(argc - 1, argv + 1);

  CommandResult result;
  if (command == "build") {
    BuildSpec spec;
    spec.updates_path = flags.GetString("updates", "");
    spec.output_path = flags.GetString("out", "");
    if (spec.updates_path.empty() || spec.output_path.empty()) {
      return Usage();
    }
    spec.stream_names = SplitCommaList(flags.GetString("streams", ""));
    spec.copies = static_cast<int>(flags.GetInt("copies", 128));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    spec.params.levels = static_cast<int>(flags.GetInt("levels", 32));
    spec.params.num_second_level =
        static_cast<int>(flags.GetInt("second-level", 32));
    if (flags.Has("kwise")) {
      spec.params.first_level_kind = FirstLevelKind::kKWisePoly;
      spec.params.independence =
          static_cast<int>(flags.GetInt("kwise", 8));
    }
    result = RunBuild(spec);
  } else if (command == "info") {
    const std::string bank = flags.GetString("bank", "");
    if (bank.empty()) return Usage();
    result = RunInfo(bank);
  } else if (command == "merge") {
    const std::vector<std::string> inputs =
        SplitCommaList(flags.GetString("inputs", ""));
    const std::string out = flags.GetString("out", "");
    if (inputs.empty() || out.empty()) return Usage();
    result = RunMerge(inputs, out);
  } else if (command == "estimate") {
    const std::string bank = flags.GetString("bank", "");
    const std::string expr = flags.GetString("expr", "");
    if (bank.empty() || expr.empty()) return Usage();
    result = RunEstimate(bank, expr, !flags.GetBool("strict", false));
  } else {
    return Usage();
  }

  if (!result.ok) {
    std::cerr << "sketchtool " << command << ": " << result.error << "\n";
    return 1;
  }
  std::cout << result.output;
  return 0;
}
