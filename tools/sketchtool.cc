// sketchtool: command-line front end for building, inspecting, merging,
// querying and *serving* 2-level hash sketch banks.
//
//   sketchtool build    --updates u.txt --out bank.bin
//                       [--streams A,B,C] [--copies 128] [--seed 42]
//                       [--levels 32] [--second-level 32]
//                       [--kwise t]           (t-wise poly first level)
//   sketchtool info     --bank bank.bin
//   sketchtool merge    --inputs a.bin,b.bin[,...] --out merged.bin
//   sketchtool estimate --bank bank.bin --expr "(A - B) & C"
//                       [--strict]            (single-level witnesses)
//
// TCP serving (see src/server/):
//
//   sketchtool serve    [--port 0] [--bind 127.0.0.1] [--copies 128]
//                       [--seed 42] [--levels 32] [--second-level 32]
//                       [--shards 2] [--queue-capacity 64]
//                       [--wal-dir DIR] [--wal-shards 2] [--no-wal-fsync]
//                       [--snapshot-bytes N] [--io-timeout-ms 30000]
//                       [--idle-timeout-ms 0]
//                       [--backend epoll|threads] [--io-threads 1]
//                       [--read-chunk-bytes 262144] [--pin-shards]
//                       [--backend-sketch two_level_hash|theta_kmv|
//                        set_sketch] [--backend-size 4096]
//                       (--backend-sketch picks the synopsis registered
//                        for streams first seen WITHOUT an explicit
//                        client tag; --backend-size sizes the
//                        alternative backends. Both are part of the
//                        server's config fingerprint: peers with a
//                        different backend config are refused at hello,
//                        exactly like mismatched stored coins.)
//                       (epoll is the batched-read fast path: one io
//                        thread multiplexes all connections and decodes
//                        frames zero-copy; threads is the legacy
//                        thread-per-connection loop. --pin-shards pins
//                        shard workers and io threads to cpus)
//                       (prints "listening on <addr>:<port>", runs until
//                        `sketchtool shutdown`; with --wal-dir, accepted
//                        batches are crash-safe and a restart pointing at
//                        the same directory recovers them)
//   sketchtool push     --port P --updates u.txt [--host 127.0.0.1]
//                       [--streams A,B,C] [--batch 4096]
//                       [--batch-bytes 0] [--site ID]
//                       [--seq-start 1] [--io-timeout-ms 30000]
//                       [--connect-timeout-ms 5000]
//                       [--backend-sketch two_level_hash|theta_kmv|
//                        set_sketch]
//                       (--backend-sketch tags every stream in the push
//                        so unseen streams are registered under that
//                        synopsis; the server refuses the push if a
//                        stream already lives under a different one)
//                       (--batch-bytes slices frames by encoded payload
//                        size instead of update count — wider frames
//                        feed the server's batched ingest path)
//                       (--site makes the push idempotent: a retried or
//                        re-run push with the same site and seq-start is
//                        deduplicated, never double-counted)
//   sketchtool route    --shards H:P[,H:P...] [--port 0] [--bind ...]
//                       [--replicas 1] [--static-placement]
//                       [--virtual-nodes 64] [--placement-seed 7]
//                       [--copies 128] [--seed 42] [--levels 32]
//                       [--second-level 32] [--probe-interval-ms 0]
//                       [--io-timeout-ms 30000] [--idle-timeout-ms 0]
//                       [--shard-io-timeout-ms 10000]
//                       [--connect-timeout-ms 2000]
//                       [--read-policy strict|available]
//                       [--probe-backoff-initial-ms 100]
//                       [--probe-backoff-cap-ms 5000]
//                       [--flap-threshold 1] [--no-auto-repair]
//                       [--max-dynamic-shards 16]
//                       [--backend-sketch two_level_hash|theta_kmv|
//                        set_sketch] [--backend-size 4096]
//                       (federating router: clients push/query it like a
//                        single server; streams are placed on shards by a
//                        seeded consistent-hash ring, writes fan out to
//                        owner + replicas, queries pull per-stream
//                        summaries and merge through the shared
//                        estimator kernel; a crashed-and-restarted shard
//                        is repaired from healthy replicas and re-admitted
//                        live — no router restart)
//   sketchtool route add-shard   --router H:P --shard H:P [--name NAME]
//                       (online membership: vets the joining server,
//                        migrates only the ring segment it takes over,
//                        then flips placement — dual-writes cover the
//                        transfer window)
//   sketchtool route drain-shard --router H:P --name NAME
//                       (migrates the named shard's segment to its ring
//                        successors, then removes it from placement)
//   sketchtool query    --port P --expr "(A - B) & C" [--host ...]
//   sketchtool explain  --port P --expr "(A - B) & C" [--host ...]
//                       (the planner's report: canonical plan, shared
//                        sub-expressions, plan-cache/epoch state)
//   sketchtool stats    --port P [--host ...]
//   sketchtool shutdown --port P [--host ...]
//
// Update files are plain text: "stream element delta" per line, '#'
// comments allowed. Banks built with the same seed and parameters can be
// merged across machines (the stored-coins model).

#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster_commands.h"
#include "core/sketch_backend.h"
#include "server/server_commands.h"
#include "tools/commands.h"
#include "util/flags.h"

namespace {

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) parts.push_back(text.substr(start));
      break;
    }
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

int Usage() {
  std::cerr << "usage: sketchtool "
               "<build|info|merge|estimate|serve|route|push|query|explain|"
               "stats|shutdown> [flags]\n"
               "  build    --updates FILE --out FILE [--streams A,B,..]\n"
               "           [--copies N] [--seed N] [--levels N]\n"
               "           [--second-level N] [--kwise T]\n"
               "  info     --bank FILE\n"
               "  merge    --inputs A,B[,..] --out FILE\n"
               "  estimate --bank FILE --expr EXPRESSION [--strict]\n"
               "  serve    [--port N] [--bind ADDR] [--copies N] [--seed N]\n"
               "           [--levels N] [--second-level N] [--shards N]\n"
               "           [--queue-capacity N] [--wal-dir DIR]\n"
               "           [--wal-shards N] [--no-wal-fsync]\n"
               "           [--snapshot-bytes N] [--io-timeout-ms N]\n"
               "           [--idle-timeout-ms N]\n"
               "           [--backend epoll|threads] [--io-threads N]\n"
               "           [--read-chunk-bytes N] [--pin-shards]\n"
               "           [--backend-sketch NAME] [--backend-size N]\n"
               "  route    --shards H:P[,H:P..] [--port N] [--bind ADDR]\n"
               "           [--replicas N] [--static-placement]\n"
               "           [--virtual-nodes N] [--placement-seed N]\n"
               "           [--copies N] [--seed N] [--levels N]\n"
               "           [--second-level N] [--probe-interval-ms N]\n"
               "           [--io-timeout-ms N] [--idle-timeout-ms N]\n"
               "           [--shard-io-timeout-ms N]\n"
               "           [--connect-timeout-ms N]\n"
               "           [--read-policy strict|available]\n"
               "           [--probe-backoff-initial-ms N]\n"
               "           [--probe-backoff-cap-ms N]\n"
               "           [--flap-threshold N] [--no-auto-repair]\n"
               "           [--max-dynamic-shards N]\n"
               "           [--backend-sketch NAME] [--backend-size N]\n"
               "  route add-shard   --router H:P --shard H:P [--name S]\n"
               "  route drain-shard --router H:P --name S\n"
               "  push     --port N --updates FILE [--host ADDR]\n"
               "           [--streams A,B,..] [--batch N]\n"
               "           [--batch-bytes N] [--site ID]\n"
               "           [--seq-start N] [--io-timeout-ms N]\n"
               "           [--connect-timeout-ms N]\n"
               "           [--backend-sketch NAME]\n"
               "  query    --port N --expr EXPRESSION [--host ADDR]\n"
               "  explain  --port N --expr EXPRESSION [--host ADDR]\n"
               "  stats    --port N [--host ADDR]\n"
               "  shutdown --port N [--host ADDR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setsketch;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = Flags::Parse(argc - 1, argv + 1);

  CommandResult result;
  if (command == "build") {
    BuildSpec spec;
    spec.updates_path = flags.GetString("updates", "");
    spec.output_path = flags.GetString("out", "");
    if (spec.updates_path.empty() || spec.output_path.empty()) {
      return Usage();
    }
    spec.stream_names = SplitCommaList(flags.GetString("streams", ""));
    spec.copies = static_cast<int>(flags.GetInt("copies", 128));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    spec.params.levels = static_cast<int>(flags.GetInt("levels", 32));
    spec.params.num_second_level =
        static_cast<int>(flags.GetInt("second-level", 32));
    if (flags.Has("kwise")) {
      spec.params.first_level_kind = FirstLevelKind::kKWisePoly;
      spec.params.independence =
          static_cast<int>(flags.GetInt("kwise", 8));
    }
    result = RunBuild(spec);
  } else if (command == "info") {
    const std::string bank = flags.GetString("bank", "");
    if (bank.empty()) return Usage();
    result = RunInfo(bank);
  } else if (command == "merge") {
    const std::vector<std::string> inputs =
        SplitCommaList(flags.GetString("inputs", ""));
    const std::string out = flags.GetString("out", "");
    if (inputs.empty() || out.empty()) return Usage();
    result = RunMerge(inputs, out);
  } else if (command == "estimate") {
    const std::string bank = flags.GetString("bank", "");
    const std::string expr = flags.GetString("expr", "");
    if (bank.empty() || expr.empty()) return Usage();
    result = RunEstimate(bank, expr, !flags.GetBool("strict", false));
  } else if (command == "serve") {
    SketchServer::Options options;
    options.port = static_cast<int>(flags.GetInt("port", 0));
    options.bind_address = flags.GetString("bind", "127.0.0.1");
    options.copies = static_cast<int>(flags.GetInt("copies", 128));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.params.levels = static_cast<int>(flags.GetInt("levels", 32));
    options.params.num_second_level =
        static_cast<int>(flags.GetInt("second-level", 32));
    options.shards = static_cast<int>(flags.GetInt("shards", 2));
    options.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue-capacity", 64));
    options.witness.pool_all_levels = true;
    options.wal_dir = flags.GetString("wal-dir", "");
    options.wal_shards = static_cast<int>(flags.GetInt("wal-shards", 2));
    options.wal_fsync = !flags.GetBool("no-wal-fsync", false);
    options.snapshot_every_bytes =
        static_cast<uint64_t>(flags.GetInt("snapshot-bytes", 0));
    options.io_timeout_ms =
        static_cast<int>(flags.GetInt("io-timeout-ms", 30000));
    options.idle_timeout_ms =
        static_cast<int>(flags.GetInt("idle-timeout-ms", 0));
    const std::string backend = flags.GetString("backend", "epoll");
    if (!ParseIngestBackend(backend, &options.backend)) {
      std::cerr << "sketchtool serve: unknown --backend '" << backend
                << "' (expected epoll or threads)\n";
      return Usage();
    }
    options.io_threads = static_cast<int>(flags.GetInt("io-threads", 1));
    options.read_chunk_bytes =
        static_cast<size_t>(flags.GetInt("read-chunk-bytes", 256 << 10));
    options.pin_shards = flags.GetBool("pin-shards", false);
    const std::string backend_sketch =
        flags.GetString("backend-sketch", "two_level_hash");
    if (!ParseSketchBackendName(backend_sketch,
                                &options.default_backend)) {
      std::cerr << "sketchtool serve: unknown --backend-sketch '"
                << backend_sketch
                << "' (expected two_level_hash, theta_kmv or set_sketch)\n";
      return Usage();
    }
    options.backend_size =
        static_cast<uint32_t>(flags.GetInt("backend-size", 4096));
    result = RunServe(options, &std::cout);
  } else if (command == "route" && argc >= 3 &&
             (std::string(argv[2]) == "add-shard" ||
              std::string(argv[2]) == "drain-shard")) {
    // Admin subcommands dial a RUNNING router; re-parse flags past the
    // positional action word (the top-level parse would flag it as an
    // unrecognized positional).
    const std::string action = argv[2];
    const Flags admin = Flags::Parse(argc - 2, argv + 2);
    RouteAdminSpec spec;
    spec.action = action;
    std::vector<ClusterShard> router_addr;
    std::string parse_error;
    if (!ParseShardList(admin.GetString("router", ""), &router_addr,
                        &parse_error) ||
        router_addr.size() != 1) {
      std::cerr << "sketchtool route " << action
                << ": --router HOST:PORT is required\n";
      return Usage();
    }
    spec.router_host = router_addr[0].host;
    spec.router_port = router_addr[0].port;
    if (action == "add-shard") {
      std::vector<ClusterShard> joining;
      if (!ParseShardList(admin.GetString("shard", ""), &joining,
                          &parse_error) ||
          joining.size() != 1) {
        std::cerr << "sketchtool route add-shard: --shard HOST:PORT "
                     "(the joining server) is required\n";
        return Usage();
      }
      spec.shard = joining[0];
    } else {
      spec.shard.name = admin.GetString("name", "");
    }
    const std::string name = admin.GetString("name", "");
    if (!name.empty()) spec.shard.name = name;
    if (spec.shard.name.empty()) {
      std::cerr << "sketchtool route drain-shard: --name SHARD is "
                   "required\n";
      return Usage();
    }
    spec.io_timeout_ms =
        static_cast<int>(admin.GetInt("io-timeout-ms", 30000));
    spec.connect_timeout_ms =
        static_cast<int>(admin.GetInt("connect-timeout-ms", 5000));
    result = RunRouteAdmin(spec);
  } else if (command == "route") {
    ClusterRouter::Options options;
    std::string parse_error;
    if (!ParseShardList(flags.GetString("shards", ""), &options.shards,
                        &parse_error)) {
      std::cerr << "sketchtool route: " << parse_error << "\n";
      return Usage();
    }
    options.port = static_cast<int>(flags.GetInt("port", 0));
    options.bind_address = flags.GetString("bind", "127.0.0.1");
    options.replicas = static_cast<int>(flags.GetInt("replicas", 1));
    options.static_placement = flags.GetBool("static-placement", false);
    options.virtual_nodes =
        static_cast<int>(flags.GetInt("virtual-nodes", 64));
    options.placement_seed =
        static_cast<uint64_t>(flags.GetInt("placement-seed", 7));
    options.copies = static_cast<int>(flags.GetInt("copies", 128));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.params.levels = static_cast<int>(flags.GetInt("levels", 32));
    options.params.num_second_level =
        static_cast<int>(flags.GetInt("second-level", 32));
    options.witness.pool_all_levels = true;
    options.probe_interval_ms =
        static_cast<int>(flags.GetInt("probe-interval-ms", 0));
    options.io_timeout_ms =
        static_cast<int>(flags.GetInt("io-timeout-ms", 30000));
    options.idle_timeout_ms =
        static_cast<int>(flags.GetInt("idle-timeout-ms", 0));
    options.shard_io_timeout_ms =
        static_cast<int>(flags.GetInt("shard-io-timeout-ms", 10000));
    options.shard_connect_timeout_ms =
        static_cast<int>(flags.GetInt("connect-timeout-ms", 2000));
    const std::string read_policy =
        flags.GetString("read-policy", "strict");
    if (read_policy == "strict") {
      options.read_policy = ClusterRouter::ReadPolicy::kStrict;
    } else if (read_policy == "available") {
      options.read_policy = ClusterRouter::ReadPolicy::kAvailable;
    } else {
      std::cerr << "sketchtool route: unknown --read-policy '"
                << read_policy << "' (expected strict or available)\n";
      return Usage();
    }
    options.probe_backoff_initial_ms =
        static_cast<int>(flags.GetInt("probe-backoff-initial-ms", 100));
    options.probe_backoff_cap_ms =
        static_cast<int>(flags.GetInt("probe-backoff-cap-ms", 5000));
    options.probe_flap_threshold =
        static_cast<int>(flags.GetInt("flap-threshold", 1));
    options.auto_repair = !flags.GetBool("no-auto-repair", false);
    options.max_dynamic_shards =
        static_cast<int>(flags.GetInt("max-dynamic-shards", 16));
    const std::string backend_sketch =
        flags.GetString("backend-sketch", "two_level_hash");
    if (!ParseSketchBackendName(backend_sketch,
                                &options.default_backend)) {
      std::cerr << "sketchtool route: unknown --backend-sketch '"
                << backend_sketch
                << "' (expected two_level_hash, theta_kmv or set_sketch)\n";
      return Usage();
    }
    options.backend_size =
        static_cast<uint32_t>(flags.GetInt("backend-size", 4096));
    result = RunRoute(options, &std::cout);
  } else if (command == "push") {
    PushSpec spec;
    spec.host = flags.GetString("host", "127.0.0.1");
    spec.port = static_cast<int>(flags.GetInt("port", 0));
    spec.updates_path = flags.GetString("updates", "");
    if (spec.port == 0 || spec.updates_path.empty()) return Usage();
    spec.stream_names = SplitCommaList(flags.GetString("streams", ""));
    spec.batch_size = static_cast<size_t>(flags.GetInt("batch", 4096));
    spec.batch_bytes =
        static_cast<size_t>(flags.GetInt("batch-bytes", 0));
    spec.site_id = flags.GetString("site", "");
    spec.first_sequence =
        static_cast<uint64_t>(flags.GetInt("seq-start", 1));
    spec.io_timeout_ms =
        static_cast<int>(flags.GetInt("io-timeout-ms", 30000));
    spec.connect_timeout_ms =
        static_cast<int>(flags.GetInt("connect-timeout-ms", 5000));
    const std::string backend_sketch =
        flags.GetString("backend-sketch", "two_level_hash");
    if (!ParseSketchBackendName(backend_sketch, &spec.backend)) {
      std::cerr << "sketchtool push: unknown --backend-sketch '"
                << backend_sketch
                << "' (expected two_level_hash, theta_kmv or set_sketch)\n";
      return Usage();
    }
    result = RunServerPush(spec);
  } else if (command == "query") {
    const std::string host = flags.GetString("host", "127.0.0.1");
    const int port = static_cast<int>(flags.GetInt("port", 0));
    const std::string expr = flags.GetString("expr", "");
    if (port == 0 || expr.empty()) return Usage();
    result = RunServerQuery(host, port, expr);
  } else if (command == "explain") {
    const std::string host = flags.GetString("host", "127.0.0.1");
    const int port = static_cast<int>(flags.GetInt("port", 0));
    const std::string expr = flags.GetString("expr", "");
    if (port == 0 || expr.empty()) return Usage();
    result = RunServerExplain(host, port, expr);
  } else if (command == "stats") {
    const std::string host = flags.GetString("host", "127.0.0.1");
    const int port = static_cast<int>(flags.GetInt("port", 0));
    if (port == 0) return Usage();
    result = RunServerStats(host, port);
  } else if (command == "shutdown") {
    const std::string host = flags.GetString("host", "127.0.0.1");
    const int port = static_cast<int>(flags.GetInt("port", 0));
    if (port == 0) return Usage();
    result = RunServerShutdown(host, port);
  } else {
    return Usage();
  }

  if (!result.ok) {
    std::cerr << "sketchtool " << command << ": " << result.error << "\n";
    return 1;
  }
  std::cout << result.output;
  return 0;
}
