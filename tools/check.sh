#!/usr/bin/env bash
# Full pre-merge correctness gate, six stages:
#
#   1. release   Release build + full test suite + bench smoke (the
#                update-kernel and fault-tolerance JSON perf
#                trajectories must validate).
#   2. asan      AddressSanitizer build + full test suite.
#   3. tsan      ThreadSanitizer build + the concurrency-sensitive tests
#                (race detection over the server, shard queues, WAL
#                writer, parallel ingest and lazy slice publication).
#   4. ubsan    UndefinedBehaviorSanitizer build (-fno-sanitize-recover,
#                so any UB fails the run) + full test suite.
#   5. chaos     AddressSanitizer build + the fault-tolerance suite
#                (seeded fault injection, WAL corruption, crash
#                recovery), then a real kill -9 crash/recover/dedup
#                cycle driven end-to-end through the sketchtool CLI.
#   6. tidy      tools/lint.py source hygiene + validate_bench_json.py
#                --schema-only + clang-tidy over the library (skipped
#                with a notice when clang-tidy is not installed).
#
# The whole tree builds with -Wall -Wextra -Werror in every stage.
#
#   tools/check.sh [build-dir-prefix] [stage ...]
#
# With no stage arguments every stage runs. Build trees land in
# <prefix>-<stage>/ (default prefix: build-check). Pass
# SETSKETCH_CHECK_JOBS to override the build parallelism (default:
# nproc).

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="build-check"
if [[ $# -gt 0 ]]; then
  case "$1" in
    release|asan|tsan|ubsan|chaos|tidy) ;;  # First arg is a stage name.
    *) prefix="$1"; shift ;;
  esac
fi
stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(release asan tsan ubsan chaos tidy)
fi
jobs="${SETSKETCH_CHECK_JOBS:-$(nproc)}"

build_and_test() {
  local dir="$1"
  local ctest_filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test ${dir} ==="
  if [[ -n "${ctest_filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -R "${ctest_filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure
  fi
}

stage_release() {
  build_and_test "${prefix}-release" "" -DCMAKE_BUILD_TYPE=Release

  # Bench smoke: a short bench_update_kernel run must produce a JSON perf
  # trajectory that parses and covers every configured sweep point, so
  # the BENCH_update_kernel.json reporting can't silently rot.
  echo "=== bench smoke (update-kernel JSON trajectory) ==="
  local smoke_json="${prefix}-release/BENCH_update_kernel.smoke.json"
  SETSKETCH_BENCH_JSON="${smoke_json}" \
    "${prefix}-release/bench/bench_update_kernel" \
    --benchmark_min_time=0.01 >/dev/null
  python3 tools/validate_bench_json.py "${smoke_json}"

  echo "=== bench smoke (fault-tolerance JSON trajectory) ==="
  local ft_json="${prefix}-release/BENCH_fault_tolerance.smoke.json"
  SETSKETCH_BENCH_JSON="${ft_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-release/bench/bench_fault_tolerance" >/dev/null
  python3 tools/validate_bench_json.py "${ft_json}"

  # Plan-cache smoke: also enforces the >= 5x hot-vs-cold repeated-query
  # speedup floor (the bench exits nonzero below it).
  echo "=== bench smoke (plan-cache JSON trajectory) ==="
  local pc_json="${prefix}-release/BENCH_plan_cache.smoke.json"
  SETSKETCH_BENCH_JSON="${pc_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-release/bench/bench_plan_cache" >/dev/null
  python3 tools/validate_bench_json.py "${pc_json}"
}

stage_asan() {
  build_and_test "${prefix}-asan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=address
}

stage_tsan() {
  # TSAN_OPTIONS: any reported race fails the test run. No suppressions
  # file — the gate requires the tree to be race-free as written.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    build_and_test "${prefix}-tsan" \
      "TsanConcurrencyTest|ShardQueueTest|SketchServerTest|ParallelIngest" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=thread
}

stage_ubsan() {
  # -fno-sanitize-recover=all is added by CMake for the undefined
  # sanitizer, so any flagged UB aborts the offending test.
  build_and_test "${prefix}-ubsan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=undefined
}

stage_chaos() {
  # Fault-injected end-to-end flow under AddressSanitizer: the seeded
  # chaos/recovery suite first, then a real kill -9 against a live
  # WAL-backed server, a restart on the same directory, and an
  # idempotent re-push that must be deduplicated, not double-counted.
  build_and_test "${prefix}-chaos" \
    "FaultToleranceTest|FaultInjectorTest|WalTest|DedupWindowTest|DedupIndexTest" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=address

  echo "=== chaos e2e (kill -9 + WAL recovery via sketchtool) ==="
  local tool="${prefix}-chaos/tools/sketchtool"
  local dir
  dir="$(mktemp -d)"
  local wal="${dir}/wal"
  local updates="${dir}/updates.txt"
  local i
  for ((i = 0; i < 2000; ++i)); do
    echo "0 $((i * 7919 + 1)) 1"
    echo "1 $((i * 104729 + 3)) 1"
  done > "${updates}"

  wait_for_port() {
    local log="$1"
    local tries
    for ((tries = 0; tries < 300; ++tries)); do
      if grep -q "listening on" "${log}"; then
        sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "${log}"
        return 0
      fi
      sleep 0.1
    done
    echo "server never announced its port; log:" >&2
    cat "${log}" >&2
    return 1
  }

  "${tool}" serve --port 0 --copies 32 --wal-dir "${wal}" \
    > "${dir}/serve1.log" &
  local server_pid=$!
  local port
  port="$(wait_for_port "${dir}/serve1.log")"
  "${tool}" push --port "${port}" --updates "${updates}" \
    --streams A,B --site chaos --batch 500 > "${dir}/push1.log"
  cat "${dir}/push1.log"
  # Crash: every ACKed batch above is already fsync'd in the WAL.
  kill -9 "${server_pid}"
  wait "${server_pid}" 2>/dev/null || true

  "${tool}" serve --port 0 --copies 32 --wal-dir "${wal}" \
    > "${dir}/serve2.log" &
  server_pid=$!
  port="$(wait_for_port "${dir}/serve2.log")"
  # Recovery restored the dedup index too: re-running the exact same
  # push is all duplicate ACKs, never double-counted.
  "${tool}" push --port "${port}" --updates "${updates}" \
    --streams A,B --site chaos --batch 500 > "${dir}/push2.log"
  cat "${dir}/push2.log"
  if ! grep -q "8 duplicate acks" "${dir}/push2.log"; then
    echo "chaos e2e: re-push was not fully deduplicated" >&2
    exit 1
  fi
  "${tool}" stats --port "${port}" > "${dir}/stats.log"
  grep -q "recoveries 1" "${dir}/stats.log"
  grep -q "recovered_batches 8" "${dir}/stats.log"
  grep -q "recovered_updates 4000" "${dir}/stats.log"
  grep -q "duplicates_dropped 8" "${dir}/stats.log"
  "${tool}" query --port "${port}" --expr "A | B"
  "${tool}" shutdown --port "${port}"
  wait "${server_pid}"
  grep -q "batches recovered" "${dir}/serve2.log"
  rm -rf "${dir}"
  echo "=== chaos e2e passed ==="
}

stage_tidy() {
  echo "=== lint (tools/lint.py) ==="
  python3 tools/lint.py
  echo "=== bench-json schema (tools/validate_bench_json.py) ==="
  python3 tools/validate_bench_json.py --schema-only
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy (SETSKETCH_TIDY=ON) ==="
    cmake -B "${prefix}-tidy" -S . -DCMAKE_BUILD_TYPE=Release \
      -DSETSKETCH_TIDY=ON >/dev/null
    cmake --build "${prefix}-tidy" -j "${jobs}" \
      --target setsketch setsketch_server
  else
    echo "=== clang-tidy not installed; skipping the tidy build ==="
    echo "    (install clang-tidy and re-run tools/check.sh tidy)"
  fi
}

for stage in "${stages[@]}"; do
  "stage_${stage}"
done

echo "=== all checks passed (${stages[*]}) ==="
