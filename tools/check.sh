#!/usr/bin/env bash
# Full pre-merge correctness gate, eight stages:
#
#   1. release   Release build + full test suite + bench smoke (the
#                update-kernel, fault-tolerance, ingest-path and
#                plan-cache JSON perf trajectories must validate; the
#                ingest-path smoke also enforces the epoll-vs-legacy
#                speedup floor by exit status).
#   2. asan      AddressSanitizer build + full test suite (includes the
#                epoll-backend integration tests).
#   3. tsan      ThreadSanitizer build + the concurrency-sensitive tests
#                (race detection over the server, shard queues, WAL
#                writer, parallel ingest, the epoll ingest loop and lazy
#                slice publication).
#   4. ubsan    UndefinedBehaviorSanitizer build (-fno-sanitize-recover,
#                so any UB fails the run) + full test suite.
#   5. chaos     AddressSanitizer build + the fault-tolerance suite
#                (seeded fault injection, WAL corruption, crash
#                recovery), then a real kill -9 crash/recover/dedup
#                cycle driven end-to-end through the sketchtool CLI.
#   6. cluster   AddressSanitizer build + the cluster suite (hash-ring
#                placement, hello handshake, federated queries, chaos
#                failover, self-healing repair, read policies, online
#                membership, backoff numerics), then a real 3-shard +
#                router deployment through the sketchtool CLI: kill -9
#                the shard owning a stream mid-run, fail reads over to
#                the replica, restart on the WAL, verify the SAME router
#                repairs and re-admits the shard via anti-entropy (no
#                router restart), re-push through the dedup window, then
#                an online membership chaos pass (route add-shard /
#                drain-shard against the live router) — every federated
#                answer must stay bit-identical to a fault-free single
#                node; finally a bench_cluster JSON trajectory smoke
#                (including the kill/restart time-to-readmit sweep).
#   7. tidy      tools/lint.py source hygiene + validate_bench_json.py
#                --schema-only + clang-tidy over the library (skipped
#                with a notice when clang-tidy is not installed).
#   8. analysis  compile-time concurrency contracts: a clang build under
#                -Wthread-safety -Werror=thread-safety
#                (SETSKETCH_THREAD_SAFETY=ON) plus the annotation corpus
#                (skipped with a notice when clang++ is not installed),
#                then tools/analyze.py over the tree (arena-view
#                escapes, ingest/estimator seam routing, DCHECK side
#                effects, cross-TU lock-order cycles, hot-path
#                allocation audit) and its good/bad snippet corpus.
#
# The whole tree builds with -Wall -Wextra -Werror in every stage.
#
#   tools/check.sh [build-dir-prefix] [stage ...]
#
# With no stage arguments every stage runs. Build trees land in
# <prefix>-<stage>/ (default prefix: build-check). Pass
# SETSKETCH_CHECK_JOBS to override the build parallelism (default:
# nproc).

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="build-check"
if [[ $# -gt 0 ]]; then
  case "$1" in
    release|asan|tsan|ubsan|chaos|cluster|tidy|analysis) ;;  # A stage name.
    *) prefix="$1"; shift ;;
  esac
fi
stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(release asan tsan ubsan chaos cluster tidy analysis)
fi
jobs="${SETSKETCH_CHECK_JOBS:-$(nproc)}"

build_and_test() {
  local dir="$1"
  local ctest_filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test ${dir} ==="
  if [[ -n "${ctest_filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -R "${ctest_filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure
  fi
}

stage_release() {
  build_and_test "${prefix}-release" "" -DCMAKE_BUILD_TYPE=Release

  # Bench smoke: a short bench_update_kernel run must produce a JSON perf
  # trajectory that parses and covers every configured sweep point, so
  # the BENCH_update_kernel.json reporting can't silently rot.
  echo "=== bench smoke (update-kernel JSON trajectory) ==="
  local smoke_json="${prefix}-release/BENCH_update_kernel.smoke.json"
  SETSKETCH_BENCH_JSON="${smoke_json}" \
    "${prefix}-release/bench/bench_update_kernel" \
    --benchmark_min_time=0.01 >/dev/null
  python3 tools/validate_bench_json.py "${smoke_json}"

  echo "=== bench smoke (fault-tolerance JSON trajectory) ==="
  local ft_json="${prefix}-release/BENCH_fault_tolerance.smoke.json"
  SETSKETCH_BENCH_JSON="${ft_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-release/bench/bench_fault_tolerance" >/dev/null
  python3 tools/validate_bench_json.py "${ft_json}"

  # Ingest-path smoke: also enforces the >= 3x fast-vs-legacy loopback
  # ingest speedup floor, SETSKETCH_INGEST_FLOOR (the bench exits
  # nonzero below it), so the epoll/zero-copy/SIMD win cannot rot.
  echo "=== bench smoke (ingest-path JSON trajectory) ==="
  local ip_json="${prefix}-release/BENCH_ingest_path.smoke.json"
  SETSKETCH_BENCH_JSON="${ip_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-release/bench/bench_ingest_path" >/dev/null
  python3 tools/validate_bench_json.py "${ip_json}"

  # Plan-cache smoke: also enforces the >= 5x hot-vs-cold repeated-query
  # speedup floor (the bench exits nonzero below it).
  echo "=== bench smoke (plan-cache JSON trajectory) ==="
  local pc_json="${prefix}-release/BENCH_plan_cache.smoke.json"
  SETSKETCH_BENCH_JSON="${pc_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-release/bench/bench_plan_cache" >/dev/null
  python3 tools/validate_bench_json.py "${pc_json}"

  # Backend-shootout smoke: also enforces the deletion-storm contract
  # (real backends within 3x their target error, the insert-only
  # sampling baseline diverging; the bench exits nonzero otherwise).
  echo "=== bench smoke (backends JSON trajectory) ==="
  local bk_json="${prefix}-release/BENCH_backends.smoke.json"
  SETSKETCH_BENCH_JSON="${bk_json}" SETSKETCH_BENCH_SCALE=0.1 \
    "${prefix}-release/bench/bench_backends" >/dev/null
  python3 tools/validate_bench_json.py "${bk_json}"
}

stage_asan() {
  build_and_test "${prefix}-asan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=address
}

stage_tsan() {
  # TSAN_OPTIONS: any reported race fails the test run. No suppressions
  # file — the gate requires the tree to be race-free as written.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    build_and_test "${prefix}-tsan" \
      "TsanConcurrencyTest|ShardQueueTest|SketchServerTest|ParallelIngest|IngestFastPathTsan|EpollIngestTest" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=thread
}

stage_ubsan() {
  # -fno-sanitize-recover=all is added by CMake for the undefined
  # sanitizer, so any flagged UB aborts the offending test.
  build_and_test "${prefix}-ubsan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=undefined
}

stage_chaos() {
  # Fault-injected end-to-end flow under AddressSanitizer: the seeded
  # chaos/recovery suite first, then a real kill -9 against a live
  # WAL-backed server, a restart on the same directory, and an
  # idempotent re-push that must be deduplicated, not double-counted.
  build_and_test "${prefix}-chaos" \
    "FaultToleranceTest|FaultInjectorTest|WalTest|DedupWindowTest|DedupIndexTest" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=address

  echo "=== chaos e2e (kill -9 + WAL recovery via sketchtool) ==="
  local tool="${prefix}-chaos/tools/sketchtool"
  local dir
  dir="$(mktemp -d)"
  local wal="${dir}/wal"
  local updates="${dir}/updates.txt"
  local i
  for ((i = 0; i < 2000; ++i)); do
    echo "0 $((i * 7919 + 1)) 1"
    echo "1 $((i * 104729 + 3)) 1"
  done > "${updates}"

  wait_for_port() {
    local log="$1"
    local tries
    for ((tries = 0; tries < 300; ++tries)); do
      if grep -q "listening on" "${log}"; then
        sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "${log}"
        return 0
      fi
      sleep 0.1
    done
    echo "server never announced its port; log:" >&2
    cat "${log}" >&2
    return 1
  }

  # First life runs the epoll fast path, the post-crash life the legacy
  # threads backend: recovery across the pair proves the fast path wrote
  # bit-identical WAL bytes (same batches, same dedup index).
  "${tool}" serve --port 0 --copies 32 --wal-dir "${wal}" \
    --backend epoll > "${dir}/serve1.log" &
  local server_pid=$!
  local port
  port="$(wait_for_port "${dir}/serve1.log")"
  "${tool}" push --port "${port}" --updates "${updates}" \
    --streams A,B --site chaos --batch 500 > "${dir}/push1.log"
  cat "${dir}/push1.log"
  # Crash: every ACKed batch above is already fsync'd in the WAL.
  kill -9 "${server_pid}"
  wait "${server_pid}" 2>/dev/null || true

  "${tool}" serve --port 0 --copies 32 --wal-dir "${wal}" \
    --backend threads > "${dir}/serve2.log" &
  server_pid=$!
  port="$(wait_for_port "${dir}/serve2.log")"
  # Recovery restored the dedup index too: re-running the exact same
  # push is all duplicate ACKs, never double-counted.
  "${tool}" push --port "${port}" --updates "${updates}" \
    --streams A,B --site chaos --batch 500 > "${dir}/push2.log"
  cat "${dir}/push2.log"
  if ! grep -q "8 duplicate acks" "${dir}/push2.log"; then
    echo "chaos e2e: re-push was not fully deduplicated" >&2
    exit 1
  fi
  "${tool}" stats --port "${port}" > "${dir}/stats.log"
  grep -q "recoveries 1" "${dir}/stats.log"
  grep -q "recovered_batches 8" "${dir}/stats.log"
  grep -q "recovered_updates 4000" "${dir}/stats.log"
  grep -q "duplicates_dropped 8" "${dir}/stats.log"
  "${tool}" query --port "${port}" --expr "A | B"
  "${tool}" shutdown --port "${port}"
  wait "${server_pid}"
  grep -q "batches recovered" "${dir}/serve2.log"
  rm -rf "${dir}"
  echo "=== chaos e2e passed ==="
}

stage_cluster() {
  # Cluster suite under AddressSanitizer: placement, handshake, summary
  # pulls, federated bit-identity, the in-process chaos tests, the
  # self-healing repair/read-policy/membership tests and the shared
  # backoff policy numerics.
  build_and_test "${prefix}-cluster" \
    "HashRingTest|PlacementTest|ClusterHandshakeTest|ClusterSummaryTest|ClusterRouterTest|ClusterChaosTest|ClusterSelfHealingTest|ClusterReadPolicyTest|ClusterMembershipTest|ClusterCommandsTest|BackoffTest" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=address

  echo "=== cluster e2e (3 shards + router, kill -9 + failover) ==="
  local tool="${prefix}-cluster/tools/sketchtool"
  local dir
  dir="$(mktemp -d)"
  local i
  for ((i = 0; i < 1500; ++i)); do
    echo "0 $((i * 7919 + 1)) 1"
    echo "1 $((i * 104729 + 3)) 1"
    echo "2 $((i * 15485863 + 7)) 1"
  done > "${dir}/phase1.txt"
  for ((i = 1500; i < 2500; ++i)); do
    echo "0 $((i * 7919 + 1)) 1"
    echo "1 $((i * 104729 + 3)) 1"
    echo "2 $((i * 15485863 + 7)) 1"
  done > "${dir}/phase2.txt"

  wait_for_announce() {
    local log="$1"
    local marker="$2"
    local tries
    for ((tries = 0; tries < 300; ++tries)); do
      if grep -q "${marker}" "${log}"; then
        sed -n "s/.*${marker} .*:\([0-9][0-9]*\) .*/\1/p;
                s/.*${marker} .*:\([0-9][0-9]*\)\$/\1/p" "${log}" |
          head -1
        return 0
      fi
      sleep 0.1
    done
    echo "no '${marker}' announcement; log:" >&2
    cat "${log}" >&2
    return 1
  }

  # Three WAL-backed shards on the epoll fast path, one fault-free
  # reference server on the legacy threads backend: every bit-identity
  # comparison below is therefore also a cross-backend equivalence check.
  local shard_pids=() shard_ports=()
  for i in 0 1 2; do
    "${tool}" serve --port 0 --copies 32 --wal-dir "${dir}/wal${i}" \
      --backend epoll > "${dir}/shard${i}.log" &
    shard_pids[i]=$!
    shard_ports[i]="$(wait_for_announce "${dir}/shard${i}.log" \
      'listening on')"
  done
  "${tool}" serve --port 0 --copies 32 --backend threads \
    > "${dir}/ref.log" &
  local ref_pid=$!
  local ref_port
  ref_port="$(wait_for_announce "${dir}/ref.log" 'listening on')"

  local shard_list
  shard_list="127.0.0.1:${shard_ports[0]},127.0.0.1:${shard_ports[1]}"
  shard_list+=",127.0.0.1:${shard_ports[2]}"
  "${tool}" route --port 0 --shards "${shard_list}" --replicas 1 \
    --copies 32 --probe-interval-ms 200 > "${dir}/route.log" &
  local route_pid=$!
  local route_port
  route_port="$(wait_for_announce "${dir}/route.log" 'routing on')"

  local expr="(A - B) & C"
  "${tool}" push --port "${route_port}" --updates "${dir}/phase1.txt" \
    --streams A,B,C --site cluster --batch 500 > "${dir}/push1.log"
  "${tool}" push --port "${ref_port}" --updates "${dir}/phase1.txt" \
    --streams A,B,C --site cluster --batch 500 >/dev/null
  local want got
  want="$("${tool}" query --port "${ref_port}" --expr "${expr}")"
  got="$("${tool}" query --port "${route_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: federated answer diverged pre-fault" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi

  # Kill -9 the shard that owns stream A (first write target in the
  # router's EXPLAIN placement report).
  "${tool}" explain --port "${route_port}" --expr "A" > "${dir}/place.log"
  local owner_port
  owner_port="$(sed -n \
    's/^stream A targets=127\.0\.0\.1:\([0-9]*\),.*/\1/p' \
    "${dir}/place.log")"
  local owner_index=-1
  for i in 0 1 2; do
    if [[ "${shard_ports[i]}" == "${owner_port}" ]]; then
      owner_index=$i
    fi
  done
  if [[ ${owner_index} -lt 0 ]]; then
    echo "cluster e2e: cannot find owner of stream A" >&2
    cat "${dir}/place.log" >&2
    exit 1
  fi
  kill -9 "${shard_pids[owner_index]}"
  wait "${shard_pids[owner_index]}" 2>/dev/null || true

  # Ingest continues through the surviving replica (the push CLI absorbs
  # the RETRY_LATER bounce while the router discovers the death), and
  # reads fail over — still bit-identical to the fault-free reference.
  "${tool}" push --port "${route_port}" --updates "${dir}/phase2.txt" \
    --streams A,B,C --site cluster --seq-start 10 --batch 500 \
    > "${dir}/push2.log"
  "${tool}" push --port "${ref_port}" --updates "${dir}/phase2.txt" \
    --streams A,B,C --site cluster --seq-start 10 --batch 500 >/dev/null
  want="$("${tool}" query --port "${ref_port}" --expr "${expr}")"
  got="$("${tool}" query --port "${route_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: federated answer diverged after owner death" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi
  "${tool}" stats --port "${route_port}" > "${dir}/stats1.log"
  grep -q "stale_shards 1" "${dir}/stats1.log"
  if grep -q "^failovers 0\$" "${dir}/stats1.log"; then
    echo "cluster e2e: no failover recorded" >&2
    exit 1
  fi

  # Restart the dead shard on its old port + WAL (replay restores the
  # pre-kill batches and the dedup index). The SAME router's probe loop
  # must then detect the restart, pull the crash gap from the surviving
  # replica via anti-entropy repair, and re-admit the shard — no router
  # restart. Poll STATS until the healing counters confirm it.
  "${tool}" serve --port "${owner_port}" --copies 32 \
    --wal-dir "${dir}/wal${owner_index}" > "${dir}/recovered.log" &
  shard_pids[owner_index]=$!
  wait_for_announce "${dir}/recovered.log" 'listening on' >/dev/null
  "${tool}" stats --port "${owner_port}" > "${dir}/rstats.log"
  grep -q "recoveries 1" "${dir}/rstats.log"
  if grep -q "^recovered_batches 0\$" "${dir}/rstats.log"; then
    echo "cluster e2e: restarted owner replayed no WAL batches" >&2
    exit 1
  fi
  local healed=0
  for ((i = 0; i < 100; ++i)); do
    "${tool}" stats --port "${route_port}" > "${dir}/stats2.log"
    if grep -q "^stale_shards 0\$" "${dir}/stats2.log" &&
        ! grep -q "^repairs 0\$" "${dir}/stats2.log" &&
        ! grep -q "^readmissions 0\$" "${dir}/stats2.log"; then
      healed=1
      break
    fi
    sleep 0.1
  done
  if [[ ${healed} -ne 1 ]]; then
    echo "cluster e2e: router never repaired/re-admitted the shard" >&2
    cat "${dir}/stats2.log" >&2
    exit 1
  fi
  # The repair carried the dedup watermarks with the data, so a client
  # re-push of the missed phase is ALL duplicate ACKs on every copy —
  # the recovered owner needs nothing from the client.
  "${tool}" push --port "${route_port}" --updates "${dir}/phase2.txt" \
    --streams A,B,C --site cluster --seq-start 10 --batch 500 \
    > "${dir}/push3.log"
  grep -q "6 duplicate acks" "${dir}/push3.log"
  # And a second full replay stays all-duplicate — nothing
  # double-counted.
  "${tool}" push --port "${route_port}" --updates "${dir}/phase2.txt" \
    --streams A,B,C --site cluster --seq-start 10 --batch 500 \
    > "${dir}/push4.log"
  grep -q "6 duplicate acks" "${dir}/push4.log"

  # A fresh router (no stale memory) reads from the recovered owner
  # again; its answer matching the reference proves recovery + re-push
  # rebuilt the owner bit-identically, applied exactly once.
  "${tool}" route --port 0 --shards "${shard_list}" --replicas 1 \
    --copies 32 > "${dir}/route2.log" &
  local route2_pid=$!
  local route2_port
  route2_port="$(wait_for_announce "${dir}/route2.log" 'routing on')"
  got="$("${tool}" query --port "${route2_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: recovered owner diverged from the reference" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi

  "${tool}" shutdown --port "${route2_port}"
  wait "${route2_pid}"

  echo "=== cluster e2e (online membership: add-shard / drain-shard) ==="
  # A vetted fourth shard joins the RUNNING router: only its ring
  # segment migrates (dual-write covers the transition), and the
  # federated answer never drifts from the fault-free reference —
  # before, during, and after the membership change.
  "${tool}" serve --port 0 --copies 32 --wal-dir "${dir}/wal3" \
    --backend epoll > "${dir}/shard3.log" &
  local shard3_pid=$!
  local shard3_port
  shard3_port="$(wait_for_announce "${dir}/shard3.log" 'listening on')"
  "${tool}" route add-shard --router "127.0.0.1:${route_port}" \
    --shard "127.0.0.1:${shard3_port}" > "${dir}/admin1.log"
  grep -q "added shard '127.0.0.1:${shard3_port}'" "${dir}/admin1.log"
  got="$("${tool}" query --port "${route_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: answer diverged after add-shard" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi
  # Push a third phase through the grown ring, mirrored to the
  # reference, then drain the new shard back out of the live router.
  for ((i = 2500; i < 3000; ++i)); do
    echo "0 $((i * 7919 + 1)) 1"
    echo "1 $((i * 104729 + 3)) 1"
    echo "2 $((i * 15485863 + 7)) 1"
  done > "${dir}/phase3.txt"
  "${tool}" push --port "${route_port}" --updates "${dir}/phase3.txt" \
    --streams A,B,C --site cluster --seq-start 20 --batch 500 \
    > "${dir}/push5.log"
  "${tool}" push --port "${ref_port}" --updates "${dir}/phase3.txt" \
    --streams A,B,C --site cluster --seq-start 20 --batch 500 >/dev/null
  want="$("${tool}" query --port "${ref_port}" --expr "${expr}")"
  got="$("${tool}" query --port "${route_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: answer diverged on the grown ring" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi
  "${tool}" route drain-shard --router "127.0.0.1:${route_port}" \
    --name "127.0.0.1:${shard3_port}" > "${dir}/admin2.log"
  grep -q "drained shard '127.0.0.1:${shard3_port}'" "${dir}/admin2.log"
  got="$("${tool}" query --port "${route_port}" --expr "${expr}")"
  if [[ "${got}" != "${want}" ]]; then
    echo "cluster e2e: answer diverged after drain-shard" >&2
    echo "  reference: ${want}" >&2
    echo "  federated: ${got}" >&2
    exit 1
  fi
  "${tool}" stats --port "${route_port}" > "${dir}/stats3.log"
  grep -q "^removed_shards 1\$" "${dir}/stats3.log"
  "${tool}" shutdown --port "${shard3_port}"
  wait "${shard3_pid}"

  "${tool}" shutdown --port "${route_port}"
  wait "${route_pid}"
  for i in 0 1 2; do
    "${tool}" shutdown --port "${shard_ports[i]}"
  done
  "${tool}" shutdown --port "${ref_port}"
  wait "${shard_pids[@]}" "${ref_pid}"
  # The recovered shard's exit summary confirms the WAL replay happened.
  grep -q "batches recovered" "${dir}/recovered.log"
  rm -rf "${dir}"
  echo "=== cluster e2e passed ==="

  echo "=== bench smoke (cluster JSON trajectory) ==="
  local cl_json="${prefix}-cluster/BENCH_cluster.smoke.json"
  SETSKETCH_BENCH_JSON="${cl_json}" SETSKETCH_BENCH_SCALE=0.05 \
    "${prefix}-cluster/bench/bench_cluster" >/dev/null
  python3 tools/validate_bench_json.py "${cl_json}"
}

stage_tidy() {
  echo "=== lint (tools/lint.py) ==="
  python3 tools/lint.py
  echo "=== bench-json schema (tools/validate_bench_json.py) ==="
  python3 tools/validate_bench_json.py --schema-only
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy (SETSKETCH_TIDY=ON) ==="
    cmake -B "${prefix}-tidy" -S . -DCMAKE_BUILD_TYPE=Release \
      -DSETSKETCH_TIDY=ON >/dev/null
    cmake --build "${prefix}-tidy" -j "${jobs}" \
      --target setsketch setsketch_server setsketch_cluster
  else
    echo "=== clang-tidy not installed; skipping the tidy build ==="
    echo "    (install clang-tidy and re-run tools/check.sh tidy)"
  fi
}

stage_analysis() {
  # Thread-safety contracts need clang; the analyzer itself does not.
  if command -v clang++ >/dev/null 2>&1; then
    echo "=== thread-safety build (SETSKETCH_THREAD_SAFETY=ON) ==="
    cmake -B "${prefix}-analysis" -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER=clang++ -DSETSKETCH_THREAD_SAFETY=ON \
      >/dev/null
    cmake --build "${prefix}-analysis" -j "${jobs}"
    echo "=== thread-safety annotation corpus ==="
    tests/analysis_corpus/tsa/run_tsa_corpus.sh src
  else
    echo "=== clang++ not installed; skipping the thread-safety build ==="
    echo "    (install clang and re-run tools/check.sh analysis)"
  fi
  echo "=== analyzer corpus (tools/analyze.py --corpus) ==="
  python3 tools/analyze.py --corpus tests/analysis_corpus
  echo "=== analyzer over the production tree ==="
  # Prefer a build tree that has compile_commands.json for the libclang
  # frontend; the lexer frontend covers boxes without one.
  local analyze_build="${prefix}-analysis"
  if [[ ! -f "${analyze_build}/compile_commands.json" ]]; then
    analyze_build="${prefix}-release"
  fi
  python3 tools/analyze.py --build-dir "${analyze_build}"
}

for stage in "${stages[@]}"; do
  "stage_${stage}"
done

echo "=== all checks passed (${stages[*]}) ==="
