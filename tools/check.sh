#!/usr/bin/env bash
# Full pre-merge gate: a Release build + tests, then an AddressSanitizer
# build + tests. The server library (src/server/) compiles with -Werror in
# both, so warnings there fail the gate.
#
#   tools/check.sh [build-dir-prefix]
#
# Build trees land in <prefix>-release/ and <prefix>-asan/ (default
# prefix: build-check). Pass SETSKETCH_CHECK_JOBS to override the build
# parallelism (default: nproc).

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-check}"
jobs="${SETSKETCH_CHECK_JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure
}

run_config "${prefix}-release" -DCMAKE_BUILD_TYPE=Release
run_config "${prefix}-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSETSKETCH_SANITIZE=address

echo "=== all checks passed ==="
