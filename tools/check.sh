#!/usr/bin/env bash
# Full pre-merge correctness gate, five stages:
#
#   1. release   Release build + full test suite + bench smoke (the
#                update-kernel JSON perf trajectory must validate).
#   2. asan      AddressSanitizer build + full test suite.
#   3. tsan      ThreadSanitizer build + the concurrency-sensitive tests
#                (race detection over the server, shard queues, parallel
#                ingest and lazy slice publication).
#   4. ubsan     UndefinedBehaviorSanitizer build (-fno-sanitize-recover,
#                so any UB fails the run) + full test suite.
#   5. tidy      tools/lint.py source hygiene + validate_bench_json.py
#                --schema-only + clang-tidy over the library (skipped
#                with a notice when clang-tidy is not installed).
#
# The whole tree builds with -Wall -Wextra -Werror in every stage.
#
#   tools/check.sh [build-dir-prefix] [stage ...]
#
# With no stage arguments every stage runs. Build trees land in
# <prefix>-<stage>/ (default prefix: build-check). Pass
# SETSKETCH_CHECK_JOBS to override the build parallelism (default:
# nproc).

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="build-check"
if [[ $# -gt 0 ]]; then
  case "$1" in
    release|asan|tsan|ubsan|tidy) ;;  # First arg is a stage name.
    *) prefix="$1"; shift ;;
  esac
fi
stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(release asan tsan ubsan tidy)
fi
jobs="${SETSKETCH_CHECK_JOBS:-$(nproc)}"

build_and_test() {
  local dir="$1"
  local ctest_filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test ${dir} ==="
  if [[ -n "${ctest_filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -R "${ctest_filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure
  fi
}

stage_release() {
  build_and_test "${prefix}-release" "" -DCMAKE_BUILD_TYPE=Release

  # Bench smoke: a short bench_update_kernel run must produce a JSON perf
  # trajectory that parses and covers every configured sweep point, so
  # the BENCH_update_kernel.json reporting can't silently rot.
  echo "=== bench smoke (update-kernel JSON trajectory) ==="
  local smoke_json="${prefix}-release/BENCH_update_kernel.smoke.json"
  SETSKETCH_BENCH_JSON="${smoke_json}" \
    "${prefix}-release/bench/bench_update_kernel" \
    --benchmark_min_time=0.01 >/dev/null
  python3 tools/validate_bench_json.py "${smoke_json}"
}

stage_asan() {
  build_and_test "${prefix}-asan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=address
}

stage_tsan() {
  # TSAN_OPTIONS: any reported race fails the test run. No suppressions
  # file — the gate requires the tree to be race-free as written.
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    build_and_test "${prefix}-tsan" \
      "TsanConcurrencyTest|ShardQueueTest|SketchServerTest|ParallelIngest" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSETSKETCH_SANITIZE=thread
}

stage_ubsan() {
  # -fno-sanitize-recover=all is added by CMake for the undefined
  # sanitizer, so any flagged UB aborts the offending test.
  build_and_test "${prefix}-ubsan" "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSETSKETCH_SANITIZE=undefined
}

stage_tidy() {
  echo "=== lint (tools/lint.py) ==="
  python3 tools/lint.py
  echo "=== bench-json schema (tools/validate_bench_json.py) ==="
  python3 tools/validate_bench_json.py --schema-only
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy (SETSKETCH_TIDY=ON) ==="
    cmake -B "${prefix}-tidy" -S . -DCMAKE_BUILD_TYPE=Release \
      -DSETSKETCH_TIDY=ON >/dev/null
    cmake --build "${prefix}-tidy" -j "${jobs}" \
      --target setsketch setsketch_server
  else
    echo "=== clang-tidy not installed; skipping the tidy build ==="
    echo "    (install clang-tidy and re-run tools/check.sh tidy)"
  fi
}

for stage in "${stages[@]}"; do
  "stage_${stage}"
done

echo "=== all checks passed (${stages[*]}) ==="
