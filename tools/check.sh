#!/usr/bin/env bash
# Full pre-merge gate: a Release build + tests + a bench smoke stage that
# validates the update-kernel JSON perf reporting, then an AddressSanitizer
# build + tests. The server library (src/server/) compiles with -Werror in
# both, so warnings there fail the gate.
#
#   tools/check.sh [build-dir-prefix]
#
# Build trees land in <prefix>-release/ and <prefix>-asan/ (default
# prefix: build-check). Pass SETSKETCH_CHECK_JOBS to override the build
# parallelism (default: nproc).

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-check}"
jobs="${SETSKETCH_CHECK_JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure
}

run_config "${prefix}-release" -DCMAKE_BUILD_TYPE=Release

# Bench smoke: a short bench_update_kernel run must produce a JSON perf
# trajectory that parses and covers every configured sweep point, so the
# BENCH_update_kernel.json reporting can't silently rot.
echo "=== bench smoke (update-kernel JSON trajectory) ==="
smoke_json="${prefix}-release/BENCH_update_kernel.smoke.json"
SETSKETCH_BENCH_JSON="${smoke_json}" \
  "${prefix}-release/bench/bench_update_kernel" \
  --benchmark_min_time=0.01 >/dev/null
python3 tools/validate_bench_json.py "${smoke_json}"

run_config "${prefix}-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSETSKETCH_SANITIZE=address

echo "=== all checks passed ==="
