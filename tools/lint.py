#!/usr/bin/env python3
"""Source-hygiene lint for the setsketch tree (tidy stage of check.sh).

Checks, over src/ (and where noted, the whole C++ tree):

  * banned calls in src/: rand(), srand(), time( — sketches are "stored
    coins" whose determinism the correctness argument depends on; all
    randomness must flow through hash/prng.h seeding.
  * banned raw assert( in src/: invariants go through SETSKETCH_CHECK /
    SETSKETCH_DCHECK (src/util/check.h) so they survive NDEBUG and abort
    with attribution.
  * header guards: every header uses #ifndef SETSKETCH_..._H_ include
    guards (the codebase's convention; flags accidental #pragma once
    drift or missing guards).
  * include hygiene: no quoted-relative ("../foo.h" or "./foo.h")
    includes — all project includes are root-relative like
    "core/sketch_seed.h"; and no <assert.h>/<cassert> includes in src/.

Architectural seam checks (planner routing, ingest mutation routing,
arena-borrow lifetimes, lock order, hot-path allocation) live in
tools/analyze.py — a token/AST-aware pass that, unlike this per-line
regex lint, cannot be fooled by comments or string literals. This file
stays regex-simple on purpose: non-C++-semantic hygiene only.

Exit status: 0 clean, 1 findings (each printed as path:line: message),
2 usage error. Pure stdlib; safe for CI stages with no build tree.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".h"}

# (regex, message) applied per line of src/ files.
BANNED_IN_SRC = [
    (
        re.compile(r"(?<![\w:.])s?rand\s*\("),
        "banned rand()/srand(): derive randomness from hash/prng.h seeds",
    ),
    (
        re.compile(r"(?<![\w:.])time\s*\("),
        "banned time(): sketch state must be reproducible from seeds",
    ),
    (
        re.compile(r"(?<![\w:.])assert\s*\("),
        "raw assert(): use SETSKETCH_CHECK/SETSKETCH_DCHECK (util/check.h)",
    ),
    (
        re.compile(r'#\s*include\s*(<cassert>|<assert\.h>)'),
        "<cassert> include: use util/check.h instead",
    ),
]

RELATIVE_INCLUDE = re.compile(r'#\s*include\s*"\.\.?/')
GUARD_IFNDEF = re.compile(r"#ifndef\s+(SETSKETCH_[A-Z0-9_]+_H_)")
LINE_COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    """Removes // comments so commented-out code can't trip the bans."""
    return LINE_COMMENT.sub("", line)


def lint_file(
    path: Path, in_src: bool, findings: list, rel: str = ""
) -> None:
    del rel  # Path-scoped seam exemptions moved to tools/analyze.py.
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")
    for lineno, raw in enumerate(lines, start=1):
        line = strip_comment(raw)
        if in_src:
            for pattern, message in BANNED_IN_SRC:
                if pattern.search(line):
                    findings.append(f"{path}:{lineno}: {message}")
        if RELATIVE_INCLUDE.search(line):
            findings.append(
                f"{path}:{lineno}: relative include: use a root-relative "
                'path like "core/sketch_seed.h"'
            )
    if path.suffix == ".h" and in_src:
        match = GUARD_IFNDEF.search(text)
        if match is None:
            findings.append(
                f"{path}:1: missing SETSKETCH_..._H_ include guard"
            )
        elif f"#define {match.group(1)}" not in text:
            findings.append(
                f"{path}:1: include guard {match.group(1)} never #defined"
            )


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's parent repo)",
    )
    args = parser.parse_args(argv[1:])
    root = Path(args.root)
    src = root / "src"
    if not src.is_dir():
        print(f"{src}: not a directory (wrong root?)", file=sys.stderr)
        return 2

    findings = []
    checked = 0
    for directory, in_src in ((src, True), (root / "tests", False),
                              (root / "bench", False),
                              (root / "tools", False),
                              (root / "examples", False)):
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*")):
            if path.suffix in CXX_SUFFIXES | {".cpp"} and path.is_file():
                rel = path.relative_to(root).as_posix()
                lint_file(path, in_src, findings, rel)
                checked += 1

    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s) in {checked} files",
              file=sys.stderr)
        return 1
    print(f"lint: ok ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
