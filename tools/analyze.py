#!/usr/bin/env python3
"""Project-specific static analysis for the setsketch tree.

Stage 8 (`analysis`) of tools/check.sh. Where tools/lint.py keeps generic
source hygiene (banned rand()/assert(), include guards, relative
includes), this analyzer enforces the *architectural* contracts that a
regex-per-line cannot: borrow lifetimes, routing seams, lock ordering,
and the hot-path allocation budget.

Checks (check ids):

  arena-escape        FrameView / UpdateBatchView values borrow from a
                      connection's IngestArena and are valid only for the
                      current readiness-event callback. Storing one (or a
                      field of one) in a class member, a container held in
                      a member, or static/thread_local storage outlives
                      the borrow and dangles on the next recv().
  seam-ingest         Sketch-bank mutation from server code must flow
                      through SketchServer::AdmitPush (the WAL + dedup +
                      epoch seam). Direct MutableSketches / ApplyBatch /
                      AddStream / AddStreamFromSketches calls elsewhere
                      under src/server/ bypass durability and idempotency.
  seam-estimate       Query paths must go through query/plan_cache.h;
                      direct EstimateSetExpression calls in src/ are
                      banned outside the estimator itself, the planner,
                      and the distributed coordinator (which has no
                      epochs to cache against). Supersedes the old
                      lint.py regex, which token-blindly matched inside
                      comments and strings.
  dcheck-side-effect  SETSKETCH_DCHECK compiles out of release builds;
                      a condition with a side effect (++/--/assignment)
                      silently changes program behavior between build
                      types.
  lock-order          Extracts the cross-TU lock acquisition graph (an
                      edge A -> B for every site that acquires B while
                      holding A, keyed Class::member) and reports every
                      edge that participates in a cycle as a potential
                      deadlock. The intended partial order is documented
                      in DESIGN.md section 3.6.
  hotpath-alloc       Functions marked SETSKETCH_HOT_PATH (the per-update
                      ingest kernel: frame scan, varint decode, dedup
                      window) must not allocate, throw, or make blocking
                      syscalls. Cold error-path std::string formatting is
                      deliberately outside the signal set.
  parse-error         (libclang frontend only) a translation unit failed
                      to parse with its compile_commands.json flags.

Suppressions: a finding on line N is suppressed by a comment containing
`analyze-ok: <check-id>` on line N or N-1. Suppressions are for audited
exceptions and should carry a justification in the same comment.

Frontends:

  * libclang (clang.cindex over <build>/compile_commands.json) when
    importable: translation units are parsed for real, the seam checks
    run over AST call expressions (immune to formatting), and parse
    failures are reported. The remaining checks run on the shared
    comment/string-aware scanner.
  * lexer: the shared scanner alone, directly over src/. Used when
    python's clang bindings are absent so the stage still gates CI boxes
    without LLVM installed.

`--frontend auto` (default) picks libclang when available and falls back
with a notice; `--frontend libclang` makes its absence an error.

Corpus mode (`--corpus DIR`, used by the AnalysisCorpus ctest): every
snippet under DIR declares its own expectations --

    // analyze-as: src/server/snippet.cc   (virtual path for scoping)
    // expect: arena-escape                (one per expected check id)
    // expect-clean                        (must produce zero findings)

Snippets are analyzed together (so a seeded lock-order cycle can span
files) and each file's found check-id set must EQUAL its expected set:
a missed detection and a false positive both fail the corpus.

Exit status: 0 clean / corpus green, 1 findings / corpus mismatch,
2 usage or frontend error. Pure stdlib (libclang optional).
"""

import argparse
import re
import sys
from pathlib import Path

CHECK_IDS = (
    "arena-escape",
    "seam-ingest",
    "seam-estimate",
    "seam-backend",
    "dcheck-side-effect",
    "lock-order",
    "hotpath-alloc",
    "parse-error",
)

VIEW_TYPES = ("FrameView", "UpdateBatchView")

# seam-ingest: bank mutators that must only be reached through AdmitPush.
INGEST_MUTATORS = (
    "MutableSketches",
    "ApplyBatch",
    "AddStreamFromSketches",
    "AddStream",
)
INGEST_SCOPE = "src/server/"
INGEST_EXEMPT = {"src/server/sketch_server.cc"}

# seam-estimate: mirrors the exemptions lint.py used to carry.
ESTIMATOR_EXEMPT = {
    "src/core/set_expression_estimator.h",
    "src/core/set_expression_estimator.cc",
    "src/query/plan_cache.cc",
    "src/distributed/coordinator.cc",
}

# seam-backend: DistinctSketch estimation must flow through the kernel's
# one sanctioned entry (EstimateWithBackend in core/sketch_backend.*);
# only the registry and the backend implementations themselves may touch
# a backend's EstimateDistinct/EstimateExpression directly. Everything
# else calling them skips leaf-presence/options validation and the
# single-backend homogeneity contract.
BACKEND_EXEMPT = {
    "src/core/sketch_backend.h",
    "src/core/sketch_backend.cc",
    "src/core/theta_sketch.h",
    "src/core/theta_sketch.cc",
    "src/core/set_sketch.h",
    "src/core/set_sketch.cc",
}

# hotpath-alloc signals: unconditional allocation / blocking calls. Cold
# error-path string building (std::to_string, operator+) is intentionally
# not a signal -- the contract is "no allocation on the success path",
# and the success path of every marked function is branch-checked here.
HOTPATH_SIGNALS = [
    (re.compile(r"(?<![\w.])new\s"), "new expression"),
    (re.compile(r"\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bmake_shared\b"), "make_shared"),
    (re.compile(r"(?<![\w.])(?:malloc|calloc|realloc|strdup)\s*\("),
     "heap allocation call"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve)"
                r"\s*\("),
     "container growth"),
    (re.compile(r"(?<![\w.])throw\b"), "throw"),
    (re.compile(r"::open\s*\(|\bfopen\s*\("), "file open syscall"),
    (re.compile(r"(?<![\w.])(?:sleep|usleep|nanosleep)\s*\("),
     "blocking sleep"),
]

SUPPRESS_RE = re.compile(r"analyze-ok:\s*([a-z-]+)")
DIRECTIVE_ANALYZE_AS = re.compile(r"//\s*analyze-as:\s*(\S+)")
DIRECTIVE_EXPECT = re.compile(r"//\s*expect:\s*([a-z-]+)")
DIRECTIVE_CLEAN = re.compile(r"//\s*expect-clean")

LOCK_DECL_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard<[^>]*>|std::unique_lock<[^>]*>|"
    r"lock_guard<[^>]*>|unique_lock<[^>]*>)\s+\w+\s*\(\s*&?\s*"
    r"([\w]+(?:(?:->|\.)\w+)*)\s*[),]"
)
METHOD_DEF_RE = re.compile(r"\b(\w+)::~?\w+\s*\(")
CLASS_OPEN_RE = re.compile(
    r"(?<!enum )\b(?:class|struct)\s+"
    r"(?:SETSKETCH_\w+(?:\(\s*\"[^\"]*\"\s*\))?\s+)*(\w+)[^;{]*\{")
DCHECK_RE = re.compile(r"\bSETSKETCH_DCHECK\s*\(")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?:\+|-|\*|/|%|&|\||\^|<<|>>)=(?!=)|"
    r"(?<![=!<>+\-*/%&|^])=(?![=])"
)
ESTIMATE_CALL_RE = re.compile(r"(?<![\w:.])EstimateSetExpression\s*\(")
BACKEND_CALL_RE = re.compile(
    r"(?:\.|->)\s*(EstimateDistinct|EstimateExpression)\s*\(")
INGEST_CALL_RE = re.compile(
    r"(?<![\w:])(?:\.|->)?\s*(" + "|".join(INGEST_MUTATORS) + r")\s*\("
)
HOT_MARK_LEADING_RE = re.compile(
    r"SETSKETCH_HOT_PATH\s+(?:[\w:<>,*&]+\s+)*?(\w+)\s*\("
)
HOT_MARK_TRAILING_RE = re.compile(
    r"\b(\w+)\s*\((?:[^()]|\([^()]*\))*\)\s*(?:const\s*)?"
    r"SETSKETCH_HOT_PATH", re.S
)


def strip_code(text):
    """Blanks comments and string/char literal contents, keeping line
    structure and the delimiting quotes, so token checks can't match
    inside either."""
    out = []
    i = 0
    n = len(text)
    state = "code"
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? Look back for R (R"delim( ).
                j = len(out) - 1
                if j >= 0 and out[j] == "R" and (
                        j == 0 or not (out[j - 1].isalnum()
                                       or out[j - 1] == "_")):
                    m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw"
                        out.append('"')
                        i += 1
                        continue
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "str":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "chr":
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # raw
            if text.startswith(raw_delim, i):
                out.append(raw_delim)
                i += len(raw_delim)
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


class SourceFile:
    """One analyzed file: real path, virtual (scoping) path, raw text,
    stripped code, and per-line suppressions."""

    def __init__(self, path, virtual_path, text):
        self.path = path
        self.virtual = virtual_path
        self.text = text
        self.code = strip_code(text)
        self.lines = self.code.split("\n")
        self.raw_lines = text.split("\n")
        self.suppress = {}  # line -> set of check ids
        for lineno, raw in enumerate(self.raw_lines, start=1):
            for m in SUPPRESS_RE.finditer(raw):
                for target in (lineno, lineno + 1):
                    self.suppress.setdefault(target, set()).add(m.group(1))


class Finding:
    def __init__(self, file, line, check, message):
        self.file = file
        self.line = line
        self.check = check
        self.message = message

    def key(self):
        return (self.file, self.line, self.check)

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"


class Analysis:
    """Scanner-based analysis over a set of SourceFiles. All checks are
    frontend-independent; the libclang frontend layers AST-derived seam
    findings and parse diagnostics on top."""

    def __init__(self, files):
        self.files = files
        self.findings = []
        self.lock_edges = {}  # (a, b) -> [(file, line)]
        self.hot_functions = set()  # "Class::name" or "name"

    def add(self, sf, line, check, message):
        if check in sf.suppress.get(line, set()):
            return
        self.findings.append(Finding(sf.virtual, line, check, message))

    def run(self):
        for sf in self.files:
            self.collect_hot_markers(sf)
        for sf in self.files:
            self.check_seams(sf)
            self.check_dcheck(sf)
            self.scan_scopes(sf)
        for sf in self.files:
            self.check_hotpath_bodies(sf)
        self.check_lock_cycles()
        unique = {}
        for f in self.findings:
            unique.setdefault(f.key(), f)
        self.findings = sorted(
            unique.values(), key=lambda f: (f.file, f.line, f.check))
        return self.findings

    # ---- seam checks -------------------------------------------------

    def check_seams(self, sf):
        in_src = sf.virtual.startswith("src/")
        ingest_scoped = (sf.virtual.startswith(INGEST_SCOPE)
                         and sf.virtual not in INGEST_EXEMPT)
        estimate_scoped = in_src and sf.virtual not in ESTIMATOR_EXEMPT
        backend_scoped = in_src and sf.virtual not in BACKEND_EXEMPT
        if not (ingest_scoped or estimate_scoped or backend_scoped):
            return
        for lineno, line in enumerate(sf.lines, start=1):
            if estimate_scoped and ESTIMATE_CALL_RE.search(line):
                self.add(
                    sf, lineno, "seam-estimate",
                    "direct EstimateSetExpression call: route queries "
                    "through query/plan_cache.h (PlanCache::Query / "
                    "EstimateUncached)")
            if backend_scoped:
                m = BACKEND_CALL_RE.search(line)
                if m:
                    self.add(
                        sf, lineno, "seam-backend",
                        f"direct DistinctSketch::{m.group(1)} call: "
                        "backend estimation must flow through "
                        "EstimateWithBackend (core/sketch_backend.h), "
                        "which validates leaves, options, and backend "
                        "homogeneity")
            if ingest_scoped:
                m = INGEST_CALL_RE.search(line)
                if m:
                    self.add(
                        sf, lineno, "seam-ingest",
                        f"direct SketchBank::{m.group(1)} call in server "
                        "code: ingest mutations must flow through "
                        "SketchServer::AdmitPush (WAL + dedup + epoch "
                        "seam)")

    # ---- DCHECK side effects -----------------------------------------

    def check_dcheck(self, sf):
        code = sf.code
        for m in DCHECK_RE.finditer(code):
            start = m.end() - 1  # at the opening paren
            depth = 0
            i = start
            while i < len(code):
                if code[i] == "(":
                    depth += 1
                elif code[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            condition = code[start + 1:i]
            if SIDE_EFFECT_RE.search(condition):
                lineno = code.count("\n", 0, m.start()) + 1
                self.add(
                    sf, lineno, "dcheck-side-effect",
                    "SETSKETCH_DCHECK condition has a side effect "
                    "(++/--/assignment); DCHECKs compile out of release "
                    "builds, so the effect vanishes with NDEBUG")

    # ---- scope scan: lock order, arena escapes, class members --------

    def scan_scopes(self, sf):
        """Single pass over the stripped code tracking brace depth, the
        enclosing class (for lock keys and member declarations), locals
        of view type, and live lock scopes."""
        class_stack = []  # (entry_depth, name)
        lock_stack = []  # (entry_depth, key)
        view_locals = {}  # name -> declared type
        current_class_ctx = ""  # Foo:: prefix from method definitions
        depth = 0
        for lineno, line in enumerate(sf.lines, start=1):
            m = METHOD_DEF_RE.search(line)
            if m and depth <= 1 + len(class_stack):
                current_class_ctx = m.group(1)
                view_locals = {}
            m = CLASS_OPEN_RE.search(line)
            if m and "enum" not in line:
                class_stack.append((depth, m.group(1)))

            in_class_body = bool(class_stack) and not line.lstrip().startswith("}")
            if in_class_body and class_stack[-1][1] not in VIEW_TYPES:
                dm = re.match(
                    r"\s*(?:std::vector<\s*)?(FrameView|UpdateBatchView)"
                    r"\s*>?\s+\w+\s*(?:=[^=]|;|\{)", line)
                if dm:
                    self.add(
                        sf, lineno, "arena-escape",
                        f"class member of arena-view type {dm.group(1)}: "
                        "views borrow from the connection's IngestArena "
                        "and dangle past the readiness-event callback")

            sm = re.search(
                r"\b(thread_local|static)\s+(?:const\s+)?"
                r"(FrameView|UpdateBatchView)\b", line)
            if sm:
                self.add(
                    sf, lineno, "arena-escape",
                    f"{sm.group(1)} storage of arena-view type "
                    f"{sm.group(2)} outlives the readiness-event borrow")

            lm = re.match(
                r"\s*(?:thread_local\s+)?(FrameView|UpdateBatchView)"
                r"\s+(\w+)\s*[;={]", line)
            if lm and not class_stack:
                view_locals[lm.group(2)] = lm.group(1)

            if view_locals:
                self.check_view_stores(sf, lineno, line, view_locals)

            # Lock scopes + edges. Process braces and declarations in
            # positional order so a same-line `{ MutexLock l(&m); }`
            # nests correctly.
            events = []
            for i, c in enumerate(line):
                if c == "{":
                    events.append((i, "open", None))
                elif c == "}":
                    events.append((i, "close", None))
            for dm in LOCK_DECL_RE.finditer(line):
                events.append((dm.start(), "lock", dm.group(1)))
            events.sort(key=lambda e: e[0])
            for _, kind, arg in events:
                if kind == "open":
                    depth += 1
                elif kind == "close":
                    depth -= 1
                    while lock_stack and lock_stack[-1][0] > depth:
                        lock_stack.pop()
                    while class_stack and class_stack[-1][0] >= depth:
                        class_stack.pop()
                else:
                    key = self.lock_key(arg, current_class_ctx)
                    for _, held in lock_stack:
                        if held != key:
                            self.lock_edges.setdefault(
                                (held, key), []).append(
                                    (sf.virtual, lineno))
                    lock_stack.append((depth, key))

    @staticmethod
    def lock_key(expr, class_ctx):
        """Normalizes a lock expression to a graph key. Plain members
        (`mu_`) get the enclosing class prefix so `Wal::mutex_` and
        `PlanCache::mutex_` stay distinct; pointer paths keep their final
        component qualified by the pointer name (`state->mutex`)."""
        expr = expr.strip()
        if re.fullmatch(r"\w+", expr):
            return f"{class_ctx}::{expr}" if class_ctx else expr
        return f"{class_ctx}::{expr}" if class_ctx else expr

    def check_view_stores(self, sf, lineno, line, view_locals):
        names = "|".join(re.escape(n) for n in view_locals)
        # member = ... view ... ;   or   member_.push_back(view...)
        if re.search(
                rf"\b\w+_\s*=[^=].*\b(?:{names})\b", line) or re.search(
                rf"\b\w+_\s*\.\s*(?:push_back|emplace_back|insert|"
                rf"emplace)\s*\(.*\b(?:{names})\b", line):
            self.add(
                sf, lineno, "arena-escape",
                "arena view stored into a class member: the borrow ends "
                "with the readiness-event callback; copy the bytes "
                "instead")

    # ---- hot path ----------------------------------------------------

    def collect_hot_markers(self, sf):
        """Finds SETSKETCH_HOT_PATH-marked declarations, qualified by
        the enclosing class when declared inside one."""
        if sf.virtual.endswith("util/thread_annotations.h"):
            return  # The macro's own definition, not a marked function.
        code = sf.code
        marks = []
        for m in HOT_MARK_LEADING_RE.finditer(code):
            marks.append((m.start(), m.group(1)))
        for m in HOT_MARK_TRAILING_RE.finditer(code):
            marks.append((m.start(), m.group(1)))
        marks = [(o, n) for o, n in marks if not n.startswith("__")]
        if not marks:
            return
        # Map offsets to enclosing class via a coarse brace walk.
        class_at = self.class_regions(code)
        for offset, name in marks:
            cls = class_at(offset)
            self.hot_functions.add(f"{cls}::{name}" if cls else name)

    @staticmethod
    def class_regions(code):
        regions = []  # (start, end, name)
        for m in CLASS_OPEN_RE.finditer(code):
            if "enum" in m.group(0):
                continue
            depth = 0
            i = m.end() - 1
            while i < len(code):
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            regions.append((m.start(), i, m.group(1)))

        def lookup(offset):
            best = ""
            best_span = None
            for start, end, name in regions:
                if start <= offset <= end:
                    span = end - start
                    if best_span is None or span < best_span:
                        best, best_span = name, span
            return best

        return lookup

    def check_hotpath_bodies(self, sf):
        if not self.hot_functions:
            return
        code = sf.code
        for qualified in sorted(self.hot_functions):
            cls, _, name = qualified.rpartition("::")
            if cls:
                pattern = rf"\b{re.escape(cls)}\s*::\s*{re.escape(name)}\s*\("
            else:
                pattern = rf"(?<![\w:])(?<!\.){re.escape(name)}\s*\("
            for m in re.finditer(pattern, code):
                body = self.match_body(code, m.end() - 1)
                if body is None:
                    continue
                body_start, body_text = body
                # In-class definitions of unqualified hot names would
                # mis-bind; skip unqualified matches inside any class.
                if not cls and self.class_regions(code)(m.start()):
                    continue
                for signal, label in HOTPATH_SIGNALS:
                    sm = signal.search(body_text)
                    if sm:
                        lineno = code.count(
                            "\n", 0, body_start + sm.start()) + 1
                        self.add(
                            sf, lineno, "hotpath-alloc",
                            f"{label} inside SETSKETCH_HOT_PATH function "
                            f"{qualified or name}: the per-update ingest "
                            "kernel must not allocate or block")

    @staticmethod
    def match_body(code, paren_start):
        """From the opening paren of a candidate definition, skips the
        parameter list and returns (body_offset, body_text) if a `{`
        body follows (i.e. this is a definition, not a call/decl)."""
        depth = 0
        i = paren_start
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            return None
        j = i + 1
        while j < len(code):
            if code[j].isspace():
                j += 1
                continue
            word = re.match(r"\w+", code[j:])
            if word and word.group(0) in ("const", "noexcept", "override",
                                          "final"):
                j += word.end()
                continue
            break
        if j >= len(code) or code[j] != "{":
            return None
        depth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        return j, code[j:k + 1]

    # ---- lock-order cycles -------------------------------------------

    def check_lock_cycles(self):
        graph = {}
        for (a, b), _sites in self.lock_edges.items():
            graph.setdefault(a, set()).add(b)

        def reaches(src, dst):
            seen = set()
            stack = [src]
            while stack:
                node = stack.pop()
                if node == dst:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(graph.get(node, ()))
            return False

        for (a, b), sites in sorted(self.lock_edges.items()):
            if reaches(b, a):
                for file, line in sites:
                    sf = next(
                        (s for s in self.files if s.virtual == file), None)
                    finding = Finding(
                        file, line, "lock-order",
                        f"acquiring {b} while holding {a} completes a "
                        "lock cycle (potential deadlock); see the lock "
                        "order in DESIGN.md section 3.6")
                    if sf is not None and "lock-order" in sf.suppress.get(
                            line, set()):
                        continue
                    self.findings.append(finding)


# ---- libclang frontend ----------------------------------------------


def libclang_seam_findings(build_dir, files, notices):
    """Parses each file's TU with its compile_commands.json flags and
    returns AST-level seam findings + parse errors, or None if the
    bindings are unusable."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(build_dir))
        index = cindex.Index.create()
    except Exception as error:  # noqa: BLE001 - degrade to lexer
        notices.append(f"libclang unusable ({error}); using lexer")
        return None

    by_real = {str(sf.path): sf for sf in files}
    findings = []
    parsed = 0
    for sf in files:
        if sf.path is None or sf.path.suffix != ".cc":
            continue
        commands = db.getCompileCommands(str(sf.path))
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:-1]
                if a not in ("-c", "-o") and not a.endswith(".o")]
        try:
            tu = index.parse(str(sf.path), args=args)
        except Exception as error:  # noqa: BLE001
            notices.append(f"libclang parse failed for {sf.virtual}: "
                           f"{error}")
            continue
        parsed += 1
        for diag in tu.diagnostics:
            if diag.severity >= cindex.Diagnostic.Error:
                findings.append(Finding(
                    sf.virtual, diag.location.line, "parse-error",
                    diag.spelling))
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != cindex.CursorKind.CALL_EXPR:
                continue
            loc = cursor.location
            if loc.file is None:
                continue
            owner = by_real.get(str(loc.file))
            if owner is None:
                continue
            name = cursor.spelling
            if (name == "EstimateSetExpression"
                    and owner.virtual.startswith("src/")
                    and owner.virtual not in ESTIMATOR_EXEMPT):
                findings.append(Finding(
                    owner.virtual, loc.line, "seam-estimate",
                    "direct EstimateSetExpression call (AST): route "
                    "queries through query/plan_cache.h"))
            if (name in INGEST_MUTATORS
                    and owner.virtual.startswith(INGEST_SCOPE)
                    and owner.virtual not in INGEST_EXEMPT):
                findings.append(Finding(
                    owner.virtual, loc.line, "seam-ingest",
                    f"direct SketchBank::{name} call (AST): ingest "
                    "mutations must flow through AdmitPush"))
    notices.append(f"libclang frontend: {parsed} TU(s) parsed")
    return findings


# ---- drivers ---------------------------------------------------------


def load_tree(root):
    files = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in (".h", ".cc") and path.is_file():
            virtual = path.relative_to(root).as_posix()
            files.append(SourceFile(
                path, virtual, path.read_text(encoding="utf-8")))
    return files


def run_production(args, root):
    files = load_tree(root)
    if not files:
        print(f"{root}/src: no sources found", file=sys.stderr)
        return 2
    analysis = Analysis(files)
    findings = analysis.run()

    notices = []
    if args.frontend in ("auto", "libclang"):
        build_dir = root / args.build_dir
        ast = None
        if (build_dir / "compile_commands.json").is_file():
            ast = libclang_seam_findings(build_dir, files, notices)
        else:
            notices.append(
                f"{build_dir}/compile_commands.json missing; using lexer")
        if ast is None and args.frontend == "libclang":
            for notice in notices:
                print(f"analyze: {notice}", file=sys.stderr)
            print("analyze: --frontend libclang requested but "
                  "unavailable", file=sys.stderr)
            return 2
        if ast:
            seen = {f.key() for f in findings}
            findings.extend(f for f in ast if f.key() not in seen)
            findings.sort(key=lambda f: (f.file, f.line, f.check))

    for notice in notices:
        print(f"analyze: {notice}")
    for finding in findings:
        print(finding, file=sys.stderr)
    hot = len(analysis.hot_functions)
    edges = len(analysis.lock_edges)
    if findings:
        print(f"analyze: {len(findings)} finding(s) in {len(files)} "
              f"files", file=sys.stderr)
        return 1
    print(f"analyze: ok ({len(files)} files, {hot} hot-path functions, "
          f"{edges} lock-order edges, 0 cycles)")
    return 0


def run_corpus(args, corpus_dir):
    snippets = []
    for path in sorted(corpus_dir.glob("*.cc")) + sorted(
            corpus_dir.glob("*.h")):
        text = path.read_text(encoding="utf-8")
        virt = DIRECTIVE_ANALYZE_AS.search(text)
        expects = set(DIRECTIVE_EXPECT.findall(text))
        clean = DIRECTIVE_CLEAN.search(text) is not None
        if virt is None:
            print(f"{path}: missing '// analyze-as:' directive",
                  file=sys.stderr)
            return 2
        if not expects and not clean:
            print(f"{path}: needs '// expect: <id>' or '// expect-clean'",
                  file=sys.stderr)
            return 2
        unknown = expects - set(CHECK_IDS)
        if unknown:
            print(f"{path}: unknown check id(s) {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        snippets.append(
            (path, SourceFile(path, virt.group(1), text), expects))

    analysis = Analysis([sf for _, sf, _ in snippets])
    findings = analysis.run()
    by_virtual = {}
    for finding in findings:
        by_virtual.setdefault(finding.file, set()).add(finding.check)

    failures = 0
    for path, sf, expects in snippets:
        found = by_virtual.get(sf.virtual, set())
        if found == expects:
            verdict = "ok"
        else:
            verdict = "FAIL"
            failures += 1
        detail = (f"expected {sorted(expects) or ['clean']}, "
                  f"found {sorted(found) or ['clean']}")
        print(f"corpus {verdict}: {path.name} ({detail})")
        if verdict == "FAIL":
            for finding in findings:
                if finding.file == sf.virtual:
                    print(f"    {finding}", file=sys.stderr)
    total = len(snippets)
    if failures:
        print(f"corpus: {failures}/{total} snippet(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"corpus: ok ({total} snippets)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's parent repo)")
    parser.add_argument(
        "--build-dir", default="build",
        help="build tree holding compile_commands.json (default: build)")
    parser.add_argument(
        "--frontend", choices=("auto", "libclang", "lexer"),
        default="auto",
        help="auto: libclang when importable, else the lexer")
    parser.add_argument(
        "--corpus", metavar="DIR",
        help="corpus mode: verify // expect: directives under DIR")
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print the check ids and exit")
    args = parser.parse_args(argv[1:])

    if args.list_checks:
        for check in CHECK_IDS:
            print(check)
        return 0

    root = Path(args.root)
    if args.corpus:
        corpus_dir = Path(args.corpus)
        if not corpus_dir.is_dir():
            print(f"{corpus_dir}: not a directory", file=sys.stderr)
            return 2
        return run_corpus(args, corpus_dir)
    if not (root / "src").is_dir():
        print(f"{root}/src: not a directory (wrong --root?)",
              file=sys.stderr)
        return 2
    return run_production(args, root)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
