#!/usr/bin/env python3
"""Validates a BENCH_update_kernel.json perf-trajectory file.

Usage: validate_bench_json.py [--schema-only] <path>

Checks that the file exists and parses as JSON, identifies itself as the
update-kernel bench, and contains a positive ns_per_op result for every
configured sweep point (scalar/sliced/batched x s, per-update/batched
bank x r). tools/check.sh runs this after a smoke run of
bench_update_kernel so the perf reporting cannot silently rot.

--schema-only validates the expected-sweep table itself (names well
formed, no duplicates) without reading any file, so lint/tidy CI stages
can exercise this script without building a bench binary.

Exit status: 0 valid, 1 invalid or unreadable input, 2 usage error.
"""

import argparse
import sys

S_SWEEP = (8, 16, 32, 64)
R_SWEEP = (64, 256, 512)

EXPECTED = (
    [f"BM_UpdateScalar/{s}" for s in S_SWEEP]
    + [f"BM_UpdateSliced/{s}" for s in S_SWEEP]
    + [f"BM_UpdateBatched/{s}" for s in S_SWEEP]
    + [f"BM_BankApplyPerUpdate/{r}" for r in R_SWEEP]
    + [f"BM_BankApplyBatch/{r}" for r in R_SWEEP]
)


def check_schema():
    """Validates the EXPECTED table itself; returns a list of problems."""
    problems = []
    if not EXPECTED:
        problems.append("EXPECTED sweep table is empty")
    if len(set(EXPECTED)) != len(EXPECTED):
        problems.append("EXPECTED sweep table has duplicate names")
    for name in EXPECTED:
        base, _, arg = name.partition("/")
        if not base.startswith("BM_") or not arg.isdigit():
            problems.append(f"malformed sweep name {name!r}")
    return problems


def validate_file(path):
    """Validates one trajectory file; returns a list of failures."""
    import json

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        return [f"cannot read file: {err}"]
    except json.JSONDecodeError as err:
        return [f"invalid JSON: {err}"]
    if not isinstance(doc, dict):
        return ["top-level JSON value is not an object"]
    if doc.get("bench") != "update_kernel":
        return ["missing bench=update_kernel marker"]
    raw_results = doc.get("results", [])
    if not isinstance(raw_results, list) or not raw_results:
        return ["empty or missing results sweep"]
    results = {
        r.get("name"): r for r in raw_results if isinstance(r, dict)
    }
    failures = []
    for name in EXPECTED:
        entry = results.get(name)
        if entry is None:
            failures.append(f"missing result {name}")
        elif not (
            isinstance(entry.get("ns_per_op"), (int, float))
            and entry["ns_per_op"] > 0
        ):
            failures.append(f"{name}: ns_per_op not a positive number")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="validate_bench_json.py [--schema-only] [path]",
    )
    parser.add_argument(
        "--schema-only",
        action="store_true",
        help="validate the expected-sweep table only; no file needed",
    )
    parser.add_argument("path", nargs="?", help="trajectory JSON to check")
    args = parser.parse_args(argv[1:])

    problems = check_schema()
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    if args.schema_only:
        print(f"schema: ok ({len(EXPECTED)} sweep points)")
        return 0

    if args.path is None:
        parser.print_usage(sys.stderr)
        print(
            "error: a trajectory file path is required "
            "(or pass --schema-only)",
            file=sys.stderr,
        )
        return 2
    failures = validate_file(args.path)
    if failures:
        for failure in failures:
            print(f"{args.path}: {failure}", file=sys.stderr)
        return 1
    print(f"{args.path}: ok ({len(EXPECTED)} sweep points)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
