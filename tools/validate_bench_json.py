#!/usr/bin/env python3
"""Validates a setsketch BENCH_*.json perf-trajectory file.

Usage: validate_bench_json.py [--schema-only] <path>

The file must parse as JSON, identify itself via its "bench" marker, and
contain a positive ns_per_op result for every sweep point that bench is
configured to emit. Benches are keyed by the marker:

  update_kernel     bench_update_kernel (scalar/sliced/batched x s,
                    per-update/batched bank x r)
  fault_tolerance   bench_fault_tolerance (loopback ingest with the WAL
                    off / on without fsync / on with fsync)
  ingest_path       bench_ingest_path (epoll/zero-copy/SIMD fast path
                    vs the legacy thread-per-connection loop, wal
                    off/nofsync/fsync, client batch-width sweep)
  plan_cache        bench_plan_cache (repeated-query throughput: cold
                    direct/replan vs hot/equivalent cache hits, epoch
                    invalidation re-merge, served loopback QUERY path)
  cluster           bench_cluster (single-node vs routed ingest with and
                    without replication; federated query cost cold vs
                    via the router's epoch-aware summary cache; the
                    kill/restart/repair time-to-readmit turnaround)
  backends          bench_backends (pluggable distinct-sketch backend
                    shootout: ingest/estimate cost, accuracy and bytes
                    per backend, plus the deletion-storm scenario where
                    an insert-only sampling baseline diverges)

tools/check.sh smoke-runs each bench and validates its trajectory here,
so the perf reporting cannot silently rot.

--schema-only validates the expected-sweep tables themselves (names well
formed, no duplicates) without reading any file, so lint/tidy CI stages
can exercise this script without building a bench binary.

Exit status: 0 valid, 1 invalid or unreadable input, 2 usage error.
"""

import argparse
import re
import sys

S_SWEEP = (8, 16, 32, 64)
R_SWEEP = (64, 256, 512)

EXPECTED_BY_BENCH = {
    "update_kernel": (
        [f"BM_UpdateScalar/{s}" for s in S_SWEEP]
        + [f"BM_UpdateSliced/{s}" for s in S_SWEEP]
        + [f"BM_UpdateBatched/{s}" for s in S_SWEEP]
        + [f"BM_BankApplyPerUpdate/{r}" for r in R_SWEEP]
        + [f"BM_BankApplyBatch/{r}" for r in R_SWEEP]
    ),
    "fault_tolerance": [
        "LoopbackIngest/wal_off",
        "LoopbackIngest/wal_nofsync",
        "LoopbackIngest/wal_fsync",
    ],
    "ingest_path": [
        "IngestPath/legacy_wal_off",
        "IngestPath/fast_wal_off",
        "IngestPath/legacy_wal_nofsync",
        "IngestPath/fast_wal_nofsync",
        "IngestPath/legacy_wal_fsync",
        "IngestPath/fast_wal_fsync",
        "IngestPath/fast_batch_16384",
        "IngestPath/fast_batch_65536",
    ],
    "plan_cache": [
        "PlanCacheQuery/cold_direct",
        "PlanCacheQuery/cold_replan",
        "PlanCacheQuery/hot_hit",
        "PlanCacheQuery/equivalent_hit",
        "PlanCacheQuery/invalidate_requery",
        "PlanCacheQuery/served_hot",
    ],
    "cluster": [
        "ClusterIngest/single_node",
        "ClusterIngest/router_fanout",
        "ClusterIngest/router_replicated",
        "ClusterQuery/single_node",
        "ClusterQuery/federated_cold",
        "ClusterQuery/federated_hot",
        "ClusterRepair/time_to_readmit",
    ],
    "backends": [
        f"{stage}/{backend}"
        for stage in ("BackendIngest", "BackendEstimate", "DeletionStorm")
        for backend in ("two_level", "theta_kmv", "set_sketch",
                        "kmv_baseline")
    ],
}

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*/[A-Za-z0-9_]+$")


def check_schema():
    """Validates the EXPECTED tables themselves; returns problem list."""
    problems = []
    if not EXPECTED_BY_BENCH:
        problems.append("no benches configured")
    for bench, expected in EXPECTED_BY_BENCH.items():
        if not expected:
            problems.append(f"{bench}: expected sweep table is empty")
        if len(set(expected)) != len(expected):
            problems.append(f"{bench}: duplicate sweep names")
        for name in expected:
            if not _NAME_RE.match(name):
                problems.append(f"{bench}: malformed sweep name {name!r}")
    return problems


def validate_file(path):
    """Validates one trajectory file; returns a list of failures."""
    import json

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        return [f"cannot read file: {err}"]
    except json.JSONDecodeError as err:
        return [f"invalid JSON: {err}"]
    if not isinstance(doc, dict):
        return ["top-level JSON value is not an object"]
    bench = doc.get("bench")
    expected = EXPECTED_BY_BENCH.get(bench)
    if expected is None:
        known = ", ".join(sorted(EXPECTED_BY_BENCH))
        return [f"unknown bench marker {bench!r} (known: {known})"]
    raw_results = doc.get("results", [])
    if not isinstance(raw_results, list) or not raw_results:
        return ["empty or missing results sweep"]
    results = {
        r.get("name"): r for r in raw_results if isinstance(r, dict)
    }
    failures = []
    for name in expected:
        entry = results.get(name)
        if entry is None:
            failures.append(f"missing result {name}")
        elif not (
            isinstance(entry.get("ns_per_op"), (int, float))
            and entry["ns_per_op"] > 0
        ):
            failures.append(f"{name}: ns_per_op not a positive number")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="validate_bench_json.py [--schema-only] [path]",
    )
    parser.add_argument(
        "--schema-only",
        action="store_true",
        help="validate the expected-sweep tables only; no file needed",
    )
    parser.add_argument("path", nargs="?", help="trajectory JSON to check")
    args = parser.parse_args(argv[1:])

    problems = check_schema()
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    total = sum(len(v) for v in EXPECTED_BY_BENCH.values())
    if args.schema_only:
        print(
            f"schema: ok ({len(EXPECTED_BY_BENCH)} benches, "
            f"{total} sweep points)"
        )
        return 0

    if args.path is None:
        parser.print_usage(sys.stderr)
        print(
            "error: a trajectory file path is required "
            "(or pass --schema-only)",
            file=sys.stderr,
        )
        return 2
    failures = validate_file(args.path)
    if failures:
        for failure in failures:
            print(f"{args.path}: {failure}", file=sys.stderr)
        return 1
    print(f"{args.path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
