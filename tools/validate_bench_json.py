#!/usr/bin/env python3
"""Validates a BENCH_update_kernel.json perf-trajectory file.

Usage: validate_bench_json.py <path>

Checks that the file parses as JSON, identifies itself as the
update-kernel bench, and contains a positive ns_per_op result for every
configured sweep point (scalar/sliced/batched x s, per-update/batched
bank x r). tools/check.sh runs this after a smoke run of
bench_update_kernel so the perf reporting cannot silently rot.
"""

import json
import sys

S_SWEEP = (8, 16, 32, 64)
R_SWEEP = (64, 256, 512)

EXPECTED = (
    [f"BM_UpdateScalar/{s}" for s in S_SWEEP]
    + [f"BM_UpdateSliced/{s}" for s in S_SWEEP]
    + [f"BM_UpdateBatched/{s}" for s in S_SWEEP]
    + [f"BM_BankApplyPerUpdate/{r}" for r in R_SWEEP]
    + [f"BM_BankApplyBatch/{r}" for r in R_SWEEP]
)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: unreadable or invalid JSON: {err}", file=sys.stderr)
        return 1
    if doc.get("bench") != "update_kernel":
        print(f"{path}: missing bench=update_kernel marker", file=sys.stderr)
        return 1
    results = {r.get("name"): r for r in doc.get("results", [])}
    failures = []
    for name in EXPECTED:
        entry = results.get(name)
        if entry is None:
            failures.append(f"missing result {name}")
        elif not (
            isinstance(entry.get("ns_per_op"), (int, float))
            and entry["ns_per_op"] > 0
        ):
            failures.append(f"{name}: ns_per_op not a positive number")
    if failures:
        for failure in failures:
            print(f"{path}: {failure}", file=sys.stderr)
        return 1
    print(f"{path}: ok ({len(EXPECTED)} sweep points)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
