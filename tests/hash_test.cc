// Tests for the hashing substrate: PRNGs, GF(2^61-1) arithmetic, bit
// utilities, and the first-/second-level hash families.

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "hash/bit_util.h"
#include "hash/hash_family.h"
#include "hash/mersenne61.h"
#include "hash/prng.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// PRNG

TEST(SplitMix64Test, IsDeterministicPerSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownFirstValueForSeedZero) {
  // Reference value of the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256Test, IsDeterministicPerSeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, NextBelowStaysInRange) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(37), 37u);
  }
}

TEST(Xoshiro256Test, NextBelowCoversAllResidues) {
  Xoshiro256StarStar rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleMeanIsCentered) {
  Xoshiro256StarStar rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// ---------------------------------------------------------------------------
// GF(2^61 - 1)

TEST(Mersenne61Test, ReduceIdentityBelowPrime) {
  EXPECT_EQ(Reduce61(0), 0u);
  EXPECT_EQ(Reduce61(1), 1u);
  EXPECT_EQ(Reduce61(kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Mersenne61Test, ReduceWrapsAtPrime) {
  EXPECT_EQ(Reduce61(kMersenne61), 0u);
  EXPECT_EQ(Reduce61(kMersenne61 + 5), 5u);
}

TEST(Mersenne61Test, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod61(3, 7), 21u);
  EXPECT_EQ(MulMod61(0, 12345), 0u);
  EXPECT_EQ(MulMod61(1, kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Mersenne61Test, MulModMatches128BitReference) {
  Xoshiro256StarStar rng(23);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Next() % kMersenne61;
    const uint64_t b = rng.Next() % kMersenne61;
    const __uint128_t ref =
        (static_cast<__uint128_t>(a) * b) % kMersenne61;
    EXPECT_EQ(MulMod61(a, b), static_cast<uint64_t>(ref));
  }
}

TEST(Mersenne61Test, AddModWraps) {
  EXPECT_EQ(AddMod61(kMersenne61 - 1, 1), 0u);
  EXPECT_EQ(AddMod61(kMersenne61 - 2, 1), kMersenne61 - 1);
  EXPECT_EQ(AddMod61(5, 6), 11u);
}

TEST(Mersenne61Test, FieldDistributivity) {
  Xoshiro256StarStar rng(29);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.Next() % kMersenne61;
    const uint64_t b = rng.Next() % kMersenne61;
    const uint64_t c = rng.Next() % kMersenne61;
    EXPECT_EQ(MulMod61(a, AddMod61(b, c)),
              AddMod61(MulMod61(a, b), MulMod61(a, c)));
  }
}

// ---------------------------------------------------------------------------
// Bit utilities

TEST(BitUtilTest, LsbBasics) {
  EXPECT_EQ(Lsb(1), 0);
  EXPECT_EQ(Lsb(2), 1);
  EXPECT_EQ(Lsb(0x8000000000000000ULL), 63);
  EXPECT_EQ(Lsb(12), 2);  // 0b1100
}

TEST(BitUtilTest, LsbClampedHandlesZeroAndOverflow) {
  EXPECT_EQ(LsbClamped(0, 10), 10);
  EXPECT_EQ(LsbClamped(1ULL << 20, 10), 10);
  EXPECT_EQ(LsbClamped(1ULL << 5, 10), 5);
}

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(BitUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1ULL << 40), 40);
  EXPECT_EQ(CeilLog2((1ULL << 40) + 1), 41);
}

// ---------------------------------------------------------------------------
// First-level hash families

TEST(FirstLevelHashTest, Mix64IsDeterministic) {
  const FirstLevelHash h1 = FirstLevelHash::Mix64(99);
  const FirstLevelHash h2 = FirstLevelHash::Mix64(99);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(FirstLevelHashTest, Mix64SeedsAreIndependent) {
  const FirstLevelHash h1 = FirstLevelHash::Mix64(1);
  const FirstLevelHash h2 = FirstLevelHash::Mix64(2);
  int same = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if (h1(x) == h2(x)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(FirstLevelHashTest, KWisePolyIsDeterministic) {
  const FirstLevelHash h1 = FirstLevelHash::KWisePoly(4, 7);
  const FirstLevelHash h2 = FirstLevelHash::KWisePoly(4, 7);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(FirstLevelHashTest, KWisePolyOutputsBelowPrime) {
  const FirstLevelHash h = FirstLevelHash::KWisePoly(4, 3);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h(x), kMersenne61);
}

TEST(FirstLevelHashTest, FromIdentityRoundTrips) {
  const FirstLevelHash original = FirstLevelHash::KWisePoly(6, 12345);
  const FirstLevelHash rebuilt = FirstLevelHash::FromIdentity(
      original.kind(), original.independence(), original.seed());
  EXPECT_EQ(original, rebuilt);
  for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(original(x), rebuilt(x));
}

TEST(FirstLevelHashTest, InjectiveOnLargeDomainSample) {
  // h maps [M] into [M^2]; collisions on a 2^17 sample should not occur.
  const FirstLevelHash h = FirstLevelHash::Mix64(31);
  std::set<uint64_t> outputs;
  const int n = 1 << 17;
  for (int x = 0; x < n; ++x) outputs.insert(h(static_cast<uint64_t>(x)));
  EXPECT_EQ(outputs.size(), static_cast<size_t>(n));
}

// The LSB of the hash must be geometrically distributed:
// Pr[level = l] = 2^-(l+1). Checked for both families.
class FirstLevelGeometricTest
    : public ::testing::TestWithParam<FirstLevelKind> {};

TEST_P(FirstLevelGeometricTest, LsbLevelsAreGeometric) {
  const FirstLevelHash h =
      GetParam() == FirstLevelKind::kMix64
          ? FirstLevelHash::Mix64(41)
          : FirstLevelHash::KWisePoly(8, 41);
  const int n = 1 << 16;
  std::map<int, int> level_counts;
  for (int x = 0; x < n; ++x) {
    ++level_counts[LsbClamped(h(static_cast<uint64_t>(x)), 63)];
  }
  for (int level = 0; level < 6; ++level) {
    const double expected = n / std::exp2(level + 1);
    const double got = level_counts[level];
    // 6 sigma tolerance on a binomial(n, 2^-(l+1)).
    const double p = 1.0 / std::exp2(level + 1);
    const double sigma = std::sqrt(n * p * (1 - p));
    EXPECT_NEAR(got, expected, 6 * sigma)
        << "level " << level << " for kind "
        << static_cast<int>(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, FirstLevelGeometricTest,
                         ::testing::Values(FirstLevelKind::kMix64,
                                           FirstLevelKind::kKWisePoly));

// t-wise polynomial family sweep: different independence degrees all give
// deterministic, distinct functions.
class KWiseIndependenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KWiseIndependenceTest, DistinctSeedsGiveDistinctFunctions) {
  const int t = GetParam();
  const FirstLevelHash h1 = FirstLevelHash::KWisePoly(t, 100);
  const FirstLevelHash h2 = FirstLevelHash::KWisePoly(t, 101);
  int same = 0;
  for (uint64_t x = 0; x < 500; ++x) {
    if (h1(x) == h2(x)) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST_P(KWiseIndependenceTest, OutputsLookUniform) {
  const int t = GetParam();
  const FirstLevelHash h = FirstLevelHash::KWisePoly(t, 55);
  // Bucket into 16 ranges of the 61-bit output; expect near-uniform fill.
  std::vector<int> buckets(16, 0);
  const int n = 1 << 14;
  for (int x = 0; x < n; ++x) {
    ++buckets[static_cast<size_t>(h(static_cast<uint64_t>(x)) >> 57)];
  }
  const double expected = n / 16.0;
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(buckets[static_cast<size_t>(b)], expected, 6 * std::sqrt(expected))
        << "bucket " << b << " at t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(IndependenceDegrees, KWiseIndependenceTest,
                         ::testing::Values(2, 3, 4, 8, 12));

// ---------------------------------------------------------------------------
// Second-level (pairwise bit) hashes

TEST(PairwiseBitHashTest, OutputsAreBits) {
  const PairwiseBitHash g = PairwiseBitHash::FromSeed(5);
  for (uint64_t x = 0; x < 1000; ++x) {
    const int bit = g(x);
    EXPECT_TRUE(bit == 0 || bit == 1);
  }
}

TEST(PairwiseBitHashTest, IsDeterministicPerSeed) {
  const PairwiseBitHash g1 = PairwiseBitHash::FromSeed(77);
  const PairwiseBitHash g2 = PairwiseBitHash::FromSeed(77);
  for (uint64_t x = 0; x < 500; ++x) EXPECT_EQ(g1(x), g2(x));
}

TEST(PairwiseBitHashTest, BitsAreBalanced) {
  const PairwiseBitHash g = PairwiseBitHash::FromSeed(123);
  int ones = 0;
  const int n = 1 << 15;
  for (int x = 0; x < n; ++x) ones += g(static_cast<uint64_t>(x));
  EXPECT_NEAR(ones, n / 2, 6 * std::sqrt(n / 4.0));
}

TEST(PairwiseBitHashTest, PairsSplitWithProbabilityHalf) {
  // For two fixed distinct elements, the family splits them for ~half the
  // seeds — the property Lemma 3.1's singleton check relies on.
  int split = 0;
  const int trials = 4000;
  for (int seed = 0; seed < trials; ++seed) {
    const PairwiseBitHash g =
        PairwiseBitHash::FromSeed(static_cast<uint64_t>(seed));
    if (g(1234567) != g(89101112)) ++split;
  }
  EXPECT_NEAR(split, trials / 2, 6 * std::sqrt(trials / 4.0));
}

TEST(PairwiseBitHashTest, DifferentSeedsDisagreeSomewhere) {
  const PairwiseBitHash g1 = PairwiseBitHash::FromSeed(1);
  const PairwiseBitHash g2 = PairwiseBitHash::FromSeed(2);
  bool differ = false;
  for (uint64_t x = 0; x < 200 && !differ; ++x) differ = g1(x) != g2(x);
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace setsketch
