// Integration tests for the StreamEngine: the Figure 1 architecture
// end-to-end (register streams + continuous queries, ingest update streams
// with deletions, answer from synopses, compare against exact tracking).

#include <gtest/gtest.h>

#include "query/stream_engine.h"
#include "stream/stream_generator.h"
#include "util/stats.h"

namespace setsketch {
namespace {

StreamEngine::Options TestOptions(int copies = 256, bool exact = true) {
  StreamEngine::Options options;
  options.params.levels = 24;
  options.params.num_second_level = 16;
  options.copies = copies;
  options.seed = 424242;
  options.track_exact = exact;
  return options;
}

TEST(StreamEngineTest, RegisterStreamIsIdempotent) {
  StreamEngine engine(TestOptions(8, false));
  const StreamId a = engine.RegisterStream("A");
  const StreamId a2 = engine.RegisterStream("A");
  const StreamId b = engine.RegisterStream("B");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(engine.IdOf("A"), std::optional<StreamId>(a));
  EXPECT_EQ(engine.IdOf("zzz"), std::nullopt);
  EXPECT_EQ(engine.stream_names(),
            (std::vector<std::string>{"A", "B"}));
}

TEST(StreamEngineTest, RegisterQueryAutoRegistersStreams) {
  StreamEngine engine(TestOptions(8, false));
  const auto handle = engine.RegisterQuery("(R1 & R2) - R3");
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(engine.IdOf("R1").has_value());
  EXPECT_TRUE(engine.IdOf("R2").has_value());
  EXPECT_TRUE(engine.IdOf("R3").has_value());
  EXPECT_EQ(engine.num_queries(), 1);
}

TEST(StreamEngineTest, RegisterQueryReportsParseErrors) {
  StreamEngine engine(TestOptions(8, false));
  const auto handle = engine.RegisterQuery("A & ");
  EXPECT_FALSE(handle.ok());
  EXPECT_FALSE(handle.error.empty());
  EXPECT_EQ(engine.num_queries(), 0);
}

TEST(StreamEngineTest, IngestRejectsUnknownStreams) {
  StreamEngine engine(TestOptions(8, false));
  engine.RegisterStream("A");
  EXPECT_TRUE(engine.Ingest("A", 1, 1));
  EXPECT_FALSE(engine.Ingest("B", 1, 1));
  EXPECT_FALSE(engine.Ingest(Update{99, 1, 1}));
  EXPECT_EQ(engine.updates_processed(), 1);
}

TEST(StreamEngineTest, AnswerInvalidQueryIdNotOk) {
  StreamEngine engine(TestOptions(8, false));
  EXPECT_FALSE(engine.AnswerQuery(0).ok);
  EXPECT_FALSE(engine.AnswerQuery(-1).ok);
}

TEST(StreamEngineTest, EndToEndIntersectionWithDeletions) {
  StreamEngine engine(TestOptions());
  const auto q = engine.RegisterQuery("A & B");
  ASSERT_TRUE(q.ok());

  // Controlled dataset with churn: |A n B| = u/4 net.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(4096, 55);
  std::vector<Update> updates = data.ToInsertUpdates(3);
  ChurnOptions churn;
  churn.seed = 77;
  updates = InjectChurn(updates, churn);

  // Stream ids assigned by auto-registration order: A=0, B=1.
  EXPECT_EQ(engine.IngestAll(updates), updates.size());

  const StreamEngine::Answer answer = engine.AnswerQuery(q.id);
  ASSERT_TRUE(answer.ok);
  ASSERT_GT(answer.exact, 0);
  EXPECT_EQ(answer.exact, static_cast<int64_t>(data.regions[3].size()));
  EXPECT_LT(RelativeError(answer.estimate,
                          static_cast<double>(answer.exact)),
            0.7);
}

TEST(StreamEngineTest, AnswerAllCoversEveryQuery) {
  StreamEngine engine(TestOptions(384));
  engine.RegisterQuery("A | B");
  engine.RegisterQuery("A & B");
  engine.RegisterQuery("A - B");
  for (int e = 0; e < 1000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u;
    engine.Ingest("A", elem, 1);
    if (e % 2 == 0) engine.Ingest("B", elem, 1);
  }
  const auto answers = engine.AnswerAll();
  ASSERT_EQ(answers.size(), 3u);
  for (const auto& answer : answers) {
    EXPECT_TRUE(answer.ok) << answer.expression;
    EXPECT_GE(answer.exact, 0);
  }
  // Union >= intersection; union ~ 1000; intersection ~ 500; diff ~ 500.
  EXPECT_GT(answers[0].estimate, answers[1].estimate);
  EXPECT_LT(RelativeError(answers[0].estimate, 1000), 0.4);
  EXPECT_LT(RelativeError(answers[1].estimate, 500), 0.7);
  EXPECT_LT(RelativeError(answers[2].estimate, 500), 0.7);
}

TEST(StreamEngineTest, EstimateNowAdHocQueries) {
  StreamEngine engine(TestOptions(128));
  engine.RegisterStream("A");
  engine.RegisterStream("B");
  for (int e = 0; e < 500; ++e) {
    engine.Ingest("A", static_cast<uint64_t>(e) * 7919, 1);
    engine.Ingest("B", static_cast<uint64_t>(e) * 7919, 1);
  }
  const auto ok_answer = engine.EstimateNow("A & B");
  EXPECT_TRUE(ok_answer.ok);
  EXPECT_LT(RelativeError(ok_answer.estimate, 500), 0.5);

  EXPECT_FALSE(engine.EstimateNow("A & Unknown").ok);
  EXPECT_FALSE(engine.EstimateNow("A & ").ok);
}

TEST(StreamEngineTest, ExactTrackingMatchesGenerator) {
  StreamEngine engine(TestOptions(16));
  engine.RegisterQuery("(A - B) & C");
  VennPartitionGenerator gen(3, ExprDiffIntersectProbs(0.2));
  const PartitionedDataset data = gen.Generate(2048, 88);
  // Id order A=0, B=1, C=2 matches the generator's stream indices.
  engine.IngestAll(data.ToInsertUpdates(5));
  const auto answer = engine.AnswerQuery(0);
  EXPECT_EQ(answer.exact, static_cast<int64_t>(data.regions[5].size()));
}

TEST(StreamEngineTest, SynopsisBytesAccounting) {
  StreamEngine engine(TestOptions(4, false));
  EXPECT_EQ(engine.SynopsisBytes(), 0u);
  engine.RegisterStream("A");
  // 4 copies x 24 levels x 16 pairs x 2 cells x 8 bytes.
  EXPECT_EQ(engine.SynopsisBytes(), 4u * 24u * 16u * 2u * 8u);
}

TEST(StreamEngineTest, AnswersCarryConfidenceIntervals) {
  StreamEngine engine(TestOptions(256));
  const auto q = engine.RegisterQuery("A & B");
  ASSERT_TRUE(q.ok());
  for (int e = 0; e < 3000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761ULL;
    engine.Ingest("A", elem, 1);
    if (e % 2 == 0) engine.Ingest("B", elem, 1);
  }
  const auto answer = engine.AnswerQuery(q.id);
  ASSERT_TRUE(answer.ok);
  EXPECT_LE(answer.interval.lo, answer.estimate);
  EXPECT_GE(answer.interval.hi, answer.estimate);
  EXPECT_GT(answer.interval.Width(), 0.0);
  // The interval should usually cover the truth (not asserted per-trial;
  // coverage rates are tested in confidence_test). Here only sanity: the
  // truth is within 3 widths.
  EXPECT_NEAR(static_cast<double>(answer.exact), answer.estimate,
              3 * answer.interval.Width() + 1);
}

TEST(StreamEngineTest, PooledAndMleOptionsImproveDefaults) {
  // Same data, three engines: paper-strict, pooled, pooled+MLE. All must
  // produce sane answers; the enhanced modes carry more observations.
  std::vector<StreamEngine::Options> configs(3, TestOptions(192));
  configs[1].witness.pool_all_levels = true;
  configs[2].witness.pool_all_levels = true;
  configs[2].witness.mle_union = true;

  std::vector<int> valid_counts;
  for (const auto& options : configs) {
    StreamEngine engine(options);
    const auto q = engine.RegisterQuery("A & B");
    for (int e = 0; e < 3000; ++e) {
      const uint64_t elem = static_cast<uint64_t>(e) * 48271ULL + 7;
      engine.Ingest("A", elem, 1);
      if (e % 4 != 0) engine.Ingest("B", elem, 1);
    }
    const auto answer = engine.AnswerQuery(q.id);
    ASSERT_TRUE(answer.ok);
    valid_counts.push_back(answer.detail.expression.valid_observations);
  }
  EXPECT_GT(valid_counts[1], 3 * valid_counts[0]);  // Pooling helps.
  EXPECT_GT(valid_counts[2], 3 * valid_counts[0]);
}

TEST(StreamEngineTest, NetZeroChurnLeavesEstimatesAtZero) {
  StreamEngine engine(TestOptions(64));
  engine.RegisterQuery("A");
  // Insert then fully delete everything.
  for (int e = 0; e < 1000; ++e) {
    engine.Ingest("A", static_cast<uint64_t>(e), 2);
  }
  for (int e = 0; e < 1000; ++e) {
    engine.Ingest("A", static_cast<uint64_t>(e), -2);
  }
  const auto answer = engine.AnswerQuery(0);
  ASSERT_TRUE(answer.ok);
  EXPECT_DOUBLE_EQ(answer.estimate, 0.0);
  EXPECT_EQ(answer.exact, 0);
}

}  // namespace
}  // namespace setsketch
