// Fault-tolerance tests for the sketch service (src/server/): dedup
// window semantics, deterministic fault injection, WAL append/replay with
// torn-tail and CRC-corruption handling, checkpoint atomicity, crash
// recovery that rebuilds bit-identical sketches, exactly-once ingest
// under retransmission, and client/server I/O deadlines.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sketch_backend.h"
#include "core/sketch_bank.h"
#include "server/fault_injector.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "server/wal.h"
#include "stream/update.h"

namespace setsketch {
namespace {

constexpr uint64_t kMasterSeed = 20030609;

SketchParams TestParams() {
  SketchParams params;
  params.levels = 20;
  params.num_second_level = 16;
  return params;
}

SketchServer::Options WalServerOptions(const std::string& wal_dir,
                                       int copies = 64) {
  SketchServer::Options options;
  options.params = TestParams();
  options.copies = copies;
  options.seed = kMasterSeed;
  options.shards = 2;
  options.queue_capacity = 64;
  options.witness.pool_all_levels = true;
  options.wal_dir = wal_dir;
  return options;
}

/// A per-test scratch directory under the gtest temp root.
std::filesystem::path FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic mixed-stream batch with churn (some deletions).
UpdateBatch MakeBatch(int index, int per_batch) {
  UpdateBatch batch;
  batch.stream_names = {"A", "B"};
  batch.updates.reserve(static_cast<size_t>(per_batch));
  for (int i = 0; i < per_batch; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(index * per_batch + i) * 2654435761ULL + 17;
    const StreamId stream = i % 3 == 0 ? 1 : 0;
    const int64_t delta = i % 7 == 6 ? -1 : 1;
    batch.updates.push_back(Update{stream, element, delta});
  }
  return batch;
}

/// Asserts `served` holds bit-identical sketches to a serial reference
/// ingest of `updates` (via `names`) — the recovery correctness bar.
void ExpectBankMatchesReference(const SketchBank& served,
                                const SketchServer::Options& options,
                                const std::vector<std::string>& names,
                                const std::vector<Update>& updates) {
  SketchBank reference(
      SketchFamily(options.params, options.copies, options.seed));
  for (const std::string& name : names) reference.AddStream(name);
  for (const Update& u : updates) {
    reference.Apply(names[u.stream], u.element, u.delta);
  }
  for (const std::string& name : names) {
    const auto& got = served.Sketches(name);
    const auto& want = reference.Sketches(name);
    ASSERT_EQ(got.size(), want.size()) << name;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i] == want[i]) << name << " copy " << i;
    }
  }
}

/// Flips one byte of a file in place (corruption injection).
void FlipByteAt(const std::filesystem::path& path, int64_t offset_from_end) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(file.tellg());
  ASSERT_GT(size, offset_from_end);
  const int64_t position = size - 1 - offset_from_end;
  file.seekg(position);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(position);
  file.write(&byte, 1);
}

/// Finds the WAL segment file for `shard` (any generation).
std::filesystem::path FindSegment(const std::filesystem::path& dir,
                                  int shard) {
  const std::string prefix = "wal-" + std::to_string(shard) + "-";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) return entry.path();
  }
  return {};
}

// --- Dedup window semantics ---------------------------------------------

TEST(DedupWindowTest, RecordsAndReportsWithinWindow) {
  DedupWindow window;
  EXPECT_FALSE(window.Seen(1));
  window.Record(1);
  EXPECT_TRUE(window.Seen(1));
  EXPECT_FALSE(window.Seen(2));
  window.Record(5);
  EXPECT_TRUE(window.Seen(5));
  EXPECT_TRUE(window.Seen(1));
  EXPECT_FALSE(window.Seen(3));
  window.Record(3);
  EXPECT_TRUE(window.Seen(3));
  EXPECT_FALSE(window.Seen(4));
  EXPECT_EQ(window.high(), 5u);
}

TEST(DedupWindowTest, SequencesBelowWindowAreConservativelySeen) {
  DedupWindow window;
  window.Record(1000);
  EXPECT_TRUE(window.Seen(1000));
  EXPECT_FALSE(window.Seen(999));       // Inside window, not recorded.
  EXPECT_FALSE(window.Seen(1000 - 63));  // Oldest tracked slot, unset.
  EXPECT_TRUE(window.Seen(1000 - 64));   // Fell off: conservatively seen.
  EXPECT_TRUE(window.Seen(1));
  EXPECT_FALSE(window.Seen(1001));
}

TEST(DedupWindowTest, RestoreReinstatesPersistedState) {
  DedupWindow window;
  window.Record(7);
  window.Record(9);
  DedupWindow restored;
  restored.Restore(window.high(), window.bits());
  EXPECT_TRUE(restored.Seen(7));
  EXPECT_FALSE(restored.Seen(8));
  EXPECT_TRUE(restored.Seen(9));
}

TEST(DedupIndexTest, EncodeDecodeRoundTrip) {
  DedupIndex index;
  index.Record("site-a", 1);
  index.Record("site-a", 2);
  index.Record("site-b", 7);
  std::string bytes;
  index.EncodeTo(&bytes);
  DedupIndex decoded;
  size_t offset = 0;
  ASSERT_TRUE(decoded.DecodeFrom(bytes, &offset));
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(decoded.num_sites(), 2u);
  EXPECT_TRUE(decoded.Seen("site-a", 1));
  EXPECT_TRUE(decoded.Seen("site-a", 2));
  EXPECT_FALSE(decoded.Seen("site-a", 3));
  EXPECT_TRUE(decoded.Seen("site-b", 7));
  EXPECT_FALSE(decoded.Seen("site-c", 1));
}

// --- Fault injector determinism -----------------------------------------

TEST(FaultInjectorTest, SameSeedYieldsSameSchedule) {
  FaultInjector::Options options;
  options.seed = 99;
  options.drop_probability = 0.15;
  options.reset_probability = 0.1;
  options.truncate_probability = 0.1;
  options.delay_probability = 0.05;
  options.partial_probability = 0.2;
  options.delay_ms = 1;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 200; ++i) {
    const SendPlan plan_a = a.PlanSend(100);
    const SendPlan plan_b = b.PlanSend(100);
    ASSERT_EQ(static_cast<int>(plan_a.kind), static_cast<int>(plan_b.kind))
        << "send " << i;
    ASSERT_EQ(plan_a.truncate_at, plan_b.truncate_at) << "send " << i;
    ASSERT_EQ(plan_a.chunk_bytes, plan_b.chunk_bytes) << "send " << i;
  }
  EXPECT_EQ(a.sends_planned(), 200u);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);
  EXPECT_LT(a.faults_injected(), 200u);
}

TEST(FaultInjectorTest, FaultBudgetGuaranteesEventualPassThrough) {
  FaultInjector::Options options;
  options.seed = 7;
  options.drop_probability = 1.0;
  options.max_faults = 5;
  FaultInjector injector(options);
  uint64_t faults = 0;
  for (int i = 0; i < 20; ++i) {
    const SendPlan plan = injector.PlanSend(64);
    if (plan.kind != SendPlan::Kind::kPass) ++faults;
    if (i >= 5) {
      EXPECT_EQ(static_cast<int>(plan.kind),
                static_cast<int>(SendPlan::Kind::kPass))
          << "send " << i;
    }
  }
  EXPECT_EQ(faults, 5u);
  EXPECT_EQ(injector.faults_injected(), 5u);
}

TEST(FaultInjectorTest, TruncationAlwaysLeavesAPartialFrame) {
  FaultInjector::Options options;
  options.seed = 3;
  options.truncate_probability = 1.0;
  FaultInjector injector(options);
  for (int i = 0; i < 50; ++i) {
    const SendPlan plan = injector.PlanSend(40);
    ASSERT_EQ(static_cast<int>(plan.kind),
              static_cast<int>(SendPlan::Kind::kTruncate));
    EXPECT_GE(plan.truncate_at, 1u);
    EXPECT_LT(plan.truncate_at, 40u);
  }
}

// --- WAL append / replay / corruption -----------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  const std::filesystem::path dir = FreshDir("wal_roundtrip");
  Wal::Options options;
  options.dir = dir.string();
  options.shards = 2;
  std::string error;
  std::unique_ptr<Wal> wal = Wal::Open(options, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint64_t sequence = 1; sequence <= 10; ++sequence) {
    WalRecord record;
    record.site_id = "s";
    record.sequence = sequence;
    record.payload = std::string(static_cast<size_t>(5 + sequence), 'x');
    ASSERT_TRUE(wal->Append(record, &error)) << error;
  }
  EXPECT_EQ(wal->records_appended(), 10u);
  EXPECT_GT(wal->bytes_appended(), 0u);
  wal.reset();

  std::vector<WalRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(Wal::Replay(
      options.dir, 0,
      [&replayed](const WalRecord& record) { replayed.push_back(record); },
      &stats, &error))
      << error;
  EXPECT_EQ(stats.records_replayed, 10u);
  EXPECT_EQ(stats.segments_read, 2u);
  EXPECT_EQ(stats.torn_segments, 0u);
  ASSERT_EQ(replayed.size(), 10u);
  uint64_t sequence_sum = 0;
  for (const WalRecord& record : replayed) {
    EXPECT_EQ(record.site_id, "s");
    EXPECT_EQ(record.payload.size(), static_cast<size_t>(5 + record.sequence));
    sequence_sum += record.sequence;
  }
  EXPECT_EQ(sequence_sum, 55u);  // Each of 1..10 exactly once.
}

TEST(WalTest, TornTailEndsReplayAtLastValidRecord) {
  const std::filesystem::path dir = FreshDir("wal_torn");
  Wal::Options options;
  options.dir = dir.string();
  options.shards = 1;
  std::string error;
  std::unique_ptr<Wal> wal = Wal::Open(options, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint64_t sequence = 1; sequence <= 3; ++sequence) {
    ASSERT_TRUE(wal->Append({"s", sequence, "payload"}, &error)) << error;
  }
  wal.reset();

  // A crash mid-append leaves a record header promising more bytes than
  // the file holds.
  const std::filesystem::path segment = FindSegment(dir, 0);
  ASSERT_FALSE(segment.empty());
  {
    std::ofstream out(segment,
                      std::ios::binary | std::ios::out | std::ios::app);
    const uint32_t promised = 100;
    out.write(reinterpret_cast<const char*>(&promised), sizeof(promised));
    out.write("torn", 4);
  }

  std::vector<uint64_t> sequences;
  WalReplayStats stats;
  ASSERT_TRUE(Wal::Replay(
      options.dir, 0,
      [&sequences](const WalRecord& record) {
        sequences.push_back(record.sequence);
      },
      &stats, &error))
      << error;
  EXPECT_EQ(sequences, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(stats.torn_segments, 1u);
}

TEST(WalTest, CrcMismatchStopsOneSegmentOthersStillReplay) {
  const std::filesystem::path dir = FreshDir("wal_crc");
  Wal::Options options;
  options.dir = dir.string();
  options.shards = 2;
  std::string error;
  std::unique_ptr<Wal> wal = Wal::Open(options, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  // Round-robin: sequences 1,3 land in one shard, 2,4 in the other.
  for (uint64_t sequence = 1; sequence <= 4; ++sequence) {
    ASSERT_TRUE(wal->Append({"s", sequence, "payload-payload"}, &error))
        << error;
  }
  wal.reset();

  // Corrupt the LAST record of shard 0's segment: its first record still
  // replays, the corrupt one ends that segment, shard 1 is untouched.
  const std::filesystem::path segment = FindSegment(dir, 0);
  ASSERT_FALSE(segment.empty());
  FlipByteAt(segment, 0);

  std::vector<uint64_t> sequences;
  WalReplayStats stats;
  ASSERT_TRUE(Wal::Replay(
      options.dir, 0,
      [&sequences](const WalRecord& record) {
        sequences.push_back(record.sequence);
      },
      &stats, &error))
      << error;
  EXPECT_EQ(stats.torn_segments, 1u);
  EXPECT_EQ(stats.records_replayed, 3u);
  // One of {3, 4} was corrupted away; 1 and 2 both survive.
  EXPECT_EQ(sequences.size(), 3u);
  uint64_t sequence_sum = 0;
  for (const uint64_t sequence : sequences) sequence_sum += sequence;
  EXPECT_TRUE(sequence_sum == 6u || sequence_sum == 7u) << sequence_sum;
}

TEST(WalTest, RotationAndCompactionSkipCoveredGenerations) {
  const std::filesystem::path dir = FreshDir("wal_rotate");
  Wal::Options options;
  options.dir = dir.string();
  options.shards = 1;
  std::string error;
  std::unique_ptr<Wal> wal = Wal::Open(options, 0, &error);
  ASSERT_NE(wal, nullptr) << error;
  const uint64_t first_generation = wal->generation();
  ASSERT_TRUE(wal->Append({"s", 1, "old"}, &error)) << error;

  uint64_t covered = 0;
  ASSERT_TRUE(wal->Rotate(&covered, &error)) << error;
  EXPECT_EQ(covered, first_generation);
  EXPECT_GT(wal->generation(), first_generation);
  ASSERT_TRUE(wal->Append({"s", 2, "new"}, &error)) << error;
  wal.reset();

  // Replay from the checkpointed generation: only the new record.
  std::vector<uint64_t> sequences;
  WalReplayStats stats;
  ASSERT_TRUE(Wal::Replay(
      options.dir, covered,
      [&sequences](const WalRecord& record) {
        sequences.push_back(record.sequence);
      },
      &stats, &error))
      << error;
  EXPECT_EQ(sequences, (std::vector<uint64_t>{2}));

  // Compaction removes the covered generation's files; a full replay now
  // also sees only the new record (crash between checkpoint and delete is
  // therefore harmless — the stale segments are just skipped).
  {
    std::unique_ptr<Wal> reopened = Wal::Open(options, covered, &error);
    ASSERT_NE(reopened, nullptr) << error;
    reopened->Compact(covered);
  }
  sequences.clear();
  ASSERT_TRUE(Wal::Replay(
      options.dir, 0,
      [&sequences](const WalRecord& record) {
        sequences.push_back(record.sequence);
      },
      &stats, &error))
      << error;
  EXPECT_EQ(sequences, (std::vector<uint64_t>{2}));
}

TEST(WalTest, CheckpointRoundTripAndCorruptionDetected) {
  const std::filesystem::path dir = FreshDir("wal_checkpoint");
  Checkpoint checkpoint;
  checkpoint.covered_generation = 7;
  checkpoint.dedup.Record("s", 3);
  checkpoint.engine_snapshot = "opaque-snapshot-bytes";
  std::string error;
  ASSERT_TRUE(WriteCheckpoint(dir.string(), checkpoint, true, &error))
      << error;

  Checkpoint loaded;
  ASSERT_TRUE(ReadCheckpoint(dir.string(), &loaded, &error)) << error;
  EXPECT_EQ(loaded.covered_generation, 7u);
  EXPECT_TRUE(loaded.dedup.Seen("s", 3));
  EXPECT_FALSE(loaded.dedup.Seen("s", 4));
  EXPECT_EQ(loaded.engine_snapshot, "opaque-snapshot-bytes");

  // Missing checkpoint: false with *error left empty (fresh start).
  const std::filesystem::path empty_dir = FreshDir("wal_checkpoint_none");
  error.clear();
  EXPECT_FALSE(ReadCheckpoint(empty_dir.string(), &loaded, &error));
  EXPECT_TRUE(error.empty()) << error;

  // Corrupt checkpoint: false with *error set (startup must refuse).
  FlipByteAt(dir / "checkpoint", 2);
  error.clear();
  EXPECT_FALSE(ReadCheckpoint(dir.string(), &loaded, &error));
  EXPECT_FALSE(error.empty());
}

// --- Exactly-once ingest over the wire ----------------------------------

TEST(FaultToleranceTest, DuplicateSequencesReAckWithoutReapplying) {
  const std::filesystem::path dir = FreshDir("ft_dedup");
  const SketchServer::Options options = WalServerOptions(dir.string());
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  SketchClient::Options client_options;
  client_options.port = server.port();
  client_options.site_id = "site-1";
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;

  const UpdateBatch batch = MakeBatch(0, 400);
  const SketchClient::Status first = client->PushUpdates(batch);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.duplicate);
  EXPECT_EQ(first.accepted, batch.updates.size());
  EXPECT_EQ(client->next_sequence(), 2u);

  // Retransmit the same (site, sequence) three times: each is re-ACKed
  // as a duplicate, none is re-applied.
  for (int i = 0; i < 3; ++i) {
    const SketchClient::Status again = client->PushUpdatesAt(batch, 1);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_TRUE(again.duplicate) << "retransmission " << i;
    EXPECT_EQ(again.accepted, batch.updates.size());
  }
  EXPECT_EQ(client->counters().duplicate_acks, 3u);

  ASSERT_TRUE(client->Shutdown().ok);
  server.Wait();
  const SketchServer::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.duplicates_dropped, 3u);
  EXPECT_EQ(stats.updates_applied, batch.updates.size());
  EXPECT_EQ(stats.batches_accepted, 1u);
  EXPECT_EQ(stats.wal_records, 1u);  // Duplicates are never re-logged.
  ExpectBankMatchesReference(server.bank(), options, batch.stream_names,
                             batch.updates);
}

TEST(FaultToleranceTest, AnonymousPushesAreNotDeduplicated) {
  SketchServer server(WalServerOptions(""));  // No WAL either.
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect("127.0.0.1", server.port(), &error);
  ASSERT_NE(client, nullptr) << error;

  UpdateBatch batch;
  batch.stream_names = {"A"};
  batch.updates = {Insert(0, 42), Insert(0, 43)};
  for (int i = 0; i < 2; ++i) {
    const SketchClient::Status status = client->PushUpdates(batch);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_FALSE(status.duplicate);
  }
  ASSERT_TRUE(client->Shutdown().ok);
  server.Wait();
  EXPECT_EQ(server.stats().duplicates_dropped, 0u);
  EXPECT_EQ(server.stats().updates_applied, 4u);  // Applied twice, by design.
}

// --- Crash recovery ------------------------------------------------------

TEST(FaultToleranceTest, CrashRecoveryReplaysWalTailBitIdentically) {
  const std::filesystem::path live = FreshDir("ft_crash_live");
  const std::filesystem::path image =
      std::filesystem::path(::testing::TempDir()) / "ft_crash_image";
  std::filesystem::remove_all(image);

  SketchServer::Options options = WalServerOptions(live.string());
  constexpr int kBatches = 6;
  constexpr int kPerBatch = 500;
  std::vector<Update> all;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    for (int b = 0; b < kBatches; ++b) {
      const UpdateBatch batch = MakeBatch(b, kPerBatch);
      const SketchClient::Status status = client->PushUpdatesWithRetry(batch);
      ASSERT_TRUE(status.ok) << status.error;
      all.insert(all.end(), batch.updates.begin(), batch.updates.end());
    }
    // Snapshot the WAL directory while the server is live: every ACKed
    // batch is already fsync'd, so this copy is exactly the disk state a
    // kill -9 at this instant would leave behind (no checkpoint yet).
    std::filesystem::copy(live, image,
                          std::filesystem::copy_options::recursive);
  }  // The live server stops gracefully; the image stays a crash image.

  options.wal_dir = image.string();
  SketchServer recovered(options);
  std::string error;
  ASSERT_TRUE(recovered.Start(&error)) << error;
  SketchServer::StatsSnapshot stats = recovered.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.recovered_batches, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.recovered_updates, all.size());

  // The dedup index was rebuilt from the WAL tail: retransmitting an
  // already-applied sequence is re-ACKed as a duplicate, not re-applied.
  SketchClient::Options client_options;
  client_options.port = recovered.port();
  client_options.site_id = "pusher";
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;
  const SketchClient::Status retransmit =
      client->PushUpdatesAt(MakeBatch(0, kPerBatch), 1);
  ASSERT_TRUE(retransmit.ok) << retransmit.error;
  EXPECT_TRUE(retransmit.duplicate);

  // And the service keeps accepting genuinely new batches post-recovery.
  const UpdateBatch fresh = MakeBatch(kBatches, kPerBatch);
  const SketchClient::Status accepted =
      client->PushUpdatesAt(fresh, kBatches + 1);
  ASSERT_TRUE(accepted.ok) << accepted.error;
  EXPECT_FALSE(accepted.duplicate);
  all.insert(all.end(), fresh.updates.begin(), fresh.updates.end());

  ASSERT_TRUE(client->Shutdown().ok);
  recovered.Wait();
  EXPECT_EQ(recovered.stats().duplicates_dropped, 1u);
  ExpectBankMatchesReference(recovered.bank(), options, {"A", "B"}, all);
}

TEST(FaultToleranceTest, GracefulStopCheckpointRestoresWithoutReplay) {
  const std::filesystem::path dir = FreshDir("ft_checkpoint");
  const SketchServer::Options options = WalServerOptions(dir.string());
  constexpr int kBatches = 4;
  constexpr int kPerBatch = 400;
  std::vector<Update> all;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    for (int b = 0; b < kBatches; ++b) {
      const UpdateBatch batch = MakeBatch(b, kPerBatch);
      ASSERT_TRUE(client->PushUpdatesWithRetry(batch).ok);
      all.insert(all.end(), batch.updates.begin(), batch.updates.end());
    }
    server.Stop();
    EXPECT_GE(server.stats().snapshots_written, 1u);
  }

  // Restart from the checkpoint: state restores without replaying any
  // WAL records (they were compacted into the snapshot).
  SketchServer recovered(options);
  std::string error;
  ASSERT_TRUE(recovered.Start(&error)) << error;
  const SketchServer::StatsSnapshot stats = recovered.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.recovered_batches, 0u);
  recovered.Stop();
  ExpectBankMatchesReference(recovered.bank(), options, {"A", "B"}, all);

  // A server with a different sketch configuration must refuse the same
  // directory — serving subtly different coins would silently diverge.
  SketchServer::Options mismatched = options;
  mismatched.copies = options.copies / 2;
  SketchServer refused(mismatched);
  error.clear();
  EXPECT_FALSE(refused.Start(&error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultToleranceTest, PeriodicCheckpointsCompactTheWal) {
  const std::filesystem::path dir = FreshDir("ft_compaction");
  SketchServer::Options options = WalServerOptions(dir.string());
  options.snapshot_every_bytes = 4096;  // Tiny: force several compactions.
  std::vector<Update> all;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    for (int b = 0; b < 10; ++b) {
      const UpdateBatch batch = MakeBatch(b, 300);
      ASSERT_TRUE(client->PushUpdatesWithRetry(batch).ok);
      all.insert(all.end(), batch.updates.begin(), batch.updates.end());
    }
    server.Stop();
    EXPECT_GE(server.stats().snapshots_written, 2u);
  }
  SketchServer recovered(options);
  std::string error;
  ASSERT_TRUE(recovered.Start(&error)) << error;
  EXPECT_EQ(recovered.stats().recoveries, 1u);
  recovered.Stop();
  ExpectBankMatchesReference(recovered.bank(), options, {"A", "B"}, all);
}

// --- Chaos: fault-injected transport, exactly-once end state -------------

TEST(FaultToleranceTest, FaultInjectedPushesDeliverExactlyOnce) {
  const std::filesystem::path dir = FreshDir("ft_chaos");
  FaultInjector::Options fault_options;
  fault_options.seed = kMasterSeed;
  fault_options.drop_probability = 0.08;
  fault_options.reset_probability = 0.08;
  fault_options.truncate_probability = 0.08;
  fault_options.partial_probability = 0.16;
  fault_options.max_faults = 32;  // Finite budget: retries always converge.
  FaultInjector injector(fault_options);

  const SketchServer::Options options = WalServerOptions(dir.string());
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  SketchClient::Options client_options;
  client_options.port = server.port();
  client_options.site_id = "chaos-site";
  client_options.io_timeout_ms = 250;  // Dropped frames cost 250ms, not ∞.
  client_options.backoff_cap_ms = 8;
  client_options.fault_injector = &injector;
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;

  constexpr int kBatches = 12;
  constexpr int kPerBatch = 400;
  std::vector<Update> all;
  for (int b = 0; b < kBatches; ++b) {
    const UpdateBatch batch = MakeBatch(b, kPerBatch);
    const SketchClient::Status status =
        client->PushUpdatesWithRetry(batch, /*max_attempts=*/10000,
                                     /*backoff_ms=*/1);
    ASSERT_TRUE(status.ok) << "batch " << b << ": " << status.error;
    all.insert(all.end(), batch.updates.begin(), batch.updates.end());
  }
  EXPECT_GT(injector.faults_injected(), 0u) << "chaos never engaged";

  // Shut down over a clean connection (the chaotic one may be half-dead).
  std::unique_ptr<SketchClient> clean =
      SketchClient::Connect("127.0.0.1", server.port(), &error);
  ASSERT_NE(clean, nullptr) << error;
  ASSERT_TRUE(clean->Shutdown().ok);
  server.Wait();

  // Exactly once: every update applied once despite drops, resets,
  // truncations and the retransmissions they forced.
  const SketchServer::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.updates_applied, all.size());
  EXPECT_EQ(stats.batches_accepted, static_cast<uint64_t>(kBatches));
  // Every server-side dedup drop corresponds to a retransmission of an
  // already-applied batch; the client observed those whose re-ACK made it
  // back before its deadline.
  EXPECT_GE(stats.duplicates_dropped, client->counters().duplicate_acks);
  ExpectBankMatchesReference(server.bank(), options, {"A", "B"}, all);
}

// --- Deadlines -----------------------------------------------------------

/// Accepts one connection and reads forever without ever replying — the
/// pathological peer a deadline must defend against.
class SilentServer {
 public:
  bool Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0) {
      return false;
    }
    if (::listen(listen_fd_, 1) != 0) return false;
    socklen_t length = sizeof(address);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      &length) != 0) {
      return false;
    }
    port_ = ntohs(address.sin_port);
    reader_ = std::thread([this] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      char buffer[1024];
      while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
      }
      ::close(fd);
    });
    return true;
  }

  ~SilentServer() {
    if (reader_.joinable()) reader_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int port() const { return port_; }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread reader_;
};

TEST(FaultToleranceTest, RoundTripDeadlineSurfacesTypedTimeout) {
  SilentServer silent;
  ASSERT_TRUE(silent.Start());
  SketchClient::Options client_options;
  client_options.port = silent.port();
  client_options.io_timeout_ms = 100;
  std::string error;
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;

  const SketchClient::Status status = client->Ping();
  EXPECT_FALSE(status.ok);
  EXPECT_TRUE(status.timed_out) << status.error;
  EXPECT_GE(client->counters().timeouts, 1u);
  EXPECT_FALSE(client->connected());  // Timeout tears the connection down.
  client.reset();  // Closes the socket; the silent reader sees EOF.
}

TEST(FaultToleranceTest, IdleConnectionsAreDroppedAfterDeadline) {
  SketchServer::Options options = WalServerOptions("");
  options.idle_timeout_ms = 100;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);
  // Send nothing: the server's idle deadline must close the connection
  // (recv unblocks with EOF instead of hanging forever).
  char byte = 0;
  const ssize_t received = ::recv(fd, &byte, 1, 0);
  EXPECT_LE(received, 0);
  ::close(fd);
  server.Stop();
}

TEST(FaultToleranceTest, RecoveredServerNeverServesStaleCachedPlans) {
  const std::filesystem::path live = FreshDir("ft_plan_live");
  const std::filesystem::path image =
      std::filesystem::path(::testing::TempDir()) / "ft_plan_image";
  std::filesystem::remove_all(image);

  SketchServer::Options options = WalServerOptions(live.string());
  constexpr int kImagedBatches = 4;
  constexpr int kPerBatch = 400;
  const std::string query_text = "(A | B) - (A & B)";
  std::vector<Update> imaged;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    for (int b = 0; b < kImagedBatches; ++b) {
      const UpdateBatch batch = MakeBatch(b, kPerBatch);
      ASSERT_TRUE(client->PushUpdatesWithRetry(batch).ok);
      imaged.insert(imaged.end(), batch.updates.begin(),
                    batch.updates.end());
    }
    // Warm the plan cache: the repeat answer comes from the memo.
    const QueryResultInfo warm = client->Query(query_text);
    ASSERT_TRUE(warm.ok) << warm.error;
    ASSERT_TRUE(client->Query(query_text).ok);
    EXPECT_GE(server.stats().plan_cache_hits, 1u);

    // Crash image: exactly the fsync'd disk state at this instant, taken
    // while the cache above is hot.
    std::filesystem::copy(live, image,
                          std::filesystem::copy_options::recursive);

    // The live server keeps ingesting past the image point, so any plan
    // memo warmed after this divergence describes data the recovered
    // process never saw — the exact staleness hazard under test.
    ASSERT_TRUE(
        client->PushUpdatesWithRetry(MakeBatch(kImagedBatches, kPerBatch))
            .ok);
    ASSERT_TRUE(client->Query(query_text).ok);
  }  // kill -9 equivalent for the cache: the process state is gone.

  options.wal_dir = image.string();
  SketchServer recovered(options);
  std::string error;
  ASSERT_TRUE(recovered.Start(&error)) << error;
  EXPECT_EQ(recovered.stats().recoveries, 1u);

  // A recovered process starts with an empty plan cache: no hit, miss, or
  // memo can survive the crash, by construction.
  const SketchServer::StatsSnapshot fresh = recovered.stats();
  EXPECT_EQ(fresh.plan_cache_hits, 0u);
  EXPECT_EQ(fresh.plan_cache_misses, 0u);
  EXPECT_EQ(fresh.plan_cache_entries, 0u);

  SketchClient::Options client_options;
  client_options.port = recovered.port();
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;
  const QueryResultInfo answer = client->Query(query_text);
  ASSERT_TRUE(answer.ok) << answer.error;

  // The chaos assertion: the recovered answer must equal a fresh planner
  // run over a reference bank holding exactly the imaged updates — i.e.
  // the replayed WAL state, not the pre-crash server's (which had diverged
  // past the image point before dying).
  SketchBank reference(
      SketchFamily(options.params, options.copies, options.seed));
  reference.AddStream("A");
  reference.AddStream("B");
  const std::vector<std::string> names = {"A", "B"};
  for (const Update& u : imaged) {
    reference.Apply(names[u.stream], u.element, u.delta);
  }
  PlanCache::Options planner_options;
  planner_options.witness = options.witness;
  PlanCache planner(planner_options);
  const PlanCache::Result expected =
      planner.Query(query_text, reference);
  ASSERT_TRUE(expected.ok) << expected.error;
  EXPECT_EQ(answer.estimate, expected.estimate);
  EXPECT_EQ(answer.lo, expected.interval.lo);
  EXPECT_EQ(answer.hi, expected.interval.hi);

  // Post-recovery the cache behaves normally: the first query was a miss,
  // its repeat is a hit with the identical answer.
  const SketchServer::StatsSnapshot after_first = recovered.stats();
  EXPECT_EQ(after_first.plan_cache_misses, 1u);
  EXPECT_EQ(after_first.plan_cache_hits, 0u);
  const QueryResultInfo repeat = client->Query(query_text);
  ASSERT_TRUE(repeat.ok);
  EXPECT_EQ(repeat.estimate, answer.estimate);
  EXPECT_EQ(recovered.stats().plan_cache_hits, 1u);

  ASSERT_TRUE(client->Shutdown().ok);
  recovered.Wait();
}

// --- Backend streams across crash recovery and checkpoints ---------------

/// Two backend-tagged streams (T on theta/KMV, S on SetSketch) with some
/// insert-then-delete churn — the WAL must replay the tags, not just the
/// updates.
UpdateBatch MakeBackendBatch(int index, int per_batch) {
  UpdateBatch batch;
  batch.stream_names = {"T", "S"};
  batch.stream_backends = {
      static_cast<uint8_t>(SketchBackendId::kThetaKmv),
      static_cast<uint8_t>(SketchBackendId::kSetSketch)};
  for (int i = 0; i < per_batch; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(index * per_batch + i) * 2654435761ULL + 29;
    const StreamId stream = i % 2;
    batch.updates.push_back(Update{stream, element, 1});
    if (i % 8 == 7) {  // Net-zero churn: insert immediately retracted.
      batch.updates.push_back(Update{stream, element, -1});
    }
  }
  return batch;
}

TEST(FaultToleranceTest, BackendStreamsRecoverFromWalTail) {
  const std::filesystem::path live = FreshDir("ft_backend_live");
  const std::filesystem::path image =
      std::filesystem::path(::testing::TempDir()) / "ft_backend_image";
  std::filesystem::remove_all(image);

  SketchServer::Options options = WalServerOptions(live.string());
  constexpr int kBatches = 5;
  constexpr int kPerBatch = 600;
  double live_t = 0, live_s = 0;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    for (int b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          client->PushUpdatesWithRetry(MakeBackendBatch(b, kPerBatch)).ok);
    }
    const QueryResultInfo t = client->Query("T");
    const QueryResultInfo s = client->Query("S");
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_TRUE(s.ok) << s.error;
    live_t = t.estimate;
    live_s = s.estimate;
    // Crash image: every ACKed batch is fsync'd, no checkpoint yet.
    std::filesystem::copy(live, image,
                          std::filesystem::copy_options::recursive);
  }

  options.wal_dir = image.string();
  SketchServer recovered(options);
  std::string error;
  ASSERT_TRUE(recovered.Start(&error)) << error;
  const SketchServer::StatsSnapshot stats = recovered.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.recovered_batches, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.backend_streams, 2u);

  // Replay restores the exact synopsis state: estimates are bit-equal to
  // the pre-crash answers, and a foreign re-tag is still refused.
  SketchClient::Options client_options;
  client_options.port = recovered.port();
  client_options.site_id = "pusher";
  std::unique_ptr<SketchClient> client =
      SketchClient::Connect(client_options, &error);
  ASSERT_NE(client, nullptr) << error;
  const QueryResultInfo t = client->Query("T");
  const QueryResultInfo s = client->Query("S");
  ASSERT_TRUE(t.ok) << t.error;
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_DOUBLE_EQ(t.estimate, live_t);
  EXPECT_DOUBLE_EQ(s.estimate, live_s);

  UpdateBatch retag;
  retag.stream_names = {"T"};
  retag.stream_backends = {
      static_cast<uint8_t>(SketchBackendId::kSetSketch)};
  retag.updates = {Update{0, 42, 1}};
  const SketchClient::Status refused = client->PushUpdatesAt(retag, 999);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("CONFIG_MISMATCH"), std::string::npos)
      << refused.error;
  ASSERT_TRUE(client->Shutdown().ok);
  recovered.Wait();
}

TEST(FaultToleranceTest, BackendConfigMismatchRefusesCheckpoint) {
  const std::filesystem::path dir = FreshDir("ft_backend_checkpoint");
  SketchServer::Options options = WalServerOptions(dir.string());
  options.default_backend = SketchBackendId::kSetSketch;
  options.backend_size = 512;
  {
    SketchServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    SketchClient::Options client_options;
    client_options.port = server.port();
    client_options.site_id = "pusher";
    std::unique_ptr<SketchClient> client =
        SketchClient::Connect(client_options, &error);
    ASSERT_NE(client, nullptr) << error;
    ASSERT_TRUE(client->PushUpdatesWithRetry(MakeBatch(0, 300)).ok);
    server.Stop();  // Graceful: compacts into an SSN2 checkpoint.
    EXPECT_GE(server.stats().snapshots_written, 1u);
  }

  // Identical backend configuration restores cleanly.
  {
    SketchServer same(options);
    std::string error;
    ASSERT_TRUE(same.Start(&error)) << error;
    EXPECT_EQ(same.stats().recoveries, 1u);
    same.Stop();
  }

  // A different default backend — or the same backend at a different
  // size — must refuse the directory, exactly like a coin mismatch.
  SketchServer::Options other_backend = options;
  other_backend.default_backend = SketchBackendId::kThetaKmv;
  SketchServer refused_backend(other_backend);
  std::string error;
  EXPECT_FALSE(refused_backend.Start(&error));
  EXPECT_NE(error.find("backend"), std::string::npos) << error;

  SketchServer::Options other_size = options;
  other_size.backend_size = 1024;
  SketchServer refused_size(other_size);
  error.clear();
  EXPECT_FALSE(refused_size.Start(&error));
  EXPECT_NE(error.find("backend"), std::string::npos) << error;
}

}  // namespace
}  // namespace setsketch
