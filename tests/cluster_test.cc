// End-to-end tests for the cluster subsystem (src/cluster/): the hello
// handshake and config-mismatch refusal, the PULL_SUMMARY epoch cache,
// federated queries answering bit-identically to a fault-free single
// node, and the chaos path — kill the owning shard mid-ingest, fail
// reads over to the replica, restart on the WAL, re-push through the
// dedup window, and verify the federated answer never drifts.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_commands.h"
#include "cluster/cluster_router.h"
#include "core/sketch_backend.h"
#include "server/fault_injector.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "stream/update.h"

namespace setsketch {
namespace {

constexpr uint64_t kMasterSeed = 20030609;
constexpr int kCopies = 48;

SketchParams TestParams() {
  SketchParams params;
  params.levels = 20;
  params.num_second_level = 16;
  return params;
}

SketchServer::Options ShardOptions(const std::string& wal_dir = "") {
  SketchServer::Options options;
  options.params = TestParams();
  options.copies = kCopies;
  options.seed = kMasterSeed;
  options.shards = 2;
  options.queue_capacity = 64;
  options.witness.pool_all_levels = true;
  options.wal_dir = wal_dir;
  return options;
}

ClusterRouter::Options RouterOptions(
    const std::vector<const SketchServer*>& shards) {
  ClusterRouter::Options options;
  for (size_t i = 0; i < shards.size(); ++i) {
    ClusterShard shard;
    shard.name = "s" + std::to_string(i);
    shard.host = "127.0.0.1";
    shard.port = shards[i]->port();
    options.shards.push_back(shard);
  }
  options.replicas = 1;
  options.params = TestParams();
  options.copies = kCopies;
  options.seed = kMasterSeed;
  options.witness.pool_all_levels = true;
  options.shard_connect_timeout_ms = 1000;
  options.shard_io_timeout_ms = 5000;
  return options;
}

std::unique_ptr<SketchClient> MustConnect(int port,
                                          const std::string& site = "") {
  SketchClient::Options options;
  options.port = port;
  options.site_id = site;
  std::string error;
  auto client = SketchClient::Connect(options, &error);
  EXPECT_NE(client, nullptr) << error;
  return client;
}

std::filesystem::path FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic three-stream batch with churn (some deletions).
UpdateBatch MakeBatch(int index, int per_batch = 64) {
  UpdateBatch batch;
  batch.stream_names = {"A", "B", "C"};
  batch.updates.reserve(static_cast<size_t>(per_batch));
  for (int i = 0; i < per_batch; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(index * per_batch + i) * 2654435761ULL + 11;
    const StreamId stream = static_cast<StreamId>((index + i) % 3);
    const int64_t delta = i % 9 == 8 ? -1 : 1;
    batch.updates.push_back(Update{stream, element, delta});
  }
  return batch;
}

const char* const kExpressions[] = {
    "(A - B) & C",
    "A | (B & C)",
    "(A | B | C) - (A & B)",
};

/// Asserts the router and the reference server answer every probe
/// expression with EXACTLY the same estimate and interval — the
/// bit-identity bar from the stored-coins model.
void ExpectAnswersMatchReference(SketchClient& via_router,
                                 SketchClient& via_reference) {
  for (const char* expression : kExpressions) {
    const QueryResultInfo fed = via_router.Query(expression);
    const QueryResultInfo ref = via_reference.Query(expression);
    ASSERT_TRUE(ref.ok) << expression << ": " << ref.error;
    ASSERT_TRUE(fed.ok) << expression << ": " << fed.error;
    EXPECT_EQ(fed.estimate, ref.estimate) << expression;
    EXPECT_EQ(fed.lo, ref.lo) << expression;
    EXPECT_EQ(fed.hi, ref.hi) << expression;
  }
}

// --- Hello handshake ----------------------------------------------------

TEST(ClusterHandshakeTest, HelloExchangesConfigAndFeatures) {
  SketchServer server(ShardOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.port());

  HelloInfo mine;
  mine.params = TestParams();
  mine.copies = kCopies;
  mine.seed = kMasterSeed;
  HelloInfo theirs;
  const SketchClient::Status status = client->Hello(mine, &theirs);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_TRUE(theirs.params == TestParams());
  EXPECT_EQ(theirs.copies, kCopies);
  EXPECT_EQ(theirs.seed, kMasterSeed);
  EXPECT_TRUE(theirs.ConfigMatches(mine));
  EXPECT_NE(theirs.features & kFeatureSummaryPull, 0u);

  // A plain PING (no hello payload) still echoes, so pre-cluster clients
  // keep working against a hello-aware server.
  EXPECT_TRUE(client->Ping().ok);
  server.Stop();
}

TEST(ClusterHandshakeTest, RouterRefusesMismatchedShard) {
  // One shard with the right coins, one seeded differently: the router
  // must refuse the mismatched shard (merging its sketches would be
  // silently wrong) and keep serving streams placed on the good one.
  SketchServer good(ShardOptions());
  SketchServer::Options bad_options = ShardOptions();
  bad_options.seed = kMasterSeed + 1;
  SketchServer bad(bad_options);
  std::string error;
  ASSERT_TRUE(good.Start(&error)) << error;
  ASSERT_TRUE(bad.Start(&error)) << error;

  ClusterRouter::Options options = RouterOptions({&good, &bad});
  options.replicas = 0;  // Placement picks exactly one shard per stream.
  ClusterRouter router(options);
  ASSERT_TRUE(router.Start(&error)) << error;
  EXPECT_EQ(router.ProbeAll(), 1u);
  const ClusterRouter::StatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.refused_shards, 1u);
  EXPECT_EQ(stats.healthy_shards, 1u);

  // Pushes for streams placed on the refused shard bounce with a typed
  // error; streams on the healthy shard are unaffected.
  auto client = MustConnect(router.port(), "mismatch-test");
  int refused = 0;
  int accepted = 0;
  for (int i = 0; i < 16; ++i) {
    UpdateBatch batch;
    batch.stream_names = {"probe-" + std::to_string(i)};
    batch.updates.push_back(Update{0, static_cast<uint64_t>(i), 1});
    const SketchClient::Status status = client->PushUpdates(batch);
    if (status.ok) {
      ++accepted;
    } else {
      EXPECT_NE(status.error.find("NO_HEALTHY_SHARD"), std::string::npos)
          << status.error;
      ++refused;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(refused, 0);

  router.Stop();
  good.Stop();
  bad.Stop();
}

// --- Summary pulls ------------------------------------------------------

TEST(ClusterSummaryTest, PullHonorsEpochCache) {
  SketchServer server(ShardOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.port(), "summary-test");
  ASSERT_TRUE(client->PushUpdates(MakeBatch(0)).ok);

  SummaryPullRequest request;
  SummaryPullRequest::Key key;
  key.name = "A";
  request.streams.push_back(key);
  SummaryPullRequest::Key unknown;
  unknown.name = "no-such-stream";
  request.streams.push_back(unknown);

  // Cold pull: the full sketch vector, plus the (bank_id, epoch) to cache.
  SummaryResult cold;
  ASSERT_TRUE(client->PullSummaries(request, &cold).ok);
  ASSERT_EQ(cold.streams.size(), 2u);
  EXPECT_EQ(cold.streams[0].state, SummaryState::kFull);
  EXPECT_EQ(cold.streams[0].sketches.size(),
            static_cast<size_t>(kCopies));
  EXPECT_EQ(cold.streams[1].state, SummaryState::kUnknown);

  // Re-pull with the cached identity: one state byte, no payload.
  request.streams.resize(1);
  request.streams[0].bank_id = cold.streams[0].bank_id;
  request.streams[0].epoch = cold.streams[0].epoch;
  SummaryResult warm;
  ASSERT_TRUE(client->PullSummaries(request, &warm).ok);
  ASSERT_EQ(warm.streams.size(), 1u);
  EXPECT_EQ(warm.streams[0].state, SummaryState::kUnchanged);

  // New writes bump the stream's epoch: the same cached identity now
  // misses and the refreshed vector comes back full.
  ASSERT_TRUE(client->PushUpdates(MakeBatch(1)).ok);
  SummaryResult refreshed;
  ASSERT_TRUE(client->PullSummaries(request, &refreshed).ok);
  ASSERT_EQ(refreshed.streams.size(), 1u);
  EXPECT_EQ(refreshed.streams[0].state, SummaryState::kFull);
  EXPECT_GT(refreshed.streams[0].epoch, cold.streams[0].epoch);

  server.Stop();
}

// --- Placement through the router --------------------------------------

TEST(ClusterRouterTest, PlacementIsDeterministicAndReplicated) {
  SketchServer a(ShardOptions());
  SketchServer b(ShardOptions());
  SketchServer c(ShardOptions());
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;
  ASSERT_TRUE(b.Start(&error)) << error;
  ASSERT_TRUE(c.Start(&error)) << error;

  const ClusterRouter::Options options = RouterOptions({&a, &b, &c});
  ClusterRouter first(options);
  ClusterRouter second(options);
  for (const std::string stream : {"A", "B", "C", "D", "E"}) {
    const std::vector<std::string> targets = first.WriteTargets(stream);
    ASSERT_EQ(targets.size(), 2u) << stream;  // Owner + one replica.
    EXPECT_NE(targets[0], targets[1]) << stream;
    EXPECT_EQ(targets, second.WriteTargets(stream)) << stream;
    EXPECT_EQ(first.ReadTarget(stream), targets[0]) << stream;
  }
  a.Stop();
  b.Stop();
  c.Stop();
}

// --- Federation correctness --------------------------------------------

TEST(ClusterRouterTest, FederatedAnswersMatchSingleNodeExactly) {
  SketchServer s0(ShardOptions());
  SketchServer s1(ShardOptions());
  SketchServer s2(ShardOptions());
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(s2.Start(&error)) << error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  ClusterRouter router(RouterOptions({&s0, &s1, &s2}));
  ASSERT_TRUE(router.Start(&error)) << error;
  EXPECT_EQ(router.ProbeAll(), 3u);

  auto via_router = MustConnect(router.port(), "fed");
  auto via_reference = MustConnect(reference.port(), "fed");
  for (int i = 0; i < 6; ++i) {
    const UpdateBatch batch = MakeBatch(i);
    ASSERT_TRUE(via_router->PushUpdates(batch).ok);
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // The same queries again: every summary is served from the router's
  // epoch cache as a one-byte kUnchanged, and the answers still match.
  ExpectAnswersMatchReference(*via_router, *via_reference);
  const ClusterRouter::StatsSnapshot stats = router.stats();
  EXPECT_GT(stats.summary_streams_unchanged, 0u);
  EXPECT_GT(stats.summary_streams_full, 0u);
  EXPECT_EQ(stats.failovers, 0u);

  // Duplicate client push: deduped on every shard, ACKed as duplicate.
  auto replayer = MustConnect(router.port(), "fed");
  const SketchClient::Status dup =
      replayer->PushUpdatesAt(MakeBatch(0), /*sequence=*/1);
  ASSERT_TRUE(dup.ok) << dup.error;
  EXPECT_TRUE(dup.duplicate);
  ExpectAnswersMatchReference(*via_router, *via_reference);

  router.Stop();
  s0.Stop();
  s1.Stop();
  s2.Stop();
  reference.Stop();
}

// --- Chaos: owner death, failover, WAL recovery, re-push ---------------

TEST(ClusterChaosTest, OwnerDeathFailoverAndWalRecoveryStayExact) {
  const std::filesystem::path dir = FreshDir("cluster_chaos");
  std::vector<std::unique_ptr<SketchServer>> shards;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<SketchServer>(
        ShardOptions((dir / ("wal" + std::to_string(i))).string())));
    std::string error;
    ASSERT_TRUE(shards.back()->Start(&error)) << error;
  }
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  std::vector<const SketchServer*> shard_ptrs;
  for (const auto& shard : shards) shard_ptrs.push_back(shard.get());
  ClusterRouter router(RouterOptions(shard_ptrs));
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 3u);

  auto via_router = MustConnect(router.port(), "chaos");
  auto via_reference = MustConnect(reference.port(), "chaos");
  std::vector<UpdateBatch> history;
  const auto push_both = [&](int index) {
    history.push_back(MakeBatch(index));
    const SketchClient::Status fed =
        via_router->PushUpdatesWithRetry(history.back());
    ASSERT_TRUE(fed.ok) << "batch " << index << ": " << fed.error;
    ASSERT_TRUE(via_reference->PushUpdates(history.back()).ok);
  };

  for (int i = 0; i < 5; ++i) push_both(i);
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // Kill the shard that owns stream "A" (owner-first target order).
  const std::string owner = router.WriteTargets("A")[0];
  size_t owner_index = 0;
  for (size_t i = 0; i < router.options().shards.size(); ++i) {
    if (router.options().shards[i].name == owner) owner_index = i;
  }
  const int owner_port = shards[owner_index]->port();
  shards[owner_index]->Stop();

  // Ingest continues: the first push eats a RETRY_LATER bounce while the
  // router discovers the death, then lands on the surviving replica.
  for (int i = 5; i < 10; ++i) push_both(i);
  {
    const ClusterRouter::StatsSnapshot stats = router.stats();
    EXPECT_GE(stats.stale_shards, 1u);
    EXPECT_GT(stats.push_bounces, 0u);
  }

  // Queries fail over to the replica, which ACKed every batch and is
  // therefore complete — the answers still match the reference exactly.
  ExpectAnswersMatchReference(*via_router, *via_reference);
  EXPECT_GT(router.stats().failovers, 0u);

  // Restart the dead shard on its old port and WAL: replay restores the
  // pre-kill prefix and the dedup window, so a full client re-push is
  // exactly-once — already-applied sequences re-ACK, missed ones apply.
  SketchServer::Options recovered_options =
      ShardOptions((dir / ("wal" + std::to_string(owner_index))).string());
  recovered_options.port = owner_port;
  shards[owner_index] =
      std::make_unique<SketchServer>(recovered_options);
  ASSERT_TRUE(shards[owner_index]->Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 3u);

  auto replayer = MustConnect(router.port(), "chaos");
  for (size_t i = 0; i < history.size(); ++i) {
    const SketchClient::Status status = replayer->PushUpdatesWithRetry(
        history[i], /*max_attempts=*/1000, /*backoff_ms=*/1);
    ASSERT_TRUE(status.ok) << "re-push " << i << ": " << status.error;
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // A fresh router (no stale memory) reads from the recovered OWNER
  // again; identical answers prove recovery + re-push made the owner
  // bit-identical — applied exactly once, nothing double-counted.
  shard_ptrs.clear();
  for (const auto& shard : shards) shard_ptrs.push_back(shard.get());
  ClusterRouter fresh(RouterOptions(shard_ptrs));
  ASSERT_TRUE(fresh.Start(&error)) << error;
  ASSERT_EQ(fresh.ProbeAll(), 3u);
  auto via_fresh = MustConnect(fresh.port());
  EXPECT_EQ(fresh.ReadTarget("A"), owner);
  ExpectAnswersMatchReference(*via_fresh, *via_reference);

  fresh.Stop();
  router.Stop();
  for (const auto& shard : shards) shard->Stop();
  reference.Stop();
}

// --- Chaos: deterministic transport faults on the shard fan-out --------

TEST(ClusterChaosTest, InjectedShardFaultsNeverDoubleApply) {
  SketchServer s0(ShardOptions());
  SketchServer s1(ShardOptions());
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  FaultInjector::Options faults;
  faults.seed = 2003;
  faults.reset_probability = 0.08;
  faults.max_faults = 6;  // Bounded: retry loops always terminate.
  FaultInjector injector(faults);

  ClusterRouter::Options options = RouterOptions({&s0, &s1});
  options.shard_fault_injector = &injector;
  ClusterRouter router(options);
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 2u);

  auto via_router = MustConnect(router.port(), "faulty");
  auto via_reference = MustConnect(reference.port(), "faulty");
  for (int i = 0; i < 24; ++i) {
    const UpdateBatch batch = MakeBatch(i, /*per_batch=*/32);
    const SketchClient::Status fed = via_router->PushUpdatesWithRetry(
        batch, /*max_attempts=*/1000, /*backoff_ms=*/1);
    ASSERT_TRUE(fed.ok) << "batch " << i << ": " << fed.error;
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }
  EXPECT_GT(injector.faults_injected(), 0u);

  // Faulted forwards mark shards stale (conservatively out of the read
  // path), so federate through a fresh fault-free router: every batch
  // must have landed exactly once on every placed copy.
  ClusterRouter fresh(RouterOptions({&s0, &s1}));
  ASSERT_TRUE(fresh.Start(&error)) << error;
  ASSERT_EQ(fresh.ProbeAll(), 2u);
  auto via_fresh = MustConnect(fresh.port());
  ExpectAnswersMatchReference(*via_fresh, *via_reference);

  fresh.Stop();
  router.Stop();
  s0.Stop();
  s1.Stop();
  reference.Stop();
}

// --- Self-healing: repair + re-admission on the SAME router -------------

TEST(ClusterSelfHealingTest, SameRouterRepairsAndReadmitsCrashedShard) {
  const std::filesystem::path dir = FreshDir("cluster_self_heal");
  std::vector<std::unique_ptr<SketchServer>> shards;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<SketchServer>(
        ShardOptions((dir / ("wal" + std::to_string(i))).string())));
    std::string error;
    ASSERT_TRUE(shards.back()->Start(&error)) << error;
  }
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  std::vector<const SketchServer*> shard_ptrs;
  for (const auto& shard : shards) shard_ptrs.push_back(shard.get());
  ClusterRouter router(RouterOptions(shard_ptrs));
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 3u);

  auto via_router = MustConnect(router.port(), "heal");
  auto via_reference = MustConnect(reference.port(), "heal");
  std::vector<UpdateBatch> history;
  const auto push_both = [&](int index) {
    history.push_back(MakeBatch(index));
    const SketchClient::Status fed =
        via_router->PushUpdatesWithRetry(history.back());
    ASSERT_TRUE(fed.ok) << "batch " << index << ": " << fed.error;
    ASSERT_TRUE(via_reference->PushUpdates(history.back()).ok);
  };
  for (int i = 0; i < 5; ++i) push_both(i);

  // Kill the shard owning "A"; ingest rides the replicas while the dead
  // shard accumulates missed placed writes (-> stale).
  const std::string owner = router.WriteTargets("A")[0];
  size_t owner_index = 0;
  for (size_t i = 0; i < router.options().shards.size(); ++i) {
    if (router.options().shards[i].name == owner) owner_index = i;
  }
  const int owner_port = shards[owner_index]->port();
  shards[owner_index]->Stop();
  for (int i = 5; i < 10; ++i) push_both(i);
  ASSERT_GE(router.stats().stale_shards, 1u);

  // Restart on the old port + WAL. The NEXT probe sweep of the SAME
  // router repairs the gap from healthy replicas (anti-entropy transfer)
  // and atomically re-admits the shard — no router restart, no client
  // re-push.
  SketchServer::Options recovered_options =
      ShardOptions((dir / ("wal" + std::to_string(owner_index))).string());
  recovered_options.port = owner_port;
  shards[owner_index] = std::make_unique<SketchServer>(recovered_options);
  ASSERT_TRUE(shards[owner_index]->Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 3u);

  const ClusterRouter::StatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.stale_shards, 0u);
  EXPECT_GE(stats.repairs, 1u);
  EXPECT_GE(stats.readmissions, 1u);
  // Re-admitted into the read path: "A" reads from its owner again.
  EXPECT_EQ(router.ReadTarget("A"), owner);
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // The transfer carried the sources' dedup watermarks, so a full client
  // re-push is recognized as pure duplicates everywhere — exactly-once
  // survives repair.
  auto replayer = MustConnect(router.port(), "heal");
  for (size_t i = 0; i < history.size(); ++i) {
    const SketchClient::Status status =
        replayer->PushUpdatesAt(history[i], static_cast<uint64_t>(i) + 1);
    ASSERT_TRUE(status.ok) << "re-push " << i << ": " << status.error;
    EXPECT_TRUE(status.duplicate) << "re-push " << i;
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  router.Stop();
  for (const auto& shard : shards) shard->Stop();
  reference.Stop();
}

// --- Read policies over a healthy-but-stale shard -----------------------

/// Starts two WAL-backed shards + a replicas=0 router, pushes three
/// batches, kills the owner of "A", provokes one bounced push (marking
/// the owner stale), restarts it on the WAL, and re-probes. With
/// auto_repair off the shard comes back HEALTHY but STALE — the state
/// the two read policies disagree about.
class StaleShardFixture {
 public:
  explicit StaleShardFixture(const std::string& dir_name,
                             ClusterRouter::ReadPolicy policy)
      : dir_(FreshDir(dir_name)) {
    for (int i = 0; i < 2; ++i) {
      shards_.push_back(std::make_unique<SketchServer>(
          ShardOptions((dir_ / ("wal" + std::to_string(i))).string())));
      std::string error;
      EXPECT_TRUE(shards_.back()->Start(&error)) << error;
    }
    std::vector<const SketchServer*> ptrs;
    for (const auto& shard : shards_) ptrs.push_back(shard.get());
    ClusterRouter::Options options = RouterOptions(ptrs);
    options.replicas = 0;  // Single placed copy: no failover candidate.
    options.auto_repair = false;
    options.read_policy = policy;
    router_ = std::make_unique<ClusterRouter>(options);
    std::string error;
    EXPECT_TRUE(router_->Start(&error)) << error;
    EXPECT_EQ(router_->ProbeAll(), 2u);

    auto client = MustConnect(router_->port());
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(client->PushUpdates(MakeBatch(i)).ok);
    }

    owner_ = router_->WriteTargets("A")[0];
    for (size_t i = 0; i < router_->options().shards.size(); ++i) {
      if (router_->options().shards[i].name == owner_) owner_index_ = i;
    }
    const int owner_port = shards_[owner_index_]->port();
    shards_[owner_index_]->Stop();

    // One anonymous push to "A" only: the forward fails, the owner is
    // marked stale, nothing lands anywhere (no partial fan-out).
    UpdateBatch probe;
    probe.stream_names = {"A"};
    probe.updates.push_back(Update{0, 0xA11CEULL, 1});
    EXPECT_FALSE(client->PushUpdates(probe).ok);

    SketchServer::Options recovered = ShardOptions(
        (dir_ / ("wal" + std::to_string(owner_index_))).string());
    recovered.port = owner_port;
    shards_[owner_index_] = std::make_unique<SketchServer>(recovered);
    std::string restart_error;
    EXPECT_TRUE(shards_[owner_index_]->Start(&restart_error))
        << restart_error;
    EXPECT_EQ(router_->ProbeAll(), 2u);
    EXPECT_GE(router_->stats().stale_shards, 1u);
  }

  ~StaleShardFixture() {
    router_->Stop();
    for (const auto& shard : shards_) shard->Stop();
  }

  ClusterRouter& router() { return *router_; }
  const std::string& owner() const { return owner_; }

 private:
  std::filesystem::path dir_;
  std::vector<std::unique_ptr<SketchServer>> shards_;
  std::unique_ptr<ClusterRouter> router_;
  std::string owner_;
  size_t owner_index_ = 0;
};

TEST(ClusterReadPolicyTest, StrictRefusesStreamsWithOnlyStaleCopies) {
  StaleShardFixture fixture("cluster_strict_policy",
                            ClusterRouter::ReadPolicy::kStrict);
  auto client = MustConnect(fixture.router().port());

  // Strict: the only copy of "A" is stale, so the read is refused rather
  // than served from a shard that missed a placed write.
  const QueryResultInfo refused = client->Query("A");
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("no healthy shard"), std::string::npos)
      << refused.error;

  // Explicit repair (the admin path) re-admits it; with WAL replay
  // having already restored everything, the repair converges trivially.
  std::string error;
  ASSERT_TRUE(fixture.router().RepairShard(fixture.owner(), &error))
      << error;
  const ClusterRouter::StatsSnapshot stats = fixture.router().stats();
  EXPECT_EQ(stats.stale_shards, 0u);
  EXPECT_GE(stats.readmissions, 1u);
  const QueryResultInfo healed = client->Query("A");
  EXPECT_TRUE(healed.ok) << healed.error;
  EXPECT_FALSE(healed.degraded);
}

TEST(ClusterReadPolicyTest, AvailableServesStaleCopiesAsDegraded) {
  StaleShardFixture fixture("cluster_available_policy",
                            ClusterRouter::ReadPolicy::kAvailable);
  auto client = MustConnect(fixture.router().port());

  // Available: the stale-but-reachable copy answers, flagged degraded on
  // the wire and counted in STATS.
  const QueryResultInfo degraded = client->Query("A");
  ASSERT_TRUE(degraded.ok) << degraded.error;
  EXPECT_TRUE(degraded.degraded);
  EXPECT_GE(fixture.router().stats().degraded_answers, 1u);

  std::string error;
  ASSERT_TRUE(fixture.router().RepairShard(fixture.owner(), &error))
      << error;
  const QueryResultInfo healed = client->Query("A");
  ASSERT_TRUE(healed.ok) << healed.error;
  EXPECT_FALSE(healed.degraded);
  // WAL replay had restored the full prefix, so the degraded answer was
  // in fact complete here — healing must not change it.
  EXPECT_EQ(healed.estimate, degraded.estimate);
}

// --- Online membership: add + drain move only the affected segment ------

TEST(ClusterMembershipTest, AddAndDrainMoveOnlyTheAffectedSegment) {
  SketchServer s0(ShardOptions());
  SketchServer s1(ShardOptions());
  SketchServer s2(ShardOptions());
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(s2.Start(&error)) << error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  ClusterRouter router(RouterOptions({&s0, &s1, &s2}));
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 3u);

  auto via_router = MustConnect(router.port(), "member");
  auto via_reference = MustConnect(reference.port(), "member");
  for (int i = 0; i < 6; ++i) {
    const UpdateBatch batch = MakeBatch(i);
    ASSERT_TRUE(via_router->PushUpdatesWithRetry(batch).ok);
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  const std::vector<std::string> streams = {"A", "B", "C"};
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& stream : streams) {
    before[stream] = router.WriteTargets(stream);
  }

  // Join a vetted fourth shard online. Only streams whose new placement
  // includes it migrate; every other stream keeps its exact targets.
  SketchServer s3(ShardOptions());
  ASSERT_TRUE(s3.Start(&error)) << error;
  ClusterShard joining;
  joining.name = "s3";
  joining.host = "127.0.0.1";
  joining.port = s3.port();
  uint64_t moved = 0;
  ASSERT_TRUE(router.AddShard(joining, &moved, &error)) << error;
  EXPECT_EQ(router.stats().shards, 4u);

  uint64_t expected_moved = 0;
  for (const std::string& stream : streams) {
    const std::vector<std::string> after = router.WriteTargets(stream);
    bool on_new = false;
    for (const std::string& target : after) on_new |= target == "s3";
    if (on_new) {
      ++expected_moved;
    } else {
      EXPECT_EQ(after, before[stream]) << stream << " moved needlessly";
    }
  }
  EXPECT_EQ(moved, expected_moved);
  // Reads may now land on the new shard; answers must not drift.
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // Keep ingesting through the enlarged ring.
  for (int i = 6; i < 9; ++i) {
    const UpdateBatch batch = MakeBatch(i);
    ASSERT_TRUE(via_router->PushUpdatesWithRetry(batch).ok);
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // Drain it back out: its segment slides to the ring successors and the
  // original three-shard placement is restored exactly (the ring is a
  // pure function of the member set).
  uint64_t drained = 0;
  ASSERT_TRUE(router.DrainShard("s3", &drained, &error)) << error;
  EXPECT_EQ(router.stats().removed_shards, 1u);
  for (const std::string& stream : streams) {
    EXPECT_EQ(router.WriteTargets(stream), before[stream]) << stream;
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  for (int i = 9; i < 11; ++i) {
    const UpdateBatch batch = MakeBatch(i);
    ASSERT_TRUE(via_router->PushUpdatesWithRetry(batch).ok);
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }
  ExpectAnswersMatchReference(*via_router, *via_reference);

  // Draining the drained shard again is refused, as is draining down to
  // zero members eventually — membership errors are typed, not crashes.
  EXPECT_FALSE(router.DrainShard("s3", &drained, &error));

  router.Stop();
  s0.Stop();
  s1.Stop();
  s2.Stop();
  s3.Stop();
  reference.Stop();
}

TEST(ClusterMembershipTest, DrainAddCyclesReuseTombstonedSlots) {
  // Repeated join/drain churn must not grow the placement index: a
  // drained slot is a tombstone the next admission revives in place.
  SketchServer s0(ShardOptions());
  SketchServer s1(ShardOptions());
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ClusterRouter router(RouterOptions({&s0, &s1}));
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 2u);

  auto client = MustConnect(router.port(), "cycler");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->PushUpdatesWithRetry(MakeBatch(i)).ok);
  }

  for (int cycle = 0; cycle < 4; ++cycle) {
    SketchServer extra(ShardOptions());
    ASSERT_TRUE(extra.Start(&error)) << error;
    ClusterShard joining;
    joining.name = "extra";
    joining.host = "127.0.0.1";
    joining.port = extra.port();
    uint64_t moved = 0;
    ASSERT_TRUE(router.AddShard(joining, &moved, &error))
        << "cycle " << cycle << ": " << error;
    // Slot count is bounded: the first cycle appends once, every later
    // cycle revives that same slot instead of growing the vector.
    EXPECT_EQ(router.stats().shards, 3u) << "cycle " << cycle;
    EXPECT_EQ(router.stats().removed_shards, 0u) << "cycle " << cycle;

    ASSERT_TRUE(router.DrainShard("extra", &moved, &error))
        << "cycle " << cycle << ": " << error;
    EXPECT_EQ(router.stats().shards, 3u) << "cycle " << cycle;
    EXPECT_EQ(router.stats().removed_shards, 1u) << "cycle " << cycle;
    extra.Stop();

    // The ring still serves between cycles.
    const QueryResultInfo answer = client->Query("A");
    ASSERT_TRUE(answer.ok) << "cycle " << cycle << ": " << answer.error;
  }

  router.Stop();
  s0.Stop();
  s1.Stop();
}

// --- Backend streams through the cluster --------------------------------

/// Mixed-backend batch: T on theta/KMV, S on SetSketch, A on the
/// default two-level synopsis, with insert-then-delete churn.
UpdateBatch MakeTaggedBatch(int index, int per_batch = 300) {
  UpdateBatch batch;
  batch.stream_names = {"T", "S", "A"};
  batch.stream_backends = {
      static_cast<uint8_t>(SketchBackendId::kThetaKmv),
      static_cast<uint8_t>(SketchBackendId::kSetSketch), 0};
  for (int i = 0; i < per_batch; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(index * per_batch + i) * 0x9E3779B9ULL + 7;
    const StreamId stream = static_cast<StreamId>(i % 3);
    batch.updates.push_back(Update{stream, element, 1});
    if (i % 9 == 8) {
      batch.updates.push_back(Update{stream, element, -1});
    }
  }
  return batch;
}

TEST(ClusterRouterTest, BackendStreamsFederateThroughTheRouter) {
  // Backend tags ride the fan-out, the shards build the tagged
  // synopses, and the router's federated answers are bit-identical to a
  // single node that ingested the same frames.
  SketchServer s0(ShardOptions());
  SketchServer s1(ShardOptions());
  SketchServer reference(ShardOptions());
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(reference.Start(&error)) << error;
  ClusterRouter router(RouterOptions({&s0, &s1}));
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 2u);

  auto via_router = MustConnect(router.port(), "backend");
  auto via_reference = MustConnect(reference.port(), "backend");
  for (int b = 0; b < 4; ++b) {
    const UpdateBatch batch = MakeTaggedBatch(b);
    ASSERT_TRUE(via_router->PushUpdatesWithRetry(batch).ok);
    ASSERT_TRUE(via_reference->PushUpdates(batch).ok);
  }

  for (const char* probe : {"T", "S", "A"}) {
    const QueryResultInfo fed = via_router->Query(probe);
    const QueryResultInfo ref = via_reference->Query(probe);
    ASSERT_TRUE(ref.ok) << probe << ": " << ref.error;
    ASSERT_TRUE(fed.ok) << probe << ": " << fed.error;
    EXPECT_EQ(fed.estimate, ref.estimate) << probe;
    EXPECT_EQ(fed.lo, ref.lo) << probe;
    EXPECT_EQ(fed.hi, ref.hi) << probe;
  }

  // Mixing synopsis types in one expression is refused at the router
  // with the same typed error a single node gives.
  const QueryResultInfo mixed = via_router->Query("T | S");
  EXPECT_FALSE(mixed.ok);
  EXPECT_NE(mixed.error.find("mixed sketch backends"), std::string::npos)
      << mixed.error;

  // A retag through the router bounces with CONFIG_MISMATCH, exactly as
  // it would against the shard directly.
  UpdateBatch retag;
  retag.stream_names = {"T"};
  retag.stream_backends = {
      static_cast<uint8_t>(SketchBackendId::kSetSketch)};
  retag.updates = {Update{0, 99, 1}};
  const SketchClient::Status refused = via_router->PushUpdates(retag);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("CONFIG_MISMATCH"), std::string::npos)
      << refused.error;

  router.Stop();
  s0.Stop();
  s1.Stop();
  reference.Stop();
}

TEST(ClusterHandshakeTest, BackendTaggedRouterRefusesLegacyShard) {
  // A deployment configured for a non-default backend must refuse a
  // shard still running the pre-backend defaults: that shard's hello is
  // a version-1 frame (no backend fields), and admission fails exactly
  // like a stored-coins mismatch — both at startup probe and online.
  SketchServer legacy(ShardOptions());
  SketchServer::Options tagged_options = ShardOptions();
  tagged_options.default_backend = SketchBackendId::kSetSketch;
  tagged_options.backend_size = 512;
  SketchServer tagged(tagged_options);
  std::string error;
  ASSERT_TRUE(legacy.Start(&error)) << error;
  ASSERT_TRUE(tagged.Start(&error)) << error;

  ClusterRouter::Options options = RouterOptions({&tagged, &legacy});
  options.replicas = 0;
  options.default_backend = SketchBackendId::kSetSketch;
  options.backend_size = 512;
  ClusterRouter router(options);
  ASSERT_TRUE(router.Start(&error)) << error;
  EXPECT_EQ(router.ProbeAll(), 1u);
  const ClusterRouter::StatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.refused_shards, 1u);
  EXPECT_EQ(stats.healthy_shards, 1u);

  // Joining another legacy shard online is refused with the typed
  // admission error, and membership does not change.
  SketchServer another_legacy(ShardOptions());
  ASSERT_TRUE(another_legacy.Start(&error)) << error;
  ClusterShard joining;
  joining.name = "legacy2";
  joining.host = "127.0.0.1";
  joining.port = another_legacy.port();
  uint64_t moved = 0;
  EXPECT_FALSE(router.AddShard(joining, &moved, &error));
  EXPECT_NE(error.find("CONFIG_MISMATCH"), std::string::npos) << error;
  EXPECT_EQ(router.stats().shards, 2u);

  // A shard with the matching backend config is admitted.
  SketchServer::Options matching = ShardOptions();
  matching.default_backend = SketchBackendId::kSetSketch;
  matching.backend_size = 512;
  SketchServer good(matching);
  ASSERT_TRUE(good.Start(&error)) << error;
  joining.name = "good";
  joining.port = good.port();
  ASSERT_TRUE(router.AddShard(joining, &moved, &error)) << error;
  EXPECT_EQ(router.stats().healthy_shards, 2u);

  router.Stop();
  legacy.Stop();
  tagged.Stop();
  another_legacy.Stop();
  good.Stop();
}

// --- CLI plumbing -------------------------------------------------------

TEST(ClusterCommandsTest, ParseShardListValidatesInput) {
  std::vector<ClusterShard> shards;
  std::string error;
  ASSERT_TRUE(
      ParseShardList("127.0.0.1:7001,10.0.0.2:7002", &shards, &error));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].host, "127.0.0.1");
  EXPECT_EQ(shards[0].port, 7001);
  EXPECT_EQ(shards[0].name, "127.0.0.1:7001");
  EXPECT_EQ(shards[1].host, "10.0.0.2");
  EXPECT_EQ(shards[1].port, 7002);

  EXPECT_FALSE(ParseShardList("", &shards, &error));
  EXPECT_FALSE(ParseShardList("nohost", &shards, &error));
  EXPECT_FALSE(ParseShardList("host:", &shards, &error));
  EXPECT_FALSE(ParseShardList(":7001", &shards, &error));
  EXPECT_FALSE(ParseShardList("host:notaport", &shards, &error));
  EXPECT_FALSE(ParseShardList("host:99999", &shards, &error));
}

TEST(ClusterCommandsTest, RunRouteRejectsBadOptions) {
  ClusterRouter::Options options;
  EXPECT_FALSE(RunRoute(options).ok);  // No shards.
  ClusterShard shard;
  shard.name = "s0";
  shard.port = 1;
  options.shards.push_back(shard);
  options.replicas = 1;  // >= shard count.
  EXPECT_FALSE(RunRoute(options).ok);
}

}  // namespace
}  // namespace setsketch
