// Randomized robustness tests for the wire protocol (src/server/protocol):
// the frame decoder and payload codecs must survive arbitrary byte soup,
// arbitrary read()-chunk boundaries, truncations, and single-byte header
// corruption without crashing, and must report the documented error codes.
// A FaultInjector-driven section replays the chaos harness's send plans
// (drops, partial writes, mid-frame truncation + reset) against the
// decoder to prove framing state never leaks across a reconnect.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/sketch_backend.h"
#include "core/sketch_bank.h"
#include "distributed/summary_codec.h"
#include "expr/canonical.h"
#include "expr/parser.h"
#include "hash/prng.h"
#include "query/plan_cache.h"
#include "server/fault_injector.h"
#include "server/protocol.h"
#include "util/varint.h"

namespace setsketch {
namespace {

/// Feeds `bytes` into `decoder` in random-sized chunks.
void FeedInChunks(FrameDecoder* decoder, const std::string& bytes,
                  Xoshiro256StarStar* rng) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t chunk =
        1 + rng->NextBelow(std::min<size_t>(bytes.size() - offset, 97));
    decoder->Feed(bytes.data() + offset, chunk);
    offset += chunk;
  }
}

UpdateBatch SampleBatch(Xoshiro256StarStar* rng) {
  UpdateBatch batch;
  const size_t num_names = 1 + rng->NextBelow(4);
  for (size_t i = 0; i < num_names; ++i) {
    std::string name = "stream-";
    name.push_back(static_cast<char>('a' + i));
    // Occasionally exercise long (but legal) names.
    if (rng->NextBelow(8) == 0) name.append(rng->NextBelow(200), 'x');
    batch.stream_names.push_back(std::move(name));
  }
  const size_t num_updates = rng->NextBelow(64);
  for (size_t i = 0; i < num_updates; ++i) {
    batch.updates.push_back(
        Update{static_cast<StreamId>(rng->NextBelow(num_names)), rng->Next(),
               rng->NextBelow(2) == 0 ? int64_t{1} : int64_t{-1}});
  }
  // Half the batches carry an idempotency key (site + sequence), so the
  // fuzz corpus covers both the anonymous and the exactly-once prefix.
  if (rng->NextBelow(2) == 0) {
    batch.site_id = "site-";
    batch.site_id.append(1 + rng->NextBelow(kMaxSiteIdBytes - 5), 's');
    batch.sequence = rng->Next();
  }
  return batch;
}

TEST(ProtocolFuzzTest, RandomByteSoupNeverCrashesAndErrorIsSticky) {
  Xoshiro256StarStar rng(0xF00DF00D);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    std::string soup(1 + rng.NextBelow(2048), '\0');
    for (char& c : soup) c = static_cast<char>(rng.Next() & 0xff);
    FeedInChunks(&decoder, soup, &rng);
    Frame frame;
    FrameDecoder::Status status;
    while ((status = decoder.Next(&frame)) == FrameDecoder::Status::kFrame) {
    }
    if (status == FrameDecoder::Status::kError) {
      EXPECT_NE(decoder.error(), WireError::kNone);
      // Poisoned decoders stay poisoned, even when fed valid frames.
      const std::string valid = EncodeFrame(Opcode::kPing, "hello");
      decoder.Feed(valid.data(), valid.size());
      EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kError);
    }
  }
}

TEST(ProtocolFuzzTest, ValidFramesSurviveAnyChunking) {
  Xoshiro256StarStar rng(0xC0FFEE);
  for (int round = 0; round < 50; ++round) {
    // A back-to-back stream of 1..8 frames with random payloads.
    std::string wire;
    std::vector<std::string> payloads;
    const size_t num_frames = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < num_frames; ++i) {
      std::string payload(rng.NextBelow(300), '\0');
      for (char& c : payload) c = static_cast<char>(rng.Next() & 0xff);
      wire += EncodeFrame(Opcode::kPing, payload);
      payloads.push_back(std::move(payload));
    }
    FrameDecoder decoder;
    FeedInChunks(&decoder, wire, &rng);
    Frame frame;
    for (size_t i = 0; i < num_frames; ++i) {
      ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame)
          << "frame " << i << " of " << num_frames;
      EXPECT_EQ(frame.opcode, Opcode::kPing);
      EXPECT_EQ(frame.payload, payloads[i]);
    }
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ProtocolFuzzTest, EveryHeaderPrefixIsNeedMoreNotError) {
  const std::string wire = EncodeFrame(Opcode::kQuery, "A & B");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut;
    // The remainder completes the frame.
    decoder.Feed(wire.data() + cut, wire.size() - cut);
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kFrame)
        << "cut at " << cut;
    EXPECT_EQ(frame.payload, "A & B");
  }
}

TEST(ProtocolFuzzTest, SingleByteHeaderCorruptionYieldsDocumentedError) {
  const std::string valid = EncodeFrame(Opcode::kPing, "x");
  for (size_t pos = 0; pos < kFrameHeaderBytes; ++pos) {
    for (int flip = 1; flip < 256; flip += 37) {
      std::string wire = valid;
      wire[pos] = static_cast<char>(wire[pos] ^ flip);
      FrameDecoder decoder;
      decoder.Feed(wire.data(), wire.size());
      Frame frame;
      const FrameDecoder::Status status = decoder.Next(&frame);
      if (pos < 4) {
        ASSERT_EQ(status, FrameDecoder::Status::kError);
        EXPECT_EQ(decoder.error(), WireError::kBadMagic);
      } else if (pos == 4) {
        ASSERT_EQ(status, FrameDecoder::Status::kError);
        EXPECT_EQ(decoder.error(), WireError::kBadVersion);
      } else if (pos == 5) {
        // Opcode corruption is not a framing error: the frame decodes and
        // the server replies UNKNOWN_OPCODE (or treats it as a request).
        EXPECT_EQ(status, FrameDecoder::Status::kFrame);
      } else if (pos < 8) {
        ASSERT_EQ(status, FrameDecoder::Status::kError);
        EXPECT_EQ(decoder.error(), WireError::kBadHeader);
      } else {
        // Payload-size corruption: a larger declared size pends
        // (kNeedMore), an absurd one errors with OVERSIZED_PAYLOAD, and a
        // shrunken size completes early (kFrame) with the leftover bytes
        // pending as the next header.
        if (status == FrameDecoder::Status::kError) {
          EXPECT_EQ(decoder.error(), WireError::kOversizedPayload);
        }
      }
    }
  }
}

TEST(ProtocolFuzzTest, OversizedDeclaredPayloadIsRejectedImmediately) {
  std::string header(kFrameHeaderBytes, '\0');
  const uint32_t magic = kProtocolMagic;
  std::memcpy(header.data(), &magic, 4);
  header[4] = static_cast<char>(kProtocolVersion);
  header[5] = static_cast<char>(Opcode::kPing);
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(header.data() + 8, &huge, 4);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), WireError::kOversizedPayload);
}

TEST(ProtocolFuzzTest, PushUpdatesRoundTripsRandomBatches) {
  Xoshiro256StarStar rng(0xBA7C4);
  for (int round = 0; round < 100; ++round) {
    const UpdateBatch batch = SampleBatch(&rng);
    UpdateBatch decoded;
    std::string error;
    ASSERT_TRUE(
        DecodePushUpdates(EncodePushUpdates(batch), &decoded, &error))
        << error;
    ASSERT_EQ(decoded.site_id, batch.site_id);
    ASSERT_EQ(decoded.sequence, batch.sequence);
    ASSERT_EQ(decoded.stream_names, batch.stream_names);
    ASSERT_EQ(decoded.updates.size(), batch.updates.size());
    for (size_t i = 0; i < batch.updates.size(); ++i) {
      EXPECT_EQ(decoded.updates[i].stream, batch.updates[i].stream);
      EXPECT_EQ(decoded.updates[i].element, batch.updates[i].element);
      EXPECT_EQ(decoded.updates[i].delta, batch.updates[i].delta);
    }
  }
}

TEST(ProtocolFuzzTest, PushUpdatesRejectsEveryTruncation) {
  Xoshiro256StarStar rng(0x7A0BC);
  for (int round = 0; round < 20; ++round) {
    UpdateBatch batch = SampleBatch(&rng);
    if (batch.updates.empty()) {
      batch.updates.push_back(Insert(0, 42));
    }
    const std::string payload = EncodePushUpdates(batch);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      UpdateBatch decoded;
      std::string error;
      EXPECT_FALSE(
          DecodePushUpdates(payload.substr(0, cut), &decoded, &error))
          << "round " << round << " cut " << cut;
    }
    // ...and every extension (trailing garbage) too.
    UpdateBatch decoded;
    std::string error;
    EXPECT_FALSE(DecodePushUpdates(payload + "!", &decoded, &error));
  }
}

TEST(ProtocolFuzzTest, PushUpdatesSurvivesRandomPayloads) {
  Xoshiro256StarStar rng(0xD15EA5E);
  size_t decoded_ok = 0;
  for (int round = 0; round < 500; ++round) {
    std::string payload(rng.NextBelow(512), '\0');
    for (char& c : payload) c = static_cast<char>(rng.Next() & 0xff);
    UpdateBatch decoded;
    std::string error;
    if (DecodePushUpdates(payload, &decoded, &error)) {
      ++decoded_ok;  // Fine, as long as it did not crash or overflow.
      for (const Update& u : decoded.updates) {
        ASSERT_LT(static_cast<size_t>(u.stream),
                  decoded.stream_names.size());
      }
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
  // Random bytes essentially never form a valid batch.
  EXPECT_LT(decoded_ok, 5u);
}

TEST(ProtocolFuzzTest, PushUpdatesRejectsHostileDeclaredCounts) {
  // A payload declaring 2^40 names in 3 bytes must fail fast (bounded
  // sanity checks), not attempt a gigantic reserve.
  std::string payload;
  AppendVarint(&payload, uint64_t{1} << 40);
  UpdateBatch decoded;
  std::string error;
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));

  // One name, then an absurd update count with no bytes behind it.
  payload.clear();
  AppendVarint(&payload, 1);
  AppendVarint(&payload, 1);
  payload.push_back('A');
  AppendVarint(&payload, uint64_t{1} << 50);
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));

  // A name longer than kMaxStreamNameBytes is rejected even when the
  // bytes are all present.
  payload.clear();
  AppendVarint(&payload, 1);
  AppendVarint(&payload, kMaxStreamNameBytes + 1);
  payload.append(kMaxStreamNameBytes + 1, 'n');
  AppendVarint(&payload, 0);
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));
}

TEST(ProtocolFuzzTest, PushUpdatesRejectsHostileIdempotencyPrefix) {
  // A site id longer than kMaxSiteIdBytes is rejected even when all its
  // bytes are present.
  std::string payload;
  AppendVarint(&payload, kMaxSiteIdBytes + 1);
  payload.append(kMaxSiteIdBytes + 1, 's');
  UpdateBatch decoded;
  std::string error;
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));
  EXPECT_FALSE(error.empty());

  // A valid site id with the sequence varint cut off mid-continuation.
  payload.clear();
  AppendVarint(&payload, 4);
  payload.append("site");
  payload.push_back('\x80');  // Continuation bit set, no next byte.
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));

  // A site id whose declared length points past the end of the payload.
  payload.clear();
  AppendVarint(&payload, 200);
  payload.append("short", 5);
  EXPECT_FALSE(DecodePushUpdates(payload, &decoded, &error));
}

// --- FaultInjector-driven transport chaos against the decoder -----------

/// Applies one injector SendPlan to `wire`, feeding the decoder what a
/// real socket peer would actually observe. Returns false when the plan
/// severed the connection (the caller must start a fresh decoder, exactly
/// like a real handler would for a fresh accept()).
bool DeliverPerPlan(const SendPlan& plan, const std::string& wire,
                    FrameDecoder* decoder) {
  switch (plan.kind) {
    case SendPlan::Kind::kDrop:
      return true;  // Bytes vanished; the connection itself is fine.
    case SendPlan::Kind::kReset:
      return false;  // Nothing delivered, connection torn down.
    case SendPlan::Kind::kTruncate:
      decoder->Feed(wire.data(), std::min(plan.truncate_at, wire.size()));
      return false;  // Prefix delivered, then torn down.
    case SendPlan::Kind::kPartial: {
      size_t offset = 0;
      while (offset < wire.size()) {
        const size_t chunk =
            std::min(wire.size() - offset,
                     plan.chunk_bytes == 0 ? size_t{1} : plan.chunk_bytes);
        decoder->Feed(wire.data() + offset, chunk);
        offset += chunk;
      }
      return true;
    }
    case SendPlan::Kind::kPass:
    case SendPlan::Kind::kDelay:
      decoder->Feed(wire.data(), wire.size());
      return true;
  }
  return true;
}

TEST(ProtocolFuzzTest, InjectedFaultsNeverConfuseTheDecoder) {
  Xoshiro256StarStar rng(0x5EED);
  FaultInjector::Options fault_options;
  fault_options.seed = 0x5EED;
  fault_options.drop_probability = 0.15;
  fault_options.reset_probability = 0.15;
  fault_options.truncate_probability = 0.2;
  fault_options.partial_probability = 0.25;
  FaultInjector injector(fault_options);

  FrameDecoder decoder;
  uint64_t frames_delivered = 0;
  uint64_t frames_decoded = 0;
  for (int round = 0; round < 400; ++round) {
    UpdateBatch batch = SampleBatch(&rng);
    const std::string wire =
        EncodeFrame(Opcode::kPushUpdates, EncodePushUpdates(batch));
    const SendPlan plan = injector.PlanSend(wire.size());
    const bool intact = DeliverPerPlan(plan, wire, &decoder);
    if (plan.kind == SendPlan::Kind::kPass ||
        plan.kind == SendPlan::Kind::kDelay ||
        plan.kind == SendPlan::Kind::kPartial) {
      ++frames_delivered;
    }
    Frame frame;
    FrameDecoder::Status status;
    while ((status = decoder.Next(&frame)) == FrameDecoder::Status::kFrame) {
      ++frames_decoded;
      // Whatever survived transport must decode as the exact batch shape
      // (truncations never produce a complete frame, so every complete
      // frame is a fully intact one).
      UpdateBatch decoded;
      std::string error;
      ASSERT_TRUE(DecodePushUpdates(frame.payload, &decoded, &error))
          << error;
    }
    // Intact deliveries leave the decoder healthy and frame-aligned; a
    // truncated-then-reset connection gets a fresh decoder, like a fresh
    // accept() on the server.
    if (intact) {
      ASSERT_EQ(status, FrameDecoder::Status::kNeedMore);
      ASSERT_EQ(decoder.buffered_bytes(), 0u);
    } else {
      decoder = FrameDecoder();
    }
  }
  EXPECT_GT(injector.faults_injected(), 0u);
  EXPECT_EQ(frames_decoded, frames_delivered);
}

TEST(ProtocolFuzzTest, MidFrameResetLeavesNoStateForNextConnection) {
  // Every possible truncation point of a frame, followed by a "reset" and
  // a fresh decoder: the next connection's first frame always decodes.
  UpdateBatch batch;
  batch.site_id = "site";
  batch.sequence = 3;
  batch.stream_names = {"A"};
  batch.updates = {Insert(0, 7)};
  const std::string wire =
      EncodeFrame(Opcode::kPushUpdates, EncodePushUpdates(batch));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder torn;
    torn.Feed(wire.data(), cut);
    Frame frame;
    EXPECT_NE(torn.Next(&frame), FrameDecoder::Status::kFrame)
        << "cut " << cut;
    FrameDecoder fresh;  // Reconnect.
    fresh.Feed(wire.data(), wire.size());
    ASSERT_EQ(fresh.Next(&frame), FrameDecoder::Status::kFrame)
        << "cut " << cut;
    UpdateBatch decoded;
    std::string error;
    ASSERT_TRUE(DecodePushUpdates(frame.payload, &decoded, &error)) << error;
    EXPECT_EQ(decoded.site_id, "site");
    EXPECT_EQ(decoded.sequence, 3u);
  }
}

TEST(ProtocolFuzzTest, AuxiliaryCodecsSurviveTruncationAndSoup) {
  Xoshiro256StarStar rng(0xAB1E);
  // Ack round trip + truncation never crashes.
  AckInfo ack;
  ack.accepted = 123456789;
  ack.replaced = true;
  ack.duplicate = true;
  const std::string ack_payload = EncodeAck(ack);
  AckInfo ack_out;
  ASSERT_TRUE(DecodeAck(ack_payload, &ack_out));
  EXPECT_EQ(ack_out.accepted, ack.accepted);
  EXPECT_TRUE(ack_out.replaced);
  EXPECT_TRUE(ack_out.duplicate);
  for (size_t cut = 0; cut < ack_payload.size(); ++cut) {
    // A truncated ACK (e.g. a duplicate flag cut off mid-frame) must be
    // rejected, never silently defaulted.
    EXPECT_FALSE(DecodeAck(ack_payload.substr(0, cut), &ack_out));
  }

  // Query-result round trip (both arms) + random soup.
  QueryResultInfo ok_result;
  ok_result.ok = true;
  ok_result.expression = "(A | B) - C";
  ok_result.estimate = 1234.5;
  ok_result.lo = 1000.25;
  ok_result.hi = 1500.75;
  QueryResultInfo out;
  ASSERT_TRUE(DecodeQueryResult(EncodeQueryResult(ok_result), &out));
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.expression, ok_result.expression);
  EXPECT_DOUBLE_EQ(out.estimate, ok_result.estimate);
  EXPECT_DOUBLE_EQ(out.lo, ok_result.lo);
  EXPECT_DOUBLE_EQ(out.hi, ok_result.hi);

  QueryResultInfo error_result;
  error_result.ok = false;
  error_result.error = "parse error: unexpected end of input";
  ASSERT_TRUE(DecodeQueryResult(EncodeQueryResult(error_result), &out));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, error_result.error);

  EXPECT_FALSE(DecodeQueryResult("", &out));
  std::string empty_ok(1, '\x01');
  EXPECT_FALSE(DecodeQueryResult(empty_ok, &out));  // ok but no doubles.

  for (int round = 0; round < 200; ++round) {
    std::string soup(rng.NextBelow(64), '\0');
    for (char& c : soup) c = static_cast<char>(rng.Next() & 0xff);
    DecodeAck(soup, &ack_out);           // Must not crash.
    DecodeQueryResult(soup, &out);       // Must not crash.
    ErrorInfo error_info;
    DecodeError(soup, &error_info);      // Must not crash.
  }
}

TEST(ProtocolFuzzTest, PushUpdatesRejectsDuplicateStreamNames) {
  // A batch naming the same stream twice is ambiguous (updates index
  // streams by position) and must be refused at decode time with a typed
  // message, not silently double-routed.
  UpdateBatch batch;
  batch.stream_names = {"A", "B", "A"};
  batch.updates.push_back(Update{0, 42, 1});
  UpdateBatch decoded;
  std::string error;
  EXPECT_FALSE(DecodePushUpdates(EncodePushUpdates(batch), &decoded, &error));
  EXPECT_NE(error.find("duplicate stream name"), std::string::npos) << error;
  EXPECT_NE(error.find("'A'"), std::string::npos) << error;

  // Distinct names with a shared prefix stay legal.
  batch.stream_names = {"A", "B", "AA"};
  EXPECT_TRUE(DecodePushUpdates(EncodePushUpdates(batch), &decoded, &error))
      << error;
}

// --- Planner robustness against hostile QUERY payloads ------------------

/// Runs one hostile QUERY payload through the full planner path: parse ->
/// canonicalize -> plan-cache query against a small live bank. The
/// invariant is "typed error or valid answer", never a crash or hang.
void ExerciseHostileQuery(const std::string& text, PlanCache* cache,
                          const SketchBank& bank) {
  const ParseResult parsed = ParseExpression(text);
  if (!parsed.ok()) {
    EXPECT_NE(parsed.code, ParseErrorCode::kNone) << text;
    EXPECT_FALSE(parsed.error.empty());
    return;
  }
  const CanonicalPlan plan = Canonicalize(*parsed.expression);
  EXPECT_TRUE(plan.ok());
  const PlanCache::Result result = cache->Query(*parsed.expression, bank);
  if (!result.ok) {
    EXPECT_FALSE(result.error.empty()) << text;
  }
}

TEST(ProtocolFuzzTest, HostileQueryPayloadsNeverCrashThePlanner) {
  SketchParams params;
  params.levels = 16;
  params.num_second_level = 8;
  SketchBank bank(SketchFamily(params, 8, 99));
  bank.AddStream("A");
  bank.AddStream("B");
  for (uint64_t e = 1; e <= 64; ++e) bank.Apply("A", e, 1);

  PlanCache cache(PlanCache::Options{});
  std::vector<std::string> corpus = {
      "", "   ", "\t\n", "(", ")", "((((", "))))", "()",
      "A &", "& A", "A | | B", "A - - B", "A B", "A $ B", "A\x01(",
      std::string(1, '\0'), std::string(3, '\xff'),
      "A & " + std::string(5000, 'x'),  // Pathologically long name.
      std::string(100000, '('),         // Unterminated deep nesting.
  };
  // Balanced but beyond the recursion cap: must be a typed kTooDeep, not
  // a stack overflow.
  std::string deep(100000, '(');
  deep += "A";
  deep.append(100000, ')');
  corpus.push_back(deep);
  for (const std::string& text : corpus) {
    ExerciseHostileQuery(text, &cache, bank);
  }
  EXPECT_EQ(ParseExpression(deep).code, ParseErrorCode::kTooDeep);

  // Random printable soup biased toward grammar characters, so a fair
  // fraction parses and exercises the canonicalizer too.
  Xoshiro256StarStar rng(0xFACADE);
  const std::string alphabet = "AB()|&-  ";
  for (int round = 0; round < 500; ++round) {
    std::string soup(rng.NextBelow(40), ' ');
    for (char& c : soup) {
      c = rng.NextBelow(4) == 0
              ? static_cast<char>(rng.Next() & 0xff)
              : alphabet[rng.NextBelow(alphabet.size())];
    }
    ExerciseHostileQuery(soup, &cache, bank);
  }
}

// ---------------------------------------------------------------------------
// Hello versioning: v1 (pre-backend) and v2 (backend-tagged) layouts.

TEST(HelloCodecTest, DefaultBackendConfigStaysOnVersion1Bytes) {
  HelloInfo mine;
  mine.params.levels = 32;
  mine.params.num_second_level = 32;
  mine.copies = 128;
  mine.seed = 42;
  const std::string payload = EncodeHello(mine, /*response=*/false);
  // Byte 4 is the hello version: a default backend configuration must
  // keep emitting the pre-backend layout, so old and new builds remain
  // wire-identical for default deployments.
  ASSERT_GT(payload.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(payload[4]), kHelloVersion);
  HelloInfo decoded;
  ASSERT_TRUE(DecodeHello(payload, /*response=*/false, &decoded));
  EXPECT_EQ(decoded.hello_version, kHelloVersion);
  EXPECT_EQ(decoded.backend, 0);
  EXPECT_EQ(decoded.backend_size, 4096u);
  EXPECT_TRUE(decoded.ConfigMatches(mine));
}

TEST(HelloCodecTest, HandCraftedVersion1BytesDecodeToDefaultBackend) {
  // A v1 hello exactly as a pre-backend build writes it: magic, version,
  // features, then six configuration varints — no backend fields.
  std::string payload;
  const uint32_t magic = kHelloRequestMagic;
  payload.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  payload.push_back(static_cast<char>(kHelloVersion));
  payload.push_back('\0');                       // features
  AppendVarint(&payload, 32);                    // levels
  AppendVarint(&payload, 32);                    // num_second_level
  AppendVarint(&payload, 0);                     // first_level_kind
  AppendVarint(&payload, 0);                     // independence
  AppendVarint(&payload, 128);                   // copies
  AppendVarint(&payload, 42);                    // seed
  HelloInfo decoded;
  ASSERT_TRUE(DecodeHello(payload, /*response=*/false, &decoded));
  EXPECT_EQ(decoded.hello_version, kHelloVersion);
  EXPECT_EQ(decoded.copies, 128);
  EXPECT_EQ(decoded.seed, 42u);
  EXPECT_EQ(decoded.backend, 0);
  EXPECT_EQ(decoded.backend_size, 4096u);

  // The same v1 peer against a backend-tagged config: decodes fine, but
  // ConfigMatches refuses — the refusal path cross-version tests pin.
  HelloInfo tagged;
  tagged.params.levels = 32;
  tagged.params.num_second_level = 32;
  tagged.copies = 128;
  tagged.seed = 42;
  tagged.backend = static_cast<uint8_t>(SketchBackendId::kSetSketch);
  EXPECT_FALSE(decoded.ConfigMatches(tagged));
}

TEST(HelloCodecTest, BackendConfigUpgradesToVersion2AndRoundTrips) {
  HelloInfo mine;
  mine.params.levels = 16;
  mine.params.num_second_level = 32;
  mine.copies = 64;
  mine.seed = 7;
  mine.backend = static_cast<uint8_t>(SketchBackendId::kThetaKmv);
  mine.backend_size = 8192;
  for (const bool response : {false, true}) {
    const std::string payload = EncodeHello(mine, response);
    ASSERT_GT(payload.size(), 4u);
    EXPECT_EQ(static_cast<uint8_t>(payload[4]), kHelloVersionBackend);
    HelloInfo decoded;
    ASSERT_TRUE(DecodeHello(payload, response, &decoded));
    EXPECT_EQ(decoded.backend, mine.backend);
    EXPECT_EQ(decoded.backend_size, mine.backend_size);
    EXPECT_TRUE(decoded.ConfigMatches(mine));
    HelloInfo defaults = mine;
    defaults.backend = 0;
    defaults.backend_size = 4096;
    EXPECT_FALSE(decoded.ConfigMatches(defaults));
  }
}

TEST(HelloCodecTest, RejectsHostileBackendFieldsAndEveryTruncation) {
  HelloInfo mine;
  mine.params.levels = 32;
  mine.params.num_second_level = 32;
  mine.copies = 128;
  mine.seed = 42;
  mine.backend = static_cast<uint8_t>(SketchBackendId::kSetSketch);
  mine.backend_size = 1024;
  const std::string payload = EncodeHello(mine, /*response=*/false);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    HelloInfo decoded;
    EXPECT_FALSE(
        DecodeHello(payload.substr(0, cut), /*response=*/false, &decoded))
        << "cut " << cut;
  }

  // Unknown backend ids and out-of-range sizes are refused before any
  // narrowing — a hostile peer cannot plant an unconstructible config.
  const auto craft = [&](uint64_t backend, uint64_t size) {
    std::string bytes;
    const uint32_t magic = kHelloRequestMagic;
    bytes.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
    bytes.push_back(static_cast<char>(kHelloVersionBackend));
    bytes.push_back('\0');
    AppendVarint(&bytes, 32);
    AppendVarint(&bytes, 32);
    AppendVarint(&bytes, 0);
    AppendVarint(&bytes, 0);
    AppendVarint(&bytes, 128);
    AppendVarint(&bytes, 42);
    AppendVarint(&bytes, backend);
    AppendVarint(&bytes, size);
    return bytes;
  };
  HelloInfo decoded;
  EXPECT_FALSE(DecodeHello(craft(9, 4096), false, &decoded));
  EXPECT_FALSE(DecodeHello(craft(1, kMinBackendSize - 1), false, &decoded));
  EXPECT_FALSE(
      DecodeHello(craft(1, uint64_t{kMaxBackendSize} + 1), false, &decoded));
  EXPECT_TRUE(DecodeHello(craft(1, 4096), false, &decoded));
}

// ---------------------------------------------------------------------------
// PUSH backend tags: the optional trailing section.

TEST(ProtocolFuzzTest, PushUpdatesTagsRoundTripAndDefaultWhenAbsent) {
  Xoshiro256StarStar rng(0x7A65);
  for (int round = 0; round < 100; ++round) {
    UpdateBatch batch = SampleBatch(&rng);
    for (size_t i = 0; i < batch.stream_names.size(); ++i) {
      batch.stream_backends.push_back(
          static_cast<uint8_t>(rng.NextBelow(3)));
    }
    const std::string payload = EncodePushUpdates(batch);
    UpdateBatch decoded;
    std::string error;
    ASSERT_TRUE(DecodePushUpdates(payload, &decoded, &error)) << error;
    ASSERT_EQ(decoded.stream_backends.size(), batch.stream_names.size());
    EXPECT_EQ(decoded.stream_backends, batch.stream_backends);

    // An all-default tag vector must not change the bytes: pre-backend
    // and backend builds emit identical untagged payloads.
    UpdateBatch untagged = batch;
    untagged.stream_backends.assign(batch.stream_names.size(), 0);
    UpdateBatch bare = batch;
    bare.stream_backends.clear();
    EXPECT_EQ(EncodePushUpdates(untagged), EncodePushUpdates(bare));
    UpdateBatch bare_decoded;
    ASSERT_TRUE(
        DecodePushUpdates(EncodePushUpdates(bare), &bare_decoded, &error))
        << error;
    EXPECT_EQ(bare_decoded.stream_backends,
              std::vector<uint8_t>(batch.stream_names.size(), 0));
  }
}

// ---------------------------------------------------------------------------
// Tagged stream summaries (the SKSM layout).

TEST(SummaryCodecFuzzTest, TaggedSummariesRoundTripAcrossBackends) {
  Xoshiro256StarStar rng(0x5C5C);
  const BackendOptions options{512, 42};
  for (const SketchBackendId backend :
       {SketchBackendId::kThetaKmv, SketchBackendId::kSetSketch}) {
    for (int round = 0; round < 25; ++round) {
      std::unique_ptr<DistinctSketch> sketch =
          CreateDistinctSketch(backend, options);
      ASSERT_NE(sketch, nullptr);
      const size_t items = rng.NextBelow(2000);
      for (size_t i = 0; i < items; ++i) {
        sketch->Update(rng.Next(), rng.NextBelow(2) == 0 ? 1 : -1);
      }
      StreamSummary summary;
      summary.backend = static_cast<uint8_t>(backend);
      summary.backend_sketch =
          std::shared_ptr<const DistinctSketch>(sketch->Clone());
      std::string encoded;
      EncodeStreamSummary(summary, /*compact=*/true, &encoded);

      size_t offset = 0;
      StreamSummary decoded;
      std::string error;
      ASSERT_TRUE(DecodeStreamSummary(encoded, &offset, /*copies=*/0,
                                      /*seeds=*/nullptr, &options, &decoded,
                                      &error))
          << error;
      EXPECT_EQ(offset, encoded.size());
      ASSERT_EQ(decoded.backend, summary.backend);
      ASSERT_NE(decoded.backend_sketch, nullptr);
      // Decode must be lossless: re-encoding reproduces the exact bytes
      // (theta's Equals is admission-history-dependent, so byte identity
      // is the stronger and backend-agnostic check).
      std::string re_encoded;
      EncodeStreamSummary(decoded, /*compact=*/true, &re_encoded);
      EXPECT_EQ(re_encoded, encoded);
      EXPECT_TRUE(decoded.backend_sketch->Equals(*summary.backend_sketch));

      // Foreign backend options are refused like foreign stored coins.
      const BackendOptions foreign{512, 43};
      offset = 0;
      StreamSummary refused;
      EXPECT_FALSE(DecodeStreamSummary(encoded, &offset, 0, nullptr,
                                       &foreign, &refused, &error));
      EXPECT_NE(error.find("foreign backend configuration"),
                std::string::npos);

      // Every truncation fails cleanly (the layout is self-delimiting).
      for (size_t cut = 0; cut < encoded.size(); cut += 1 + cut / 16) {
        offset = 0;
        StreamSummary trunc;
        EXPECT_FALSE(DecodeStreamSummary(encoded.substr(0, cut), &offset, 0,
                                         nullptr, &options, &trunc, &error));
      }
    }
  }
}

TEST(SummaryCodecFuzzTest, TaggedSummarySurvivesRandomByteSoup) {
  Xoshiro256StarStar rng(0x50C5);
  const BackendOptions options{512, 42};
  for (int round = 0; round < 500; ++round) {
    // Lead with the SKSM magic so the soup exercises the tagged branch.
    std::string data;
    const uint32_t magic = 0x534B534Du;
    data.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
    const size_t len = rng.NextBelow(256);
    for (size_t i = 0; i < len; ++i) {
      data.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    size_t offset = 0;
    StreamSummary decoded;
    std::string error;
    if (!DecodeStreamSummary(data, &offset, 0, nullptr, &options, &decoded,
                             &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

}  // namespace
}  // namespace setsketch
