// Stress and edge-case tests: extreme parameter corners, domain-boundary
// elements, huge multiplicities, degenerate configurations, and parser
// fuzzing. None of these should crash, overflow, or violate invariants.

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/property_checks.h"
#include "core/set_union_estimator.h"
#include "core/sketch_bank.h"
#include "expr/analysis.h"
#include "expr/parser.h"
#include "hash/prng.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// Parameter corners

TEST(StressTest, MinimalSketchShapeStillWorks) {
  SketchParams tiny;
  tiny.levels = 1;
  tiny.num_second_level = 1;
  ASSERT_TRUE(tiny.Valid());
  TwoLevelHashSketch sketch(
      std::make_shared<const SketchSeed>(tiny, 1));
  sketch.Update(42, 1);
  EXPECT_EQ(sketch.LevelTotal(0), 1);
  sketch.Update(42, -1);
  EXPECT_TRUE(sketch.Empty());
}

TEST(StressTest, SixtyFourLevels) {
  SketchParams wide;
  wide.levels = 64;
  wide.num_second_level = 2;
  ASSERT_TRUE(wide.Valid());
  const auto seed = std::make_shared<const SketchSeed>(wide, 3);
  TwoLevelHashSketch sketch(seed);
  for (uint64_t e = 0; e < 1000; ++e) {
    sketch.Update(e, 1);
    const int level = seed->Level(e);
    EXPECT_GE(level, 0);
    EXPECT_LT(level, 64);
  }
}

TEST(StressTest, SingleCopyEstimatorsDoNotCrash) {
  SketchBank bank(SketchFamily(TestParams(), 1, 5));
  bank.AddStream("A");
  for (int e = 0; e < 100; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e), 1);
  }
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A"}), 0.5);
  EXPECT_TRUE(est.ok);  // Wildly inaccurate but well-defined.
  EXPECT_GE(est.estimate, 0.0);
}

// ---------------------------------------------------------------------------
// Domain boundaries

TEST(StressTest, BoundaryElementValues) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 7);
  TwoLevelHashSketch sketch(seed);
  const uint64_t boundary[] = {0, 1, std::numeric_limits<uint64_t>::max(),
                               std::numeric_limits<uint64_t>::max() - 1,
                               1ULL << 63};
  for (uint64_t e : boundary) sketch.Update(e, 1);
  for (uint64_t e : boundary) sketch.Update(e, -1);
  EXPECT_TRUE(sketch.Empty());
}

TEST(StressTest, HugeMultiplicities) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 9);
  TwoLevelHashSketch sketch(seed);
  const int64_t big = std::numeric_limits<int64_t>::max() / 4;
  sketch.Update(5, big);
  sketch.Update(5, big);  // Sums without overflow (2 * max/4 < max).
  EXPECT_EQ(sketch.LevelTotal(seed->Level(5)), 2 * big);
  EXPECT_TRUE(SingletonBucket(sketch, seed->Level(5)));
  sketch.Update(5, -big);
  sketch.Update(5, -big);
  EXPECT_TRUE(sketch.Empty());
}

TEST(StressTest, ManyStreamsInOneBank) {
  SketchBank bank(SketchFamily(TestParams(), 2, 11));
  for (int s = 0; s < 200; ++s) {
    const std::string name = "stream_" + std::to_string(s);
    ASSERT_TRUE(bank.AddStream(name));
    bank.Apply(name, static_cast<uint64_t>(s), 1);
  }
  EXPECT_EQ(bank.StreamNames().size(), 200u);
  const auto groups = bank.Groups(bank.StreamNames());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 200u);
  // 200 distinct elements across 200 streams.
  const UnionEstimate est = EstimateSetUnion(groups, 0.5);
  EXPECT_TRUE(est.ok);
}

// ---------------------------------------------------------------------------
// Parser fuzzing

TEST(StressTest, ParserNeverCrashesOnRandomBytes) {
  Xoshiro256StarStar rng(13);
  const char alphabet[] = "AB()|&-_ 019\t\n#%";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    const size_t length = rng.NextBelow(24);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    const ParseResult result = ParseExpression(input);  // Must not crash.
    if (result.ok()) {
      // Whatever parsed must render and re-parse to the same tree.
      const ParseResult again =
          ParseExpression(result.expression->ToString());
      ASSERT_TRUE(again.ok()) << input;
      EXPECT_TRUE(
          StructurallyEqual(*result.expression, *again.expression))
          << input;
    }
  }
}

TEST(StressTest, RenderParseRoundTripOnRandomExpressions) {
  Xoshiro256StarStar rng(17);
  // Build random expression strings from valid grammar pieces.
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = "A";
    const int ops = 1 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < ops; ++i) {
      const char op = "|&-"[rng.NextBelow(3)];
      const std::string name(1, static_cast<char>('A' + rng.NextBelow(4)));
      if (rng.NextBelow(2)) {
        text = "(" + text + ") " + op + " " + name;
      } else {
        text = text + " " + op + " " + name;
      }
    }
    const ParseResult first = ParseExpression(text);
    ASSERT_TRUE(first.ok()) << text;
    const ParseResult second =
        ParseExpression(first.expression->ToString());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(StructurallyEqual(*first.expression, *second.expression))
        << text;
    // And simplification, if it changes anything, preserves semantics.
    const ExprPtr simplified = Simplify(first.expression);
    if (simplified) {
      EXPECT_TRUE(SemanticallyEqual(*first.expression, *simplified))
          << text;
    } else {
      EXPECT_TRUE(ProvablyEmpty(*first.expression)) << text;
    }
  }
}

// ---------------------------------------------------------------------------
// Deserialization fuzzing at the bank level

TEST(StressTest, SnapshotFuzzNeverCrashes) {
  Xoshiro256StarStar rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const size_t length = rng.NextBelow(200);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.Next()));
    }
    size_t offset = 0;
    TwoLevelHashSketch::Deserialize(garbage, &offset);  // Must not crash.
  }
}

}  // namespace
}  // namespace setsketch
