// Tests for the Figure 5 set-union cardinality estimator.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/set_union_estimator.h"
#include "core/sketch_bank.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

TEST(UnionEstimatorTest, RejectsEmptyInput) {
  EXPECT_FALSE(EstimateSetUnion({}, 0.5).ok);
}

TEST(UnionEstimatorTest, RejectsNonPositiveEpsilon) {
  VennPartitionGenerator gen(1, {0.0, 1.0});
  const auto bank = BankFromDataset(gen.Generate(64, 1), 16, 2);
  EXPECT_FALSE(EstimateSetUnion(bank->Groups({"S0"}), 0.0).ok);
  EXPECT_FALSE(EstimateSetUnion(bank->Groups({"S0"}), -1.0).ok);
}

TEST(UnionEstimatorTest, RejectsMixedSeedGroups) {
  SketchBank bank1(SketchFamily(TestParams(), 2, 1));
  SketchBank bank2(SketchFamily(TestParams(), 2, 2));
  bank1.AddStream("A");
  bank2.AddStream("A");
  // Groups stitched from different copies have mismatched coins.
  SketchGroup bad = {&bank1.Sketches("A")[0], &bank2.Sketches("A")[0]};
  EXPECT_FALSE(EstimateSetUnion({bad}, 0.5).ok);
}

TEST(UnionEstimatorTest, EmptyStreamsEstimateZero) {
  SketchBank bank(SketchFamily(TestParams(), 32, 3));
  bank.AddStream("A");
  bank.AddStream("B");
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A", "B"}), 0.5);
  EXPECT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
}

TEST(UnionEstimatorTest, SingleStreamDistinctCount) {
  VennPartitionGenerator gen(1, {0.0, 1.0});
  const PartitionedDataset data = gen.Generate(4096, 5);
  const auto bank = BankFromDataset(data, 256, 7);
  const UnionEstimate est = EstimateSetUnion(bank->Groups({"S0"}), 0.5);
  ASSERT_TRUE(est.ok);
  // Single-trial error at r = 256 has sd ~ 0.15 (see bench_union); 0.35
  // is a ~2.5-sigma envelope.
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.UnionSize())),
            0.35);
}

TEST(UnionEstimatorTest, TwoStreamUnionAccuracy) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(4096, 9);
  const auto bank = BankFromDataset(data, 256, 11);
  const UnionEstimate est =
      EstimateSetUnion(bank->Groups({"S0", "S1"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.UnionSize())),
            0.35);
  EXPECT_EQ(est.copies, 256);
  EXPECT_GE(est.level, 0);
  EXPECT_GT(est.p_hat, 0.0);
  EXPECT_LE(est.p_hat, (1.0 + 0.5) / 8.0 + 1e-9);
}

TEST(UnionEstimatorTest, UnionOfIdenticalStreamsEqualsOne) {
  // A == B: |A u B| = |A|.
  SketchBank bank(SketchFamily(TestParams(), 192, 13));
  bank.AddStream("A");
  bank.AddStream("B");
  const int n = 2000;
  for (int e = 0; e < n; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u;
    bank.Apply("A", elem, 1);
    bank.Apply("B", elem, 1);
  }
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A", "B"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, n), 0.4);
}

TEST(UnionEstimatorTest, DisjointStreamsAdd) {
  SketchBank bank(SketchFamily(TestParams(), 192, 17));
  bank.AddStream("A");
  bank.AddStream("B");
  const int n = 1500;
  for (int e = 0; e < n; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 7919 + 1, 1);
    bank.Apply("B", static_cast<uint64_t>(e) * 104729 + (1ULL << 45), 1);
  }
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A", "B"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, 2.0 * n), 0.4);
}

TEST(UnionEstimatorTest, DeletionsShrinkTheUnion) {
  SketchBank bank(SketchFamily(TestParams(), 192, 19));
  bank.AddStream("A");
  const int n = 4000;
  for (int e = 0; e < n; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 31337, 1);
  }
  // Delete 3/4 of the elements.
  for (int e = 0; e < n; ++e) {
    if (e % 4 != 0) bank.Apply("A", static_cast<uint64_t>(e) * 31337, -1);
  }
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, n / 4.0), 0.4);
}

TEST(UnionEstimatorTest, SmallCardinalitiesStayReasonable) {
  for (int n : {1, 2, 4, 8}) {
    SketchBank bank(SketchFamily(TestParams(), 256, 100 + n));
    bank.AddStream("A");
    for (int e = 0; e < n; ++e) {
      bank.Apply("A", static_cast<uint64_t>(e) * 48271 + 1, 1);
    }
    const UnionEstimate est = EstimateSetUnion(bank.Groups({"A"}), 0.5);
    ASSERT_TRUE(est.ok) << n;
    // Tiny sets carry large relative variance; just require the right
    // ballpark (within a factor of ~2).
    EXPECT_GT(est.estimate, 0.3 * n) << n;
    EXPECT_LT(est.estimate, 3.0 * n + 2) << n;
  }
}

TEST(UnionEstimatorTest, SaturationFlaggedWhenLevelsTooFew) {
  SketchParams tiny = TestParams(/*levels=*/3);
  SketchBank bank(SketchFamily(tiny, 32, 23));
  bank.AddStream("A");
  for (int e = 0; e < 5000; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 16807 + 3, 1);
  }
  const UnionEstimate est = EstimateSetUnion(bank.Groups({"A"}), 0.5);
  EXPECT_TRUE(est.saturated);
  EXPECT_TRUE(est.ok);           // Still returns a (degraded) estimate.
  EXPECT_GT(est.estimate, 0.0);  // And a finite one.
  EXPECT_TRUE(std::isfinite(est.estimate));
}

// Accuracy improves with more copies (variance shrinks with r).
class UnionAccuracySweep : public ::testing::TestWithParam<int> {};

TEST_P(UnionAccuracySweep, MeanErrorShrinksWithCopies) {
  const int copies = GetParam();
  std::vector<double> errors;
  for (uint64_t trial = 0; trial < 8; ++trial) {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
    const PartitionedDataset data = gen.Generate(4096, 29 + trial * 101);
    const auto bank =
        BankFromDataset(data, copies, 31 + trial * 7 + copies);
    const UnionEstimate est =
        EstimateSetUnion(bank->Groups({"S0", "S1"}), 0.5);
    ASSERT_TRUE(est.ok);
    errors.push_back(RelativeError(
        est.estimate, static_cast<double>(data.UnionSize())));
  }
  // Calibrated ~1.6x the measured mean error at each r (which tracks the
  // theoretical 1/sqrt(r) decay: ~0.28, 0.23, 0.15, 0.10).
  const double bound =
      copies <= 64 ? 0.45 : copies <= 128 ? 0.40 : copies <= 256 ? 0.30
                                                                 : 0.22;
  EXPECT_LT(Mean(errors), bound) << "copies=" << copies;
}

INSTANTIATE_TEST_SUITE_P(CopySweep, UnionAccuracySweep,
                         ::testing::Values(64, 128, 256, 512));

}  // namespace
}  // namespace setsketch
