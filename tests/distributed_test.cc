// Tests for the distributed-streams model with stored coins: Site summary
// encoding, Coordinator merging, and the equivalence "distributed == one
// central observer" that counter linearity guarantees.

#include <gtest/gtest.h>

#include "distributed/coordinator.h"
#include "distributed/site.h"
#include "stream/stream_generator.h"
#include "util/stats.h"

namespace setsketch {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  return params;
}

constexpr int kCopies = 128;
constexpr uint64_t kMasterSeed = 20030609;  // Deployment-wide coins.

TEST(SiteTest, IngestRequiresDeclaredStream) {
  Site site("s1", TestParams(), 4, kMasterSeed);
  EXPECT_FALSE(site.Ingest("A", 1, 1));
  site.ObserveStream("A");
  EXPECT_TRUE(site.Ingest("A", 1, 1));
  EXPECT_EQ(site.updates_processed(), 1);
}

TEST(SiteTest, SummaryRoundTripsThroughCoordinator) {
  Site site("s1", TestParams(), 4, kMasterSeed);
  site.ObserveStream("A");
  for (int e = 0; e < 100; ++e) {
    site.Ingest("A", static_cast<uint64_t>(e) * 7919, 1);
  }
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto result = coordinator.AddSiteSummary(site.EncodeSummary());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.streams_merged, 1);
  const auto* sketches = coordinator.Sketches("A");
  ASSERT_NE(sketches, nullptr);
  EXPECT_EQ(sketches->size(), 4u);
  EXPECT_TRUE((*sketches)[0] == site.bank().Sketches("A")[0]);
}

TEST(CoordinatorTest, RejectsForeignCoins) {
  Site site("rogue", TestParams(), 4, /*master_seed=*/999);
  site.ObserveStream("A");
  site.Ingest("A", 1, 1);
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto result = coordinator.AddSiteSummary(site.EncodeSummary());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("foreign"), std::string::npos);
}

TEST(CoordinatorTest, RejectsWrongCopyCount) {
  Site site("s1", TestParams(), 8, kMasterSeed);
  site.ObserveStream("A");
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  EXPECT_FALSE(coordinator.AddSiteSummary(site.EncodeSummary()).ok);
}

TEST(CoordinatorTest, RejectsTruncatedAndTrailingBytes) {
  Site site("s1", TestParams(), 2, kMasterSeed);
  site.ObserveStream("A");
  site.Ingest("A", 42, 1);
  const std::string bytes = site.EncodeSummary();
  Coordinator coordinator(TestParams(), 2, kMasterSeed);
  EXPECT_FALSE(
      coordinator.AddSiteSummary(bytes.substr(0, bytes.size() - 4)).ok);
  EXPECT_FALSE(coordinator.AddSiteSummary(bytes + "xx").ok);
  EXPECT_FALSE(coordinator.AddSiteSummary("").ok);
  // A failed ingest merges nothing.
  EXPECT_EQ(coordinator.StreamNames().size(), 0u);
  // The pristine buffer still works.
  EXPECT_TRUE(coordinator.AddSiteSummary(bytes).ok);
}

// Core guarantee: sketches merged across sites equal the sketches a single
// central observer would have built from the full streams.
TEST(DistributedTest, MergedSketchesEqualCentralizedSketches) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.3));
  const PartitionedDataset data = gen.Generate(2048, 7);
  const std::vector<Update> updates = data.ToInsertUpdates(3);

  // Central observer sees everything.
  Site central("central", TestParams(), 8, kMasterSeed);
  central.ObserveStream("A");
  central.ObserveStream("B");

  // Three sites each see a third of the updates (round-robin split), for
  // both streams.
  std::vector<Site> sites;
  for (int i = 0; i < 3; ++i) {
    sites.emplace_back("site" + std::to_string(i), TestParams(), 8,
                       kMasterSeed);
    sites.back().ObserveStream("A");
    sites.back().ObserveStream("B");
  }
  const std::vector<std::string> names = {"A", "B"};
  for (size_t i = 0; i < updates.size(); ++i) {
    const Update& u = updates[i];
    central.Ingest(names[u.stream], u.element, u.delta);
    sites[i % 3].Ingest(names[u.stream], u.element, u.delta);
  }

  Coordinator coordinator(TestParams(), 8, kMasterSeed);
  for (const Site& site : sites) {
    ASSERT_TRUE(coordinator.AddSiteSummary(site.EncodeSummary()).ok);
  }
  for (const std::string& name : names) {
    const auto* merged = coordinator.Sketches(name);
    ASSERT_NE(merged, nullptr);
    const auto& reference = central.bank().Sketches(name);
    for (size_t i = 0; i < merged->size(); ++i) {
      EXPECT_TRUE((*merged)[i] == reference[i])
          << "stream " << name << " copy " << i;
    }
  }
}

TEST(DistributedTest, EndToEndExpressionEstimate) {
  VennPartitionGenerator gen(3, ExprDiffIntersectProbs(0.25));
  const PartitionedDataset data = gen.Generate(4096, 11);
  const std::vector<Update> updates = data.ToInsertUpdates(5);
  const std::vector<std::string> names = {"A", "B", "C"};

  std::vector<Site> sites;
  for (int i = 0; i < 4; ++i) {
    sites.emplace_back("site" + std::to_string(i), TestParams(), 256,
                       kMasterSeed);
    for (const auto& name : names) sites.back().ObserveStream(name);
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    const Update& u = updates[i];
    sites[i % 4].Ingest(names[u.stream], u.element, u.delta);
  }

  Coordinator coordinator(TestParams(), 256, kMasterSeed);
  for (const Site& site : sites) {
    ASSERT_TRUE(coordinator.AddSiteSummary(site.EncodeSummary()).ok);
  }
  const auto answer = coordinator.Estimate("(A - B) & C");
  ASSERT_TRUE(answer.ok) << answer.error;
  const int64_t exact = static_cast<int64_t>(data.regions[5].size());
  EXPECT_LT(RelativeError(answer.estimate, static_cast<double>(exact)),
            0.7);
}

TEST(SiteTest, CompactAndFixedSummariesDecodeIdentically) {
  Site site("s1", TestParams(), 16, kMasterSeed);
  site.ObserveStream("A");
  for (int e = 0; e < 500; ++e) {
    site.Ingest("A", static_cast<uint64_t>(e) * 31337 + 5, 1 + e % 2);
  }
  const std::string compact = site.EncodeSummary(/*compact=*/true);
  const std::string fixed = site.EncodeSummary(/*compact=*/false);
  EXPECT_LT(compact.size() * 2, fixed.size());

  Coordinator c1(TestParams(), 16, kMasterSeed);
  Coordinator c2(TestParams(), 16, kMasterSeed);
  ASSERT_TRUE(c1.AddSiteSummary(compact).ok);
  ASSERT_TRUE(c2.AddSiteSummary(fixed).ok);
  const auto* s1 = c1.Sketches("A");
  const auto* s2 = c2.Sketches("A");
  ASSERT_TRUE(s1 && s2);
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_TRUE((*s1)[i] == (*s2)[i]);
  }
}

TEST(CoordinatorTest, RetransmissionReplacesInsteadOfDoubleCounting) {
  Site site("s1", TestParams(), 64, kMasterSeed);
  site.ObserveStream("A");
  for (int e = 0; e < 1000; ++e) {
    site.Ingest("A", static_cast<uint64_t>(e) * 7919 + 1, 1);
  }
  Coordinator coordinator(TestParams(), 64, kMasterSeed);
  const auto first = coordinator.AddSiteSummary(site.EncodeSummary());
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.site, "s1");
  EXPECT_FALSE(first.replaced);
  // Copy: the merged view is a cache that later summaries rebuild.
  const std::vector<TwoLevelHashSketch> reference =
      *coordinator.Sketches("A");

  // The same cumulative summary arrives again (periodic collection):
  // the merged view must be unchanged, not doubled.
  const auto second = coordinator.AddSiteSummary(site.EncodeSummary());
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.replaced);
  EXPECT_TRUE((*coordinator.Sketches("A"))[0] == reference[0]);
  EXPECT_EQ(coordinator.SiteNames(),
            (std::vector<std::string>{"s1"}));

  // An *updated* cumulative summary supersedes the old one.
  site.Ingest("A", 999999, 1);
  ASSERT_TRUE(coordinator.AddSiteSummary(site.EncodeSummary()).ok);
  EXPECT_TRUE((*coordinator.Sketches("A"))[0] ==
              site.bank().Sketches("A")[0]);
}

TEST(CoordinatorTest, FailedRetransmissionKeepsPriorSummary) {
  Site site("s1", TestParams(), 8, kMasterSeed);
  site.ObserveStream("A");
  site.Ingest("A", 42, 1);
  Coordinator coordinator(TestParams(), 8, kMasterSeed);
  const std::string good = site.EncodeSummary();
  ASSERT_TRUE(coordinator.AddSiteSummary(good).ok);
  ASSERT_FALSE(
      coordinator.AddSiteSummary(good.substr(0, good.size() - 3)).ok);
  // The first summary is still in force.
  ASSERT_NE(coordinator.Sketches("A"), nullptr);
  EXPECT_TRUE((*coordinator.Sketches("A"))[0] ==
              site.bank().Sketches("A")[0]);
}

TEST(CoordinatorTest, EstimateErrorsAreInformative) {
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto bad_parse = coordinator.Estimate("A &");
  EXPECT_FALSE(bad_parse.ok);
  EXPECT_NE(bad_parse.error.find("parse error"), std::string::npos);
  const auto unknown = coordinator.Estimate("A & B");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown stream"), std::string::npos);
}

TEST(CoordinatorTest, TruncationSweepMergesNothing) {
  // Cutting the summary at *any* byte boundary must fail atomically:
  // no site registered, no stream merged, no partial sketch state.
  Site site("s1", TestParams(), 4, kMasterSeed);
  site.ObserveStream("A");
  site.ObserveStream("B");
  for (int e = 0; e < 200; ++e) {
    site.Ingest(e % 2 == 0 ? "A" : "B", static_cast<uint64_t>(e) * 31 + 7,
                1);
  }
  const std::string bytes = site.EncodeSummary();
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    const auto result = coordinator.AddSiteSummary(bytes.substr(0, cut));
    ASSERT_FALSE(result.ok) << "cut at " << cut;
    ASSERT_FALSE(result.error.empty()) << "cut at " << cut;
  }
  EXPECT_TRUE(coordinator.SiteNames().empty());
  EXPECT_TRUE(coordinator.StreamNames().empty());
  EXPECT_TRUE(coordinator.AddSiteSummary(bytes).ok);
}

TEST(CoordinatorTest, EmptySummaryIsAcceptedAndReplacesWholesale) {
  // A site that has observed no streams yet sends a legal, empty summary.
  Site idle("s1", TestParams(), 4, kMasterSeed);
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto first = coordinator.AddSiteSummary(idle.EncodeSummary());
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.streams_merged, 0);
  EXPECT_FALSE(first.replaced);
  EXPECT_EQ(coordinator.SiteNames(), (std::vector<std::string>{"s1"}));

  // Later the same site (same name — replacement is keyed by it) reports
  // actual data...
  Site active("s1", TestParams(), 4, kMasterSeed);
  active.ObserveStream("A");
  active.Ingest("A", 42, 1);
  ASSERT_TRUE(coordinator.AddSiteSummary(active.EncodeSummary()).ok);
  ASSERT_NE(coordinator.Sketches("A"), nullptr);

  // ...and an empty retransmission (a site reset) wipes its contribution
  // instead of leaving stale sketches behind.
  const auto reset = coordinator.AddSiteSummary(idle.EncodeSummary());
  ASSERT_TRUE(reset.ok) << reset.error;
  EXPECT_TRUE(reset.replaced);
  EXPECT_EQ(coordinator.Sketches("A"), nullptr);
}

TEST(CoordinatorTest, RetransmissionWithAddedStreamReplacesWholesale) {
  Site site("s1", TestParams(), 8, kMasterSeed);
  site.ObserveStream("A");
  for (int e = 0; e < 300; ++e) {
    site.Ingest("A", static_cast<uint64_t>(e) * 101 + 3, 1);
  }
  Coordinator coordinator(TestParams(), 8, kMasterSeed);
  ASSERT_TRUE(coordinator.AddSiteSummary(site.EncodeSummary()).ok);

  // The site later starts observing B and keeps ingesting A, then ships
  // its next cumulative summary.
  site.ObserveStream("B");
  for (int e = 0; e < 300; ++e) {
    site.Ingest("A", static_cast<uint64_t>(e) * 7919 + 11, 1);
    site.Ingest("B", static_cast<uint64_t>(e) * 6007 + 13, 1);
  }
  const auto second = coordinator.AddSiteSummary(site.EncodeSummary());
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.replaced);
  EXPECT_EQ(second.streams_merged, 2);
  // A reflects the latest cumulative state — not first + second summed.
  ASSERT_NE(coordinator.Sketches("A"), nullptr);
  EXPECT_TRUE((*coordinator.Sketches("A"))[0] ==
              site.bank().Sketches("A")[0]);
  ASSERT_NE(coordinator.Sketches("B"), nullptr);
  EXPECT_TRUE((*coordinator.Sketches("B"))[0] ==
              site.bank().Sketches("B")[0]);
}

TEST(CoordinatorTest, MismatchedSketchParamsAreRejected) {
  // Same master seed and copy count, but the site draws differently
  // shaped sketches (fewer levels) — its coins cannot match.
  SketchParams narrow = TestParams();
  narrow.levels = 16;
  Site site("s1", narrow, 4, kMasterSeed);
  site.ObserveStream("A");
  site.Ingest("A", 1, 1);
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto result = coordinator.AddSiteSummary(site.EncodeSummary());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(CoordinatorTest, HugeDeclaredLengthFailsFast) {
  // A summary declaring a ~4 GiB site name must be rejected by bounds
  // checks, not by attempting the allocation.
  std::string hostile;
  const uint32_t absurd = 0xFFFFFFFFu;
  hostile.append(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  hostile += "abc";
  Coordinator coordinator(TestParams(), 4, kMasterSeed);
  const auto result = coordinator.AddSiteSummary(hostile);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("truncated"), std::string::npos);
}

TEST(DistributedTest, SitesCanCoverDisjointStreams) {
  // Site 1 only observes A, site 2 only observes B; the coordinator can
  // still answer cross-stream queries.
  Site s1("s1", TestParams(), 192, kMasterSeed);
  Site s2("s2", TestParams(), 192, kMasterSeed);
  s1.ObserveStream("A");
  s2.ObserveStream("B");
  for (int e = 0; e < 2000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u;
    s1.Ingest("A", elem, 1);
    if (e % 2 == 0) s2.Ingest("B", elem, 1);
  }
  Coordinator coordinator(TestParams(), 192, kMasterSeed);
  ASSERT_TRUE(coordinator.AddSiteSummary(s1.EncodeSummary()).ok);
  ASSERT_TRUE(coordinator.AddSiteSummary(s2.EncodeSummary()).ok);
  const auto answer = coordinator.Estimate("A & B");
  ASSERT_TRUE(answer.ok);
  EXPECT_LT(RelativeError(answer.estimate, 1000), 0.6);
}

}  // namespace
}  // namespace setsketch
