// Tests for pooled multi-level witness sampling
// (WitnessOptions::pool_all_levels): unbiasedness sanity, variance
// dominance over the strict Figure 6 estimator, and agreement between the
// binary and general-expression pooled paths.

#include <memory>

#include <gtest/gtest.h>

#include "core/set_difference_estimator.h"
#include "core/set_expression_estimator.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "expr/parser.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

TEST(PooledWitnessTest, CollectsManyMoreObservations) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 3);
  const auto bank = BankFromDataset(data, 256, 5);
  const auto pairs = bank->Groups({"S0", "S1"});
  const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
  ASSERT_TRUE(ue.ok);

  WitnessOptions strict;
  WitnessOptions pooled;
  pooled.pool_all_levels = true;
  const WitnessEstimate strict_est =
      EstimateSetIntersection(pairs, ue.estimate, strict);
  const WitnessEstimate pooled_est =
      EstimateSetIntersection(pairs, ue.estimate, pooled);
  ASSERT_TRUE(pooled_est.ok);
  // Pooling harvests ~1.4 observations per copy vs ~0.1 for strict.
  EXPECT_GT(pooled_est.valid_observations,
            4 * std::max(1, strict_est.valid_observations));
  EXPECT_GT(pooled_est.valid_observations, 200);
}

TEST(PooledWitnessTest, IntersectionAccuracyTightens) {
  // Average over several trials: pooled error should be clearly below
  // strict error at the same (modest) number of copies.
  std::vector<double> strict_errors, pooled_errors;
  for (uint64_t t = 0; t < 5; ++t) {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
    const PartitionedDataset data = gen.Generate(8192, 100 + t * 13);
    const auto bank = BankFromDataset(data, 128, 200 + t * 17);
    const auto pairs = bank->Groups({"S0", "S1"});
    const double exact = static_cast<double>(data.regions[3].size());
    const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
    ASSERT_TRUE(ue.ok);

    WitnessOptions strict;
    WitnessOptions pooled;
    pooled.pool_all_levels = true;
    const WitnessEstimate s =
        EstimateSetIntersection(pairs, ue.estimate, strict);
    const WitnessEstimate p =
        EstimateSetIntersection(pairs, ue.estimate, pooled);
    strict_errors.push_back(s.ok ? RelativeError(s.estimate, exact) : 1.0);
    pooled_errors.push_back(p.ok ? RelativeError(p.estimate, exact) : 1.0);
  }
  EXPECT_LT(Mean(pooled_errors), Mean(strict_errors));
  EXPECT_LT(Mean(pooled_errors), 0.3);
}

TEST(PooledWitnessTest, DifferenceAccuracy) {
  VennPartitionGenerator gen(2, BinaryDifferenceProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 7);
  const auto bank = BankFromDataset(data, 256, 9);
  const auto pairs = bank->Groups({"S0", "S1"});
  const double exact = static_cast<double>(data.regions[1].size());
  const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
  WitnessOptions pooled;
  pooled.pool_all_levels = true;
  const WitnessEstimate est =
      EstimateSetDifference(pairs, ue.estimate, pooled);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, exact), 0.3);
}

TEST(PooledWitnessTest, ExpressionMatchesBinaryCounts) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(4096, 11);
  const auto bank = BankFromDataset(data, 128, 13);
  const auto pairs = bank->Groups({"S0", "S1"});
  const ParseResult parsed = ParseExpression("S0 & S1");
  ASSERT_TRUE(parsed.ok());

  WitnessOptions pooled;
  pooled.pool_all_levels = true;
  const ExpressionEstimate expr_est = EstimateSetExpression(
      *parsed.expression, {"S0", "S1"}, pairs, pooled);
  ASSERT_TRUE(expr_est.ok);
  const WitnessEstimate bin_est = EstimateSetIntersection(
      pairs, expr_est.union_part.estimate, pooled);
  ASSERT_TRUE(bin_est.ok);
  EXPECT_EQ(expr_est.expression.valid_observations,
            bin_est.valid_observations);
  EXPECT_EQ(expr_est.expression.witnesses, bin_est.witnesses);
}

TEST(PooledWitnessTest, ZeroAndFullResultsStayExact) {
  // Disjoint streams: pooled intersection estimate must still be 0;
  // identical streams: witness fraction must still be 1.
  {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.0));
    const auto bank = BankFromDataset(gen.Generate(2048, 17), 128, 19);
    const auto pairs = bank->Groups({"S0", "S1"});
    const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
    WitnessOptions pooled;
    pooled.pool_all_levels = true;
    const WitnessEstimate est =
        EstimateSetIntersection(pairs, ue.estimate, pooled);
    ASSERT_TRUE(est.ok);
    EXPECT_DOUBLE_EQ(est.estimate, 0.0);
  }
  {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(1.0));
    const auto bank = BankFromDataset(gen.Generate(2048, 21), 128, 23);
    const auto pairs = bank->Groups({"S0", "S1"});
    const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
    WitnessOptions pooled;
    pooled.pool_all_levels = true;
    const WitnessEstimate est =
        EstimateSetIntersection(pairs, ue.estimate, pooled);
    ASSERT_TRUE(est.ok);
    EXPECT_DOUBLE_EQ(est.WitnessFraction(), 1.0);
  }
}

}  // namespace
}  // namespace setsketch
