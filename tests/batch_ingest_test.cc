// Randomized equivalence suite for the bit-sliced / batched ingest
// kernels: the SecondLevelSlice transpose must produce exactly the bits
// of the per-function scalar family (same GF(2) functions, different
// evaluation order), and every batched route — UpdateBatch, ApplyBatch,
// the grouped ParallelIngest/server unit — must be bit-identical to the
// serial per-update loops, including the s > 64 scalar fallback. Also
// pins the nonzero-cell-count invariant behind the O(1) Empty().

#include <algorithm>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sketch_bank.h"
#include "core/sketch_seed.h"
#include "core/two_level_hash_sketch.h"
#include "hash/prng.h"
#include "stream/update.h"

namespace setsketch {
namespace {

// Edge s values around the 64-bit slice width, plus the fallback.
const int kSweepS[] = {1, 31, 32, 33, 63, 64};
constexpr int kFallbackS = 65;

SketchParams ParamsWithS(int s, FirstLevelKind kind = FirstLevelKind::kMix64) {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = s;
  params.first_level_kind = kind;
  params.independence = 4;
  return params;
}

/// Mixed +/- update batch over a small element universe so deletions hit
/// previously inserted elements (exercising 0 -> nonzero -> 0 cells).
std::vector<ElementDelta> RandomItems(size_t n, uint64_t seed) {
  SplitMix64 sm(seed);
  std::vector<ElementDelta> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t element = sm.Next() % 512;
    const int64_t delta = (sm.Next() & 1) ? 1 : -1;
    items.push_back(ElementDelta{element, delta});
  }
  return items;
}

int64_t BruteForceNonzero(const TwoLevelHashSketch& sketch) {
  int64_t nonzero = 0;
  for (int level = 0; level < sketch.levels(); ++level) {
    for (int j = 0; j < sketch.num_second_level(); ++j) {
      for (int bit = 0; bit < 2; ++bit) {
        nonzero += sketch.Count(level, j, bit) != 0;
      }
    }
  }
  return nonzero;
}

TEST(SecondLevelSliceTest, BitsMatchScalarFamilyAcrossS) {
  for (int s : kSweepS) {
    const SketchSeed seed(ParamsWithS(s), 0x5EEDF00DULL + s);
    const SecondLevelSlice* slice = seed.slice();
    ASSERT_NE(slice, nullptr) << "s=" << s;
    SplitMix64 sm(99);
    for (int trial = 0; trial < 500; ++trial) {
      // Mix raw random words with sparse/dense edge patterns.
      uint64_t x = sm.Next();
      if (trial % 5 == 1) x = 0;
      if (trial % 5 == 2) x = ~0ULL;
      if (trial % 5 == 3) x = 1ULL << (trial % 64);
      const uint64_t bits = slice->Bits(x);
      for (int j = 0; j < s; ++j) {
        ASSERT_EQ((bits >> j) & 1,
                  static_cast<uint64_t>(seed.second_level(j)(x)))
            << "s=" << s << " j=" << j << " x=" << x;
      }
      // Unused high bits must stay clear so masks are comparable.
      if (s < 64) {
        ASSERT_EQ(bits >> s, 0u) << "s=" << s << " x=" << x;
      }
    }
  }
}

TEST(SecondLevelSliceTest, FallbackAboveSliceWidthHasNoSlice) {
  const SketchSeed seed(ParamsWithS(kFallbackS), 77);
  EXPECT_EQ(seed.slice(), nullptr);
}

TEST(BatchIngestTest, SlicedUpdateMatchesScalarBothFamilies) {
  for (FirstLevelKind kind :
       {FirstLevelKind::kMix64, FirstLevelKind::kKWisePoly}) {
    for (int s : kSweepS) {
      const auto seed = std::make_shared<const SketchSeed>(
          ParamsWithS(s, kind), 4242 + s);
      TwoLevelHashSketch sliced(seed);
      TwoLevelHashSketch scalar(seed);
      for (const ElementDelta& u : RandomItems(2000, 11 + s)) {
        sliced.Update(u.element, u.delta);
        scalar.UpdateScalar(u.element, u.delta);
      }
      EXPECT_EQ(sliced, scalar) << "kind=" << static_cast<int>(kind)
                                << " s=" << s;
      EXPECT_EQ(sliced.NonzeroCells(), scalar.NonzeroCells());
    }
  }
}

TEST(BatchIngestTest, UpdateBatchMatchesSerialLoopIncludingFallback) {
  std::vector<int> sweep(std::begin(kSweepS), std::end(kSweepS));
  sweep.push_back(kFallbackS);  // s > 64: UpdateBatch takes the scalar path.
  for (int s : sweep) {
    const auto seed =
        std::make_shared<const SketchSeed>(ParamsWithS(s), 31337 + s);
    TwoLevelHashSketch batched(seed);
    TwoLevelHashSketch serial(seed);
    const std::vector<ElementDelta> items = RandomItems(3000, 23 + s);
    batched.UpdateBatch(items);
    for (const ElementDelta& u : items) serial.Update(u.element, u.delta);
    EXPECT_EQ(batched, serial) << "s=" << s;
    EXPECT_EQ(batched.NonzeroCells(), BruteForceNonzero(batched))
        << "s=" << s;
  }
}

TEST(BatchIngestTest, BankApplyBatchMatchesSerialApply) {
  const std::vector<std::string> names = {"A", "B", "C"};
  SketchBank batched(SketchFamily(ParamsWithS(16), 8, 5));
  SketchBank serial(SketchFamily(ParamsWithS(16), 8, 5));
  for (const std::string& name : names) {
    batched.AddStream(name);
    serial.AddStream(name);
  }
  // Mixed batch over 3 streams plus updates addressing an unknown id.
  SplitMix64 sm(71);
  std::vector<Update> updates;
  for (int i = 0; i < 4000; ++i) {
    updates.push_back(Update{static_cast<StreamId>(sm.Next() % 4),
                             sm.Next() % 300,
                             (sm.Next() & 1) ? int64_t{1} : int64_t{-1}});
  }
  const size_t expected_known =
      static_cast<size_t>(std::count_if(updates.begin(), updates.end(),
                                        [](const Update& u) {
                                          return u.stream < 3;
                                        }));
  EXPECT_EQ(batched.ApplyBatch(names, updates), expected_known);
  for (const Update& u : updates) {
    if (u.stream < 3) {
      serial.Apply(names[u.stream], u.element, u.delta);
    }
  }
  for (const std::string& name : names) {
    const auto& a = batched.Sketches(name);
    const auto& b = serial.Sketches(name);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << name << " copy " << i;
    }
  }
}

TEST(BatchIngestTest, GroupUpdatesPreservesOrderAndSkipsUnknown) {
  SketchBank bank(SketchFamily(ParamsWithS(8), 2, 9));
  bank.AddStream("A");
  bank.AddStream("B");
  const std::vector<Update> updates = {
      {1, 10, 1}, {0, 20, 1}, {1, 30, -1}, {2, 40, 1}, {0, 50, 2}};
  size_t applied = 0;
  const std::vector<StreamBatch> groups =
      bank.GroupUpdates({"A", "B", "missing"}, updates, &applied);
  EXPECT_EQ(applied, 4u);  // Stream id 2 resolves to an unknown name.
  ASSERT_EQ(groups.size(), 2u);
  // Groups in order of first appearance: B first, then A.
  EXPECT_EQ(groups[0].column, bank.MutableSketches("B"));
  EXPECT_EQ(groups[0].items,
            (std::vector<ElementDelta>{{10, 1}, {30, -1}}));
  EXPECT_EQ(groups[1].column, bank.MutableSketches("A"));
  EXPECT_EQ(groups[1].items,
            (std::vector<ElementDelta>{{20, 1}, {50, 2}}));
}

TEST(NonzeroCellsTest, EmptyIsO1AndTracksCancellations) {
  const auto seed = std::make_shared<const SketchSeed>(ParamsWithS(32), 3);
  TwoLevelHashSketch sketch(seed);
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.NonzeroCells(), 0);

  const std::vector<ElementDelta> items = RandomItems(500, 13);
  sketch.UpdateBatch(items);
  EXPECT_EQ(sketch.NonzeroCells(), BruteForceNonzero(sketch));

  // Applying the exact inverse cancels every counter: back to Empty.
  for (const ElementDelta& u : items) sketch.Update(u.element, -u.delta);
  EXPECT_EQ(sketch.NonzeroCells(), 0);
  EXPECT_TRUE(sketch.Empty());

  sketch.Update(7, 1);
  EXPECT_FALSE(sketch.Empty());
  sketch.Clear();
  EXPECT_TRUE(sketch.Empty());
  EXPECT_EQ(sketch.NonzeroCells(), 0);
}

TEST(NonzeroCellsTest, MergeTracksTransitions) {
  const auto seed = std::make_shared<const SketchSeed>(ParamsWithS(16), 21);
  TwoLevelHashSketch a(seed);
  TwoLevelHashSketch b(seed);
  const std::vector<ElementDelta> items = RandomItems(400, 17);
  a.UpdateBatch(items);
  // b = -a, so merging cancels everything.
  for (const ElementDelta& u : items) b.Update(u.element, -u.delta);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_TRUE(a.Empty());
  EXPECT_EQ(a.NonzeroCells(), 0);

  // Merging disjoint content sums and stays consistent.
  TwoLevelHashSketch c(seed);
  c.Update(1001, 1);
  ASSERT_TRUE(a.Merge(c));
  EXPECT_FALSE(a.Empty());
  EXPECT_EQ(a.NonzeroCells(), BruteForceNonzero(a));
}

TEST(NonzeroCellsTest, SerializationRoundTripRestoresInvariant) {
  const auto seed = std::make_shared<const SketchSeed>(ParamsWithS(32), 37);
  TwoLevelHashSketch sketch(seed);
  sketch.UpdateBatch(RandomItems(800, 29));
  const int64_t expected = BruteForceNonzero(sketch);
  ASSERT_EQ(sketch.NonzeroCells(), expected);

  for (const bool compact : {false, true}) {
    std::string buffer;
    if (compact) {
      sketch.SerializeCompactTo(&buffer);
    } else {
      sketch.SerializeTo(&buffer);
    }
    size_t offset = 0;
    const auto decoded = TwoLevelHashSketch::Deserialize(buffer, &offset);
    ASSERT_NE(decoded, nullptr) << "compact=" << compact;
    EXPECT_EQ(offset, buffer.size());
    EXPECT_EQ(*decoded, sketch);
    EXPECT_EQ(decoded->NonzeroCells(), expected) << "compact=" << compact;
    EXPECT_FALSE(decoded->Empty());
  }

  // An empty sketch round-trips to Empty() in both encodings.
  TwoLevelHashSketch empty(seed);
  for (const bool compact : {false, true}) {
    std::string buffer;
    if (compact) {
      empty.SerializeCompactTo(&buffer);
    } else {
      empty.SerializeTo(&buffer);
    }
    size_t offset = 0;
    const auto decoded = TwoLevelHashSketch::Deserialize(buffer, &offset);
    ASSERT_NE(decoded, nullptr);
    EXPECT_TRUE(decoded->Empty()) << "compact=" << compact;
    EXPECT_EQ(decoded->NonzeroCells(), 0);
  }
}

}  // namespace
}  // namespace setsketch
