// Tests for utility helpers: statistics, CSV, table printing, flags.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// Stats

TEST(StatsTest, RelativeErrorBasics) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(RelativeError(1, 0)));
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), 2.0, 1e-12);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.125), 5.0);
}

TEST(StatsTest, TrimmedMeanDropsHighest) {
  // 10 values; trimming 30% drops the top 3.
  const std::vector<double> v = {1, 1, 1, 1, 1, 1, 1, 100, 100, 100};
  EXPECT_DOUBLE_EQ(TrimmedMeanDropHighest(v, 0.3), 1.0);
  // No trim = plain mean.
  EXPECT_NEAR(TrimmedMeanDropHighest(v, 0.0), 30.7, 1e-9);
}

TEST(StatsTest, TrimmedMeanKeepsAtLeastOne) {
  EXPECT_DOUBLE_EQ(TrimmedMeanDropHighest({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(TrimmedMeanDropHighest({}, 0.3), 0.0);
}

TEST(StatsTest, TrimmedMeanMatchesPaperUsage) {
  // The paper trims 30% of the highest relative errors from 10-15 trials.
  std::vector<double> errors = {0.05, 0.07, 0.04, 0.06, 0.05,
                                0.9,  0.08, 0.05, 0.07, 0.06};
  const double trimmed = TrimmedMeanDropHighest(errors, 0.3);
  EXPECT_LT(trimmed, 0.1);  // The 0.9 outlier must be gone.
}

// ---------------------------------------------------------------------------
// CSV

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.AddRow(std::vector<std::string>{"1", "x"});
    csv.AddRow(std::vector<double>{2.5, 3.0});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,x");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "2.5,3");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathReportsNotOk) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(csv.ok());
}

// ---------------------------------------------------------------------------
// TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow(std::vector<std::string>{"x", "1"});
  table.AddRow(std::vector<std::string>{"longer_name", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer_name"), std::string::npos);
  // Separator row present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  TablePrinter table({"v"});
  table.AddRow(std::vector<double>{1.23456}, 3);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("1.235"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flags

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name", "hello",
                        "--verbose"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0), 1.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, DefaultsApplyWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--n=notanumber"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, PositionalArgumentIsError) {
  const char* argv[] = {"prog", "oops"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("oops"), std::string::npos);
}

TEST(FlagsTest, EnvHelpersReadVariables) {
  setenv("SETSKETCH_TEST_ENV_D", "0.75", 1);
  setenv("SETSKETCH_TEST_ENV_I", "123", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("SETSKETCH_TEST_ENV_D", 0), 0.75);
  EXPECT_EQ(EnvInt("SETSKETCH_TEST_ENV_I", 0), 123);
  EXPECT_DOUBLE_EQ(EnvDouble("SETSKETCH_TEST_ENV_MISSING", 1.5), 1.5);
  setenv("SETSKETCH_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("SETSKETCH_TEST_ENV_D", 9.0), 9.0);
  unsetenv("SETSKETCH_TEST_ENV_D");
  unsetenv("SETSKETCH_TEST_ENV_I");
}

}  // namespace
}  // namespace setsketch
