// Tests for the all-levels maximum-likelihood union estimator (extension
// beyond the paper; see EstimateSetUnionMle).

#include <gtest/gtest.h>

#include "core/set_expression_estimator.h"
#include "core/set_union_estimator.h"
#include "expr/parser.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

TEST(MleUnionTest, RejectsBadInputsLikeFigure5) {
  EXPECT_FALSE(EstimateSetUnionMle({}, 0.5).ok);
}

TEST(MleUnionTest, EmptyStreamsGiveZero) {
  SketchBank bank(SketchFamily(TestParams(), 16, 1));
  bank.AddStream("A");
  const UnionEstimate est = EstimateSetUnionMle(bank.Groups({"A"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
}

TEST(MleUnionTest, SingleTrialAccuracy) {
  VennPartitionGenerator gen(1, {0.0, 1.0});
  const PartitionedDataset data = gen.Generate(8192, 3);
  const auto bank = BankFromDataset(data, 128, 5);
  const UnionEstimate est = EstimateSetUnionMle(bank->Groups({"S0"}), 0.5);
  ASSERT_TRUE(est.ok);
  // MLE at r = 128 has ~4% mean error; 15% is a generous envelope.
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.UnionSize())),
            0.15);
}

TEST(MleUnionTest, DominatesFigure5OnAverage) {
  std::vector<double> fig5_errors, mle_errors;
  for (uint64_t t = 0; t < 8; ++t) {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
    const PartitionedDataset data = gen.Generate(4096, 700 + t * 3);
    const auto bank = BankFromDataset(data, 128, 800 + t * 7);
    const auto groups = bank->Groups({"S0", "S1"});
    const double exact = static_cast<double>(data.UnionSize());
    fig5_errors.push_back(
        RelativeError(EstimateSetUnion(groups, 0.5).estimate, exact));
    mle_errors.push_back(
        RelativeError(EstimateSetUnionMle(groups, 0.5).estimate, exact));
  }
  EXPECT_LT(Mean(mle_errors), Mean(fig5_errors));
  EXPECT_LT(Mean(mle_errors), 0.1);
}

TEST(MleUnionTest, TracksDeletions) {
  SketchBank bank(SketchFamily(TestParams(), 128, 9));
  bank.AddStream("A");
  const int n = 4000;
  for (int e = 0; e < n; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 31337 + 1, 1);
  }
  for (int e = 0; e < n; e += 2) {
    bank.Apply("A", static_cast<uint64_t>(e) * 31337 + 1, -1);
  }
  const UnionEstimate est = EstimateSetUnionMle(bank.Groups({"A"}), 0.5);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, n / 2.0), 0.15);
}

TEST(MleUnionTest, SmallSetsStayCalibrated) {
  for (int n : {1, 3, 10, 50}) {
    SketchBank bank(SketchFamily(TestParams(), 128, 100 + n));
    bank.AddStream("A");
    for (int e = 0; e < n; ++e) {
      bank.Apply("A", static_cast<uint64_t>(e) * 48271 + 7, 1);
    }
    const UnionEstimate est = EstimateSetUnionMle(bank.Groups({"A"}), 0.5);
    ASSERT_TRUE(est.ok) << n;
    EXPECT_GT(est.estimate, 0.5 * n) << n;
    EXPECT_LT(est.estimate, 2.0 * n + 2) << n;
  }
}

TEST(MleUnionTest, ExpressionEstimatorCanUseIt) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 11);
  const auto bank = BankFromDataset(data, 192, 13);
  const ParseResult parsed = ParseExpression("S0 & S1");
  ASSERT_TRUE(parsed.ok());

  WitnessOptions options;
  options.pool_all_levels = true;
  options.mle_union = true;
  const ExpressionEstimate est =
      EstimateSetExpression(*parsed.expression, *bank, options);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(
      RelativeError(est.union_part.estimate,
                    static_cast<double>(data.UnionSize())),
      0.15);
  EXPECT_LT(RelativeError(est.expression.estimate,
                          static_cast<double>(data.regions[3].size())),
            0.4);
}

}  // namespace
}  // namespace setsketch
