// Tests for the cluster placement layer (cluster/hash_ring.h): seed
// determinism, load balance across virtual nodes, minimal key movement
// on membership changes, and the static-placement fallback.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"

namespace setsketch {
namespace {

std::vector<std::string> NodeNames(int count) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    names.push_back("shard-" + std::to_string(i));
  }
  return names;
}

std::vector<std::string> Keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back("stream_" + std::to_string(i * 2654435761ULL));
  }
  return keys;
}

HashRing MakeRing(uint64_t seed, int nodes, int virtual_nodes = 64) {
  HashRing ring(seed, virtual_nodes);
  for (const std::string& name : NodeNames(nodes)) ring.AddNode(name);
  return ring;
}

TEST(HashRingTest, EmptyRingHasNoTargets) {
  HashRing ring(7);
  EXPECT_TRUE(ring.Targets("A", 2).empty());
  EXPECT_EQ(ring.Owner("A"), "");
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring(7);
  ring.AddNode("only");
  for (const std::string& key : Keys(50)) {
    EXPECT_EQ(ring.Owner(key), "only");
    // Asking for more replicas than nodes returns each node once.
    EXPECT_EQ(ring.Targets(key, 3),
              std::vector<std::string>({"only"}));
  }
}

TEST(HashRingTest, TargetsAreDistinctAndOwnerFirst) {
  const HashRing ring = MakeRing(7, 5);
  for (const std::string& key : Keys(200)) {
    const std::vector<std::string> targets = ring.Targets(key, 3);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0], ring.Owner(key));
    EXPECT_NE(targets[0], targets[1]);
    EXPECT_NE(targets[0], targets[2]);
    EXPECT_NE(targets[1], targets[2]);
  }
}

TEST(HashRingTest, SameSeedSameLayoutAcrossInstances) {
  // Placement must be a pure function of (seed, members, virtual_nodes):
  // independently constructed rings agree on every key, which is what
  // lets any router replica compute placement without coordination.
  const HashRing a = MakeRing(42, 4);
  const HashRing b = MakeRing(42, 4);
  for (const std::string& key : Keys(300)) {
    EXPECT_EQ(a.Targets(key, 2), b.Targets(key, 2)) << key;
  }
}

TEST(HashRingTest, DifferentSeedsProduceDifferentLayouts) {
  const HashRing a = MakeRing(1, 4);
  const HashRing b = MakeRing(2, 4);
  int moved = 0;
  const std::vector<std::string> keys = Keys(300);
  for (const std::string& key : keys) {
    if (a.Owner(key) != b.Owner(key)) ++moved;
  }
  // With 4 nodes, ~3/4 of keys should land elsewhere under a fresh seed.
  EXPECT_GT(moved, static_cast<int>(keys.size()) / 2);
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  const int kNodes = 5;
  const int kKeys = 5000;
  const HashRing ring = MakeRing(7, kNodes, /*virtual_nodes=*/128);
  std::map<std::string, int> load;
  for (const std::string& key : Keys(kKeys)) ++load[ring.Owner(key)];
  ASSERT_EQ(load.size(), static_cast<size_t>(kNodes));
  const double expected = static_cast<double>(kKeys) / kNodes;
  for (const auto& [node, count] : load) {
    // 128 virtual nodes keep every shard within 2x of the fair share.
    EXPECT_GT(count, expected * 0.5) << node;
    EXPECT_LT(count, expected * 2.0) << node;
  }
}

TEST(HashRingTest, RemovingNodeMovesOnlyItsKeys) {
  // The consistent-hashing contract: keys not owned by the removed node
  // must not move at all.
  HashRing ring = MakeRing(7, 5);
  const std::vector<std::string> keys = Keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.Owner(key);

  ASSERT_TRUE(ring.RemoveNode("shard-2"));
  for (const std::string& key : keys) {
    if (before[key] == "shard-2") {
      EXPECT_NE(ring.Owner(key), "shard-2") << key;
    } else {
      EXPECT_EQ(ring.Owner(key), before[key]) << key;
    }
  }
}

TEST(HashRingTest, AddingNodeStealsRoughlyFairShareAndNothingElse) {
  HashRing ring = MakeRing(7, 5, /*virtual_nodes=*/128);
  const std::vector<std::string> keys = Keys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.Owner(key);

  ring.AddNode("shard-new");
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string owner = ring.Owner(key);
    if (owner == before[key]) continue;
    // Every moved key must have moved TO the new node.
    EXPECT_EQ(owner, "shard-new") << key;
    ++moved;
  }
  // The new node should steal about 1/6 of the keyspace; allow 2.5x.
  const double fair = static_cast<double>(keys.size()) / 6.0;
  EXPECT_GT(moved, static_cast<int>(fair * 0.4));
  EXPECT_LT(moved, static_cast<int>(fair * 2.5));
}

TEST(HashRingTest, RemoveUnknownNodeIsRejected) {
  HashRing ring = MakeRing(7, 3);
  EXPECT_FALSE(ring.RemoveNode("no-such-shard"));
  EXPECT_EQ(ring.num_nodes(), 3u);
  // Double-add is a no-op, not a duplicate membership.
  ring.AddNode("shard-0");
  EXPECT_EQ(ring.num_nodes(), 3u);
}

TEST(PlacementTest, StaticModeCoversAllNodesAndIsDeterministic) {
  const std::vector<std::string> nodes = NodeNames(4);
  const Placement a(Placement::Mode::kStatic, nodes, 7, 64);
  const Placement b(Placement::Mode::kStatic, nodes, 7, 64);
  std::map<std::string, int> load;
  for (const std::string& key : Keys(2000)) {
    const std::vector<std::string> targets = a.Targets(key, 2);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets, b.Targets(key, 2)) << key;
    EXPECT_NE(targets[0], targets[1]);
    ++load[targets[0]];
  }
  EXPECT_EQ(load.size(), 4u);  // Modulo placement touches every node.
}

TEST(PlacementTest, RingModeMatchesBareRing) {
  const std::vector<std::string> nodes = NodeNames(4);
  const Placement placement(Placement::Mode::kRing, nodes, 7, 64);
  const HashRing ring = MakeRing(7, 4);
  for (const std::string& key : Keys(200)) {
    EXPECT_EQ(placement.Targets(key, 2), ring.Targets(key, 2)) << key;
  }
}

}  // namespace
}  // namespace setsketch
