// Tests for the set-expression AST, the text parser, and the exact
// evaluator.

#include <gtest/gtest.h>

#include "expr/exact_evaluator.h"
#include "expr/expression.h"
#include "expr/parser.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// AST construction and rendering

TEST(ExpressionTest, LeafProperties) {
  const ExprPtr a = Expression::Stream("A");
  EXPECT_EQ(a->kind(), Expression::Kind::kStream);
  EXPECT_EQ(a->name(), "A");
  EXPECT_EQ(a->NodeCount(), 1);
  EXPECT_EQ(a->ToString(), "A");
}

TEST(ExpressionTest, ConnectivesRender) {
  const ExprPtr a = Expression::Stream("A");
  const ExprPtr b = Expression::Stream("B");
  const ExprPtr c = Expression::Stream("C");
  const ExprPtr e =
      Expression::Intersect(Expression::Difference(a, b), c);
  EXPECT_EQ(e->ToString(), "((A - B) & C)");
  EXPECT_EQ(e->NodeCount(), 5);
  EXPECT_EQ(Expression::Union(a, b)->ToString(), "(A | B)");
}

TEST(ExpressionTest, StreamNamesDeDupInOrder) {
  const ParseResult p = ParseExpression("(A - B) & (C | A) & B");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->StreamNames(),
            (std::vector<std::string>{"A", "B", "C"}));
}

// ---------------------------------------------------------------------------
// Boolean evaluation (witness condition B(E) / membership)

TEST(ExpressionTest, EvaluateMatchesSetSemantics) {
  const ParseResult p = ParseExpression("(A - B) & C");
  ASSERT_TRUE(p.ok());
  auto eval = [&](bool a, bool b, bool c) {
    return p.expression->Evaluate([&](const std::string& name) {
      if (name == "A") return a;
      if (name == "B") return b;
      return c;
    });
  };
  EXPECT_TRUE(eval(true, false, true));
  EXPECT_FALSE(eval(true, true, true));    // In B: excluded.
  EXPECT_FALSE(eval(true, false, false));  // Not in C.
  EXPECT_FALSE(eval(false, false, true));  // Not in A.
}

TEST(ExpressionTest, UnionEvaluatesAsOr) {
  const ParseResult p = ParseExpression("A | B");
  ASSERT_TRUE(p.ok());
  int truths = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (p.expression->Evaluate([&](const std::string& n) {
            return n == "A" ? a != 0 : b != 0;
          })) {
        ++truths;
      }
    }
  }
  EXPECT_EQ(truths, 3);
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, PrecedenceIntersectionBindsTighter) {
  // A | B & C  ==  A | (B & C)
  const ParseResult p = ParseExpression("A | B & C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->ToString(), "(A | (B & C))");
  // A - B & C  ==  A - (B & C)
  const ParseResult q = ParseExpression("A - B & C");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.expression->ToString(), "(A - (B & C))");
}

TEST(ParserTest, LeftAssociativity) {
  const ParseResult p = ParseExpression("A - B - C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->ToString(), "((A - B) - C)");
  const ParseResult q = ParseExpression("A & B & C");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.expression->ToString(), "((A & B) & C)");
}

TEST(ParserTest, ParensOverridePrecedence) {
  const ParseResult p = ParseExpression("(A | B) & C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->ToString(), "((A | B) & C)");
}

TEST(ParserTest, PlusIsUnion) {
  const ParseResult p = ParseExpression("A + B");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->ToString(), "(A | B)");
}

TEST(ParserTest, IdentifiersWithDigitsAndUnderscores) {
  const ParseResult p = ParseExpression("router_1 & _r2");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->StreamNames(),
            (std::vector<std::string>{"router_1", "_r2"}));
}

TEST(ParserTest, WhitespaceInsensitive) {
  const ParseResult a = ParseExpression("(A-B)&C");
  const ParseResult b = ParseExpression("  ( A - B )   &  C ");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.expression->ToString(), b.expression->ToString());
}

TEST(ParserTest, NestedParens) {
  const ParseResult p = ParseExpression("(((A)))");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.expression->ToString(), "A");
}

class ParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  const ParseResult p = ParseExpression(GetParam());
  EXPECT_FALSE(p.ok()) << GetParam();
  EXPECT_FALSE(p.error.empty());
  EXPECT_NE(p.error.find("position"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    MalformedInputs, ParserErrorTest,
    ::testing::Values("", "   ", "A &", "& B", "A | | B", "(A - B",
                      "A - B)", "A B", "123", "A & (B |)", "A -", "()",
                      "A # B"));

// ---------------------------------------------------------------------------
// Exact evaluator

class ExactEvaluatorTest : public ::testing::Test {
 protected:
  ExactEvaluatorTest() : store_(3) {
    names_ = {{"A", 0}, {"B", 1}, {"C", 2}};
    // A = {1,2,3,4}, B = {3,4,5}, C = {1,3,5,7}.
    for (uint64_t e : {1, 2, 3, 4}) store_.Apply(Insert(0, e));
    for (uint64_t e : {3, 4, 5}) store_.Apply(Insert(1, e));
    for (uint64_t e : {1, 3, 5, 7}) store_.Apply(Insert(2, e));
  }

  int64_t Eval(const std::string& text) {
    const ParseResult p = ParseExpression(text);
    EXPECT_TRUE(p.ok()) << p.error;
    return ExactCardinality(*p.expression, store_, names_);
  }

  ExactSetStore store_;
  StreamNameMap names_;
};

TEST_F(ExactEvaluatorTest, SingleStream) {
  EXPECT_EQ(Eval("A"), 4);
  EXPECT_EQ(Eval("B"), 3);
  EXPECT_EQ(Eval("C"), 4);
}

TEST_F(ExactEvaluatorTest, BinaryOperators) {
  EXPECT_EQ(Eval("A | B"), 5);   // {1,2,3,4,5}
  EXPECT_EQ(Eval("A & B"), 2);   // {3,4}
  EXPECT_EQ(Eval("A - B"), 2);   // {1,2}
  EXPECT_EQ(Eval("B - A"), 1);   // {5}
}

TEST_F(ExactEvaluatorTest, CompoundExpressions) {
  EXPECT_EQ(Eval("(A - B) & C"), 1);        // {1}
  EXPECT_EQ(Eval("(A & B) | (C - A)"), 4);  // {3,4} u {5,7}
  EXPECT_EQ(Eval("A | B | C"), 6);          // {1,2,3,4,5,7}
  EXPECT_EQ(Eval("A & B & C"), 1);          // {3}
  EXPECT_EQ(Eval("(A | B) - C"), 2);        // {2,4}
}

TEST_F(ExactEvaluatorTest, DeletionsChangeResults) {
  EXPECT_EQ(Eval("A & B"), 2);
  store_.Apply(Delete(0, 3));  // Remove 3 from A.
  EXPECT_EQ(Eval("A & B"), 1);
  EXPECT_EQ(Eval("B - A"), 2);  // {3,5} now.
}

TEST_F(ExactEvaluatorTest, UnknownStreamReturnsMinusOne) {
  EXPECT_EQ(Eval("A & Z"), -1);
}

TEST_F(ExactEvaluatorTest, UnionCardinalityHelper) {
  const ParseResult p = ParseExpression("(A - B) & C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ExactUnionCardinality(*p.expression, store_, names_), 6);
}

TEST_F(ExactEvaluatorTest, EmptyResultExpression) {
  EXPECT_EQ(Eval("A - A"), 0);
  EXPECT_EQ(Eval("(A & B) - A"), 0);
}

}  // namespace
}  // namespace setsketch
