// Randomized property tests: random expressions over random datasets must
// (a) estimate within a calibrated envelope of the exact answer, and
// (b) agree between the estimator pipeline and the exact evaluator's
// semantics; plus linearity fuzzing of the sketch under random legal
// update interleavings. All seeds fixed — deterministic.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/set_expression_estimator.h"
#include "expr/analysis.h"
#include "expr/exact_evaluator.h"
#include "hash/prng.h"
#include "query/stream_engine.h"
#include "stream/exact_set_store.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

// Random expression over streams S0..S{n-1}, depth-bounded.
ExprPtr RandomExpression(Xoshiro256StarStar* rng, int num_streams,
                         int depth) {
  if (depth == 0 || rng->NextBelow(4) == 0) {
    return Expression::Stream(
        "S" + std::to_string(rng->NextBelow(
                  static_cast<uint64_t>(num_streams))));
  }
  ExprPtr left = RandomExpression(rng, num_streams, depth - 1);
  ExprPtr right = RandomExpression(rng, num_streams, depth - 1);
  switch (rng->NextBelow(3)) {
    case 0:
      return Expression::Union(std::move(left), std::move(right));
    case 1:
      return Expression::Intersect(std::move(left), std::move(right));
    default:
      return Expression::Difference(std::move(left), std::move(right));
  }
}

// Random region probabilities over n streams (non-degenerate).
std::vector<double> RandomRegionProbs(Xoshiro256StarStar* rng, int n) {
  std::vector<double> probs(1ULL << n, 0.0);
  double total = 0;
  for (size_t mask = 1; mask < probs.size(); ++mask) {
    probs[mask] = 0.05 + rng->NextDouble();
    total += probs[mask];
  }
  for (double& p : probs) p /= total;
  return probs;
}

class RandomExpressionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpressionTest, EstimateWithinEnvelopeOfExact) {
  const uint64_t trial = static_cast<uint64_t>(GetParam());
  Xoshiro256StarStar rng(0xABCD0000 + trial);
  const int num_streams = 3;
  const ExprPtr expr = RandomExpression(&rng, num_streams, 2);

  VennPartitionGenerator gen(num_streams,
                             RandomRegionProbs(&rng, num_streams));
  const PartitionedDataset data = gen.Generate(4096, 0xBEEF + trial);
  const auto bank = BankFromDataset(data, 192, 0xF00 + trial * 17);

  // Ground truth via region masks (cross-checks generator + analysis).
  const std::vector<std::string> order = DatasetStreamNames(num_streams);
  int64_t exact = 0;
  for (uint32_t region : ResultRegions(*expr, order)) {
    exact += static_cast<int64_t>(data.regions[region].size());
  }

  WitnessOptions options;
  options.pool_all_levels = true;
  options.mle_union = true;
  const ExpressionEstimate estimate =
      EstimateSetExpression(*expr, *bank, options);
  ASSERT_TRUE(estimate.ok) << expr->ToString();

  // Envelope: generous but meaningful — half the exact value plus a
  // union-scaled noise floor.
  const double bound = 0.5 * static_cast<double>(exact) +
                       0.08 * static_cast<double>(data.UnionSize()) + 10;
  EXPECT_NEAR(estimate.expression.estimate, static_cast<double>(exact),
              bound)
      << expr->ToString() << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(Trials, RandomExpressionTest,
                         ::testing::Range(0, 12));

// Exact evaluator vs region analysis: two independent paths to |E| must
// agree exactly for random expressions and datasets.
class SemanticsCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsCrossCheckTest, ExactEvaluatorMatchesRegionCount) {
  const uint64_t trial = static_cast<uint64_t>(GetParam());
  Xoshiro256StarStar rng(0x5EED00 + trial * 31);
  const int num_streams = 3;
  const ExprPtr expr = RandomExpression(&rng, num_streams, 3);

  VennPartitionGenerator gen(num_streams,
                             RandomRegionProbs(&rng, num_streams));
  const PartitionedDataset data = gen.Generate(1024, 0xCAFE + trial);

  ExactSetStore store(num_streams);
  store.ApplyAll(data.ToInsertUpdates(trial));
  StreamNameMap names;
  const std::vector<std::string> order = DatasetStreamNames(num_streams);
  for (size_t i = 0; i < order.size(); ++i) {
    names.emplace(order[i], static_cast<StreamId>(i));
  }

  int64_t by_regions = 0;
  for (uint32_t region : ResultRegions(*expr, order)) {
    by_regions += static_cast<int64_t>(data.regions[region].size());
  }
  EXPECT_EQ(ExactCardinality(*expr, store, names), by_regions)
      << expr->ToString();
}

INSTANTIATE_TEST_SUITE_P(Trials, SemanticsCrossCheckTest,
                         ::testing::Range(0, 20));

// Linearity fuzz: arbitrary legal insert/delete interleavings leave the
// sketch equal to the net multiset's sketch.
class LinearityFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(LinearityFuzzTest, SketchEqualsNetMultisetSketch) {
  const uint64_t trial = static_cast<uint64_t>(GetParam());
  Xoshiro256StarStar rng(0xFACE00 + trial * 13);
  const auto seed =
      std::make_shared<const SketchSeed>(TestParams(), 0xD00D + trial);

  // Random legal update sequence over a small element domain.
  ExactSetStore store(1);
  TwoLevelHashSketch incremental(seed);
  for (int step = 0; step < 3000; ++step) {
    const uint64_t element = rng.NextBelow(64) * 2654435761ULL;
    int64_t delta;
    if (rng.NextBelow(3) == 0) {
      // Deletion of up to the current net frequency (always legal).
      const int64_t freq = store.NetFrequency(0, element);
      if (freq == 0) continue;
      delta = -static_cast<int64_t>(1 + rng.NextBelow(
                                            static_cast<uint64_t>(freq)));
    } else {
      delta = static_cast<int64_t>(1 + rng.NextBelow(4));
    }
    ASSERT_TRUE(store.Apply(Update{0, element, delta}));
    incremental.Update(element, delta);
  }

  // Rebuild from the net multiset only.
  TwoLevelHashSketch from_net(seed);
  store.ForEachDistinct(0, [&](uint64_t element, int64_t freq) {
    from_net.Update(element, freq);
  });
  EXPECT_TRUE(incremental == from_net);
}

INSTANTIATE_TEST_SUITE_P(Trials, LinearityFuzzTest,
                         ::testing::Range(0, 10));

TEST(EngineShortCircuitTest, ProvablyEmptyQueriesAnswerZero) {
  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 8;  // Tiny: the answer must not depend on sampling.
  options.seed = 5;
  StreamEngine engine(options);
  const auto q = engine.RegisterQuery("(A & B) - A");
  ASSERT_TRUE(q.ok());
  for (int e = 0; e < 1000; ++e) {
    engine.Ingest("A", static_cast<uint64_t>(e), 1);
    engine.Ingest("B", static_cast<uint64_t>(e), 1);
  }
  const auto answer = engine.AnswerQuery(q.id);
  ASSERT_TRUE(answer.ok);
  EXPECT_DOUBLE_EQ(answer.estimate, 0.0);
}

}  // namespace
}  // namespace setsketch
