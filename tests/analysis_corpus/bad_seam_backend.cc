// Bad: server code estimating a backend synopsis by poking the
// DistinctSketch directly, skipping EstimateWithBackend's leaf-presence
// and options/homogeneity validation.
// analyze-as: src/server/bad_seam_backend.cc
// expect: seam-backend

#include "core/sketch_backend.h"

namespace setsketch {

double AnswerFromBackend(const DistinctSketch& sketch) {
  return sketch.EstimateDistinct();
}

}  // namespace setsketch
