// Bad (half 1 of a seeded cross-TU deadlock): this TU acquires
// index_mutex_ while holding flush_mutex_; bad_lock_order_cycle_b.cc
// acquires them in the opposite order. Neither file alone is wrong —
// only the cross-TU graph shows the cycle.
// analyze-as: src/server/bad_lock_order_cycle_a.cc
// expect: lock-order

#include "util/thread_annotations.h"

namespace setsketch {

void WalPair::FlushThenIndex() {
  MutexLock flush_lock(&flush_mutex_);
  MutexLock index_lock(&index_mutex_);
  ++flushes_;
}

}  // namespace setsketch
