// Good: both paths honor the same partial order (journal mutex before
// segment mutex). The cross-TU graph has an edge but no cycle.
// analyze-as: src/server/good_lock_order.cc
// expect-clean

#include "util/thread_annotations.h"

namespace setsketch {

void Journal::Append() {
  MutexLock journal_lock(&journal_mutex_);
  MutexLock segment_lock(&segment_mutex_);
  ++appended_;
}

void Journal::Rotate() {
  MutexLock journal_lock(&journal_mutex_);
  MutexLock segment_lock(&segment_mutex_);
  ++rotations_;
}

}  // namespace setsketch
