// Bad (half 2 of a seeded cross-TU deadlock): the opposite acquisition
// order from bad_lock_order_cycle_a.cc. Running both threads
// concurrently deadlocks; the analyzer's cross-TU lock graph reports
// the cycle on both edges.
// analyze-as: src/server/bad_lock_order_cycle_b.cc
// expect: lock-order

#include "util/thread_annotations.h"

namespace setsketch {

void WalPair::IndexThenFlush() {
  MutexLock index_lock(&index_mutex_);
  MutexLock flush_lock(&flush_mutex_);
  ++indexed_;
}

}  // namespace setsketch
