// Bad: a SETSKETCH_HOT_PATH function growing a container per element.
// The per-update ingest kernel runs once per decoded update; allocation
// inside it turns the zero-copy fast path back into malloc traffic.
// analyze-as: src/server/bad_hotpath_alloc.cc
// expect: hotpath-alloc

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace setsketch {

SETSKETCH_HOT_PATH size_t DecodeRunLengths(const uint8_t* p,
                                           const uint8_t* end,
                                           std::vector<uint64_t>* out);

size_t DecodeRunLengths(const uint8_t* p, const uint8_t* end,
                        std::vector<uint64_t>* out) {
  size_t decoded = 0;
  while (p < end) {
    out->push_back(*p++);
    ++decoded;
  }
  return decoded;
}

}  // namespace setsketch
