// Good: backend estimation routed through the kernel's sanctioned entry
// point — EstimateWithBackend resolves the leaves, validates that they
// share one backend + options, and dispatches to that backend's
// expression algebra.
// analyze-as: src/server/good_seam_backend.cc
// expect-clean

#include "core/sketch_backend.h"

namespace setsketch {

double AnswerViaKernel(const Expression& expression,
                       const SketchBank& bank) {
  const BackendEstimate estimate = EstimateWithBackend(
      expression, [&bank](const std::string& name) -> const DistinctSketch* {
        return bank.BackendSketch(name);
      });
  return estimate.ok ? estimate.estimate : -1.0;
}

}  // namespace setsketch
