// Good: the hot function is pure pointer math over a caller-provided
// buffer; the allocating helper below it is NOT marked hot, so its
// push_back is outside the audit.
// analyze-as: src/server/good_hotpath.cc
// expect-clean

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace setsketch {

SETSKETCH_HOT_PATH size_t SumBytes(const uint8_t* p, const uint8_t* end,
                                   uint64_t* total);

size_t SumBytes(const uint8_t* p, const uint8_t* end, uint64_t* total) {
  size_t consumed = 0;
  while (p < end) {
    *total += *p++;
    ++consumed;
  }
  return consumed;
}

void CollectBytes(const uint8_t* p, const uint8_t* end,
                  std::vector<uint8_t>* out) {
  while (p < end) out->push_back(*p++);
}

}  // namespace setsketch
