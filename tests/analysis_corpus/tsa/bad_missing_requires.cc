// Must FAIL to compile under -Wthread-safety -Werror=thread-safety:
// good_requires_helper.cc with the SETSKETCH_REQUIRES annotation
// removed from InsertLocked — its guarded accesses then run in a
// function that, to the analysis, holds nothing.

#include <cstdint>

#include "util/thread_annotations.h"

namespace setsketch {

class Registry {
 public:
  void Insert(uint64_t id) SETSKETCH_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    InsertLocked(id);
  }

 private:
  void InsertLocked(uint64_t id) {
    last_id_ = id;  // error: writing last_id_ requires holding mutex_
    ++count_;
  }

  Mutex mutex_;
  uint64_t last_id_ SETSKETCH_GUARDED_BY(mutex_) = 0;
  uint64_t count_ SETSKETCH_GUARDED_BY(mutex_) = 0;
};

}  // namespace setsketch
