// Must compile CLEAN under -Wthread-safety -Werror=thread-safety: the
// *Locked helper declares its precondition with SETSKETCH_REQUIRES and
// every caller holds the mutex. bad_missing_requires.cc is this file
// minus that one annotation.

#include <cstdint>

#include "util/thread_annotations.h"

namespace setsketch {

class Registry {
 public:
  void Insert(uint64_t id) SETSKETCH_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    InsertLocked(id);
  }

 private:
  void InsertLocked(uint64_t id) SETSKETCH_REQUIRES(mutex_) {
    last_id_ = id;
    ++count_;
  }

  Mutex mutex_;
  uint64_t last_id_ SETSKETCH_GUARDED_BY(mutex_) = 0;
  uint64_t count_ SETSKETCH_GUARDED_BY(mutex_) = 0;
};

}  // namespace setsketch
