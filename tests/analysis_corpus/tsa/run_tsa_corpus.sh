#!/usr/bin/env bash
# Compile-tests the Clang Thread Safety annotation corpus:
#
#   good_*.cc  must compile clean under -Wthread-safety
#              -Werror=thread-safety (the annotated Mutex/MutexLock
#              vocabulary in src/util/thread_annotations.h works);
#   bad_*.cc   each is a good snippet minus exactly one annotation or
#              lock acquisition, and must produce a diagnostic — proving
#              the analysis actually fires, not just that the macros
#              expand.
#
# Requires clang++ (override with SETSKETCH_CLANGXX). Exits 77 when no
# clang is available so ctest reports the test as SKIPPED (the
# SKIP_RETURN_CODE registered in tests/CMakeLists.txt), keeping the
# suite green on gcc-only boxes while CI's clang job still enforces it.
#
# Usage: run_tsa_corpus.sh [src-include-dir]

set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"
src="${1:-${here}/../../../src}"
clangxx="${SETSKETCH_CLANGXX:-clang++}"

if ! command -v "${clangxx}" >/dev/null 2>&1; then
  echo "tsa corpus: ${clangxx} not found; skipping (exit 77)"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -Wall -Wextra -Werror
       -Wthread-safety -Werror=thread-safety -I "${src}")
fail=0

for f in "${here}"/good_*.cc; do
  if ! "${clangxx}" "${flags[@]}" "${f}"; then
    echo "tsa corpus FAIL: $(basename "${f}") must compile clean" >&2
    fail=1
  else
    echo "tsa corpus ok: $(basename "${f}") (clean)"
  fi
done

for f in "${here}"/bad_*.cc; do
  if "${clangxx}" "${flags[@]}" "${f}" 2>/dev/null; then
    echo "tsa corpus FAIL: $(basename "${f}") must produce a" \
         "thread-safety diagnostic" >&2
    fail=1
  else
    echo "tsa corpus ok: $(basename "${f}") (diagnosed)"
  fi
done

if [[ ${fail} -ne 0 ]]; then
  exit 1
fi
echo "tsa corpus: ok"
