// Must FAIL to compile under -Wthread-safety -Werror=thread-safety:
// good_mutex_guards.cc with the MutexLock acquisition in Add() removed,
// so the guarded write happens without the capability.

#include <cstdint>

#include "util/thread_annotations.h"

namespace setsketch {

class Counter {
 public:
  void Add(uint64_t delta) SETSKETCH_EXCLUDES(mutex_) {
    total_ += delta;  // error: writing total_ requires holding mutex_
  }

  uint64_t total() const SETSKETCH_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_;
  }

 private:
  mutable Mutex mutex_;
  uint64_t total_ SETSKETCH_GUARDED_BY(mutex_) = 0;
};

}  // namespace setsketch
