// Must compile CLEAN under:
//   clang++ -std=c++20 -fsyntax-only -Wthread-safety
//           -Werror=thread-safety -I <repo>/src
// bad_missing_lock.cc is this file minus the MutexLock acquisition in
// Add(); the tsa corpus driver requires that deletion to diagnose.

#include <cstdint>

#include "util/thread_annotations.h"

namespace setsketch {

class Counter {
 public:
  void Add(uint64_t delta) SETSKETCH_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    total_ += delta;
  }

  uint64_t total() const SETSKETCH_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_;
  }

 private:
  mutable Mutex mutex_;
  uint64_t total_ SETSKETCH_GUARDED_BY(mutex_) = 0;
};

}  // namespace setsketch
