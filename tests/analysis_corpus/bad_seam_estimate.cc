// Bad: a query path calling the estimator kernel directly instead of
// going through the planner, losing canonicalization, memoization, and
// the epoch-invalidation contract.
// analyze-as: src/server/bad_seam_estimate.cc
// expect: seam-estimate

#include "core/set_expression_estimator.h"

namespace setsketch {

double AnswerDirectly(const SetExpression& expression,
                      const SketchBank& bank,
                      const WitnessOptions& witness) {
  return EstimateSetExpression(expression, bank, witness);
}

}  // namespace setsketch
