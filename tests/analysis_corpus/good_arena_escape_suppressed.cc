// Good: an audited exception. thread_local view scratch is normally an
// escape, but here the views are fully overwritten before any read, and
// the suppression comment records that audit for the analyzer.
// analyze-as: src/server/good_arena_escape_suppressed.cc
// expect-clean

#include <string>
#include <string_view>

#include "server/protocol.h"

namespace setsketch {

size_t CountUpdates(std::string_view payload) {
  // Scratch reused per frame, never read stale. analyze-ok: arena-escape
  thread_local UpdateBatchView batch;
  std::string decode_error;
  if (!DecodePushUpdates(payload, &batch, &decode_error)) return 0;
  return batch.updates.size();
}

}  // namespace setsketch
