// Good: the banned mutator names appear only in a comment and a string
// literal. The old lint.py regex pass had no string awareness and
// matched cases like the log text below; the analyzer must not.
// analyze-as: src/server/good_seam_ingest.cc
// expect-clean

#include <string>

namespace setsketch {

// Recovery used to call ApplyBatch(updates) here before the AdmitPush
// seam existed; see the WAL replay path for the current flow.
std::string IngestSeamNote() {
  return "ingest mutations like ApplyBatch(...) and MutableSketches() "
         "must flow through AdmitPush";
}

}  // namespace setsketch
