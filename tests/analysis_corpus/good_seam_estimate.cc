// Good: the planner itself is exempt — its uncached strategy wraps the
// direct estimator call, which is the whole point of the seam.
// analyze-as: src/query/plan_cache.cc
// expect-clean

#include "core/set_expression_estimator.h"

namespace setsketch {

double EstimateUncachedForTest(const SetExpression& expression,
                               const SketchBank& bank,
                               const WitnessOptions& witness) {
  return EstimateSetExpression(expression, bank, witness);
}

}  // namespace setsketch
