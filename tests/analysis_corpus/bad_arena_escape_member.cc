// Bad: class members of arena-view type. FrameView / UpdateBatchView
// borrow from a connection's IngestArena and are valid only for the
// readiness-event callback; a member copy dangles on the next recv().
// analyze-as: src/server/bad_arena_escape_member.cc
// expect: arena-escape

#include <vector>

#include "server/protocol.h"

namespace setsketch {

class PendingFrameQueue {
 public:
  size_t size() const { return frames_.size(); }

 private:
  FrameView last_;
  std::vector<FrameView> frames_;
};

}  // namespace setsketch
