// Bad: a handler stores a field of its borrowed view into longer-lived
// state. batch.site_id is a string_view into the connection arena; the
// stash outlives the callback and dangles once the arena is reused.
// analyze-as: src/server/bad_arena_escape_store.cc
// expect: arena-escape

#include <string_view>

#include "server/protocol.h"

namespace setsketch {

std::string_view g_last_site_;

void StashSite(std::string_view payload) {
  UpdateBatchView batch;
  std::string decode_error;
  if (!DecodePushUpdates(payload, &batch, &decode_error)) return;
  g_last_site_ = batch.site_id;
}

}  // namespace setsketch
