// Good: the borrowed view stays inside the readiness-event callback;
// anything that must outlive the call is copied into owning storage.
// analyze-as: src/server/good_arena_escape.cc
// expect-clean

#include <string>
#include <string_view>

#include "server/protocol.h"

namespace setsketch {

bool CopyFirstPayload(std::string_view data, std::string* copied_out) {
  FrameView view;
  size_t frame_bytes = 0;
  WireError error = WireError::kNone;
  std::string error_message;
  if (ScanFrame(data, &view, &frame_bytes, &error, &error_message) !=
      FrameScanStatus::kFrame) {
    return false;
  }
  copied_out->assign(view.payload.data(), view.payload.size());
  return true;
}

}  // namespace setsketch
