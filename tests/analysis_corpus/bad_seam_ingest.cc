// Bad: server code mutating the sketch bank directly. Bypassing
// SketchServer::AdmitPush skips the WAL append, the dedup record, and
// the ingest-epoch bump that invalidates cached plans.
// analyze-as: src/server/bad_seam_ingest.cc
// expect: seam-ingest

#include <vector>

#include "core/sketch_bank.h"

namespace setsketch {

void ReplayDirectly(SketchBank* bank, const std::vector<Update>& updates) {
  bank->ApplyBatch(updates);
}

}  // namespace setsketch
