// Bad: the DCHECK condition mutates state. SETSKETCH_DCHECK compiles
// out of release builds, so the increment silently disappears and
// debug/release behavior diverges.
// analyze-as: src/server/bad_dcheck_side_effect.cc
// expect: dcheck-side-effect

#include <cstdint>

#include "util/check.h"

namespace setsketch {

void RecordApplied(uint64_t* applied, uint64_t expected) {
  SETSKETCH_DCHECK(++*applied <= expected)
      << "applied " << *applied << " past " << expected;
}

}  // namespace setsketch
