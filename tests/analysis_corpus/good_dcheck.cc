// Good: pure-read DCHECK conditions; comparison operators (==, <=, >=)
// must not be mistaken for assignments.
// analyze-as: src/server/good_dcheck.cc
// expect-clean

#include <cstdint>

#include "util/check.h"

namespace setsketch {

void CheckApplied(uint64_t applied, uint64_t expected) {
  SETSKETCH_DCHECK(applied == expected)
      << "applied " << applied << " != " << expected;
  SETSKETCH_DCHECK(applied <= expected + 1);
  SETSKETCH_DCHECK(expected >= applied);
}

}  // namespace setsketch
