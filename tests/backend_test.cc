// Tests for the pluggable distinct-sketch backends (DESIGN.md §3.8): the
// registry, the theta/KMV and SetSketch DistinctSketch implementations
// (accuracy, deletion-exactness, merge, canonical serialization), and the
// EstimateWithBackend expression seam.

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_sketch.h"
#include "core/sketch_backend.h"
#include "core/theta_sketch.h"
#include "expr/parser.h"
#include "util/stats.h"

namespace setsketch {
namespace {

const SketchBackendId kBackends[] = {SketchBackendId::kThetaKmv,
                                     SketchBackendId::kSetSketch};

BackendOptions TestOptions(uint32_t size = 4096, uint64_t seed = 42) {
  BackendOptions options;
  options.size = size;
  options.seed = seed;
  return options;
}

// ---------------------------------------------------------------------------
// Registry

TEST(BackendRegistryTest, NamesRoundTrip) {
  for (uint8_t raw = 0; raw <= kMaxSketchBackendId; ++raw) {
    const auto id = static_cast<SketchBackendId>(raw);
    SketchBackendId parsed;
    ASSERT_TRUE(ParseSketchBackendName(SketchBackendName(id), &parsed))
        << SketchBackendName(id);
    EXPECT_EQ(parsed, id);
  }
  SketchBackendId parsed;
  EXPECT_FALSE(ParseSketchBackendName("hyperloglogish", &parsed));
  EXPECT_TRUE(KnownSketchBackend(0));
  EXPECT_FALSE(KnownSketchBackend(kMaxSketchBackendId + 1));
}

TEST(BackendRegistryTest, FactoryCreatesEveryNonDefaultBackend) {
  EXPECT_EQ(CreateDistinctSketch(SketchBackendId::kTwoLevelHash,
                                 TestOptions()),
            nullptr);
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions());
    ASSERT_NE(sketch, nullptr);
    EXPECT_EQ(sketch->backend(), id);
    EXPECT_TRUE(sketch->Empty());
  }
}

// ---------------------------------------------------------------------------
// Accuracy + deletion handling, shared across backends

TEST(BackendSketchTest, EstimatesWithinTargetError) {
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions());
    const int n = 200000;
    for (int e = 0; e < n; ++e) {
      sketch->Update(static_cast<uint64_t>(e) * 2654435761ULL + 17, +1);
    }
    EXPECT_LT(RelativeError(sketch->EstimateDistinct(), n),
              sketch->TargetRelativeError())
        << SketchBackendName(id);
  }
}

TEST(BackendSketchTest, DeletionsLeaveNoTrace) {
  // Insert n elements, then delete all but `survivors`: the sketch must
  // estimate the *net* set, the linearity property the paper's synopsis
  // is built around and sampling baselines lack.
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions());
    auto ghost = CreateDistinctSketch(id, TestOptions());
    const int n = 100000, survivors = 5000;
    for (int e = 0; e < n; ++e) sketch->Update(e, +1);
    for (int e = survivors; e < n; ++e) sketch->Update(e, -1);
    for (int e = 0; e < survivors; ++e) ghost->Update(e, +1);
    if (id == SketchBackendId::kSetSketch) {
      // Strictly linear backends end bit-identical to never having seen
      // the deleted elements (Equals compares full counter state).
      EXPECT_TRUE(sketch->Equals(*ghost)) << SketchBackendName(id);
    }
    // Theta is history-dependent (the threshold only lowers on inserts),
    // so only the *estimate* is order-robust there — still within target,
    // which is exactly what the sampling baselines fail.
    EXPECT_LT(RelativeError(sketch->EstimateDistinct(), survivors),
              sketch->TargetRelativeError())
        << SketchBackendName(id);
  }
}

TEST(BackendSketchTest, DeleteToEmptyIsEmpty) {
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions(64));
    for (int e = 0; e < 5000; ++e) sketch->Update(e, +1);
    EXPECT_FALSE(sketch->Empty());
    for (int e = 0; e < 5000; ++e) sketch->Update(e, -1);
    EXPECT_TRUE(sketch->Empty()) << SketchBackendName(id);
    EXPECT_EQ(sketch->EstimateDistinct(), 0.0) << SketchBackendName(id);
  }
}

TEST(BackendSketchTest, MergeEqualsConcatenatedStream) {
  for (const SketchBackendId id : kBackends) {
    auto left = CreateDistinctSketch(id, TestOptions(256));
    auto right = CreateDistinctSketch(id, TestOptions(256));
    auto whole = CreateDistinctSketch(id, TestOptions(256));
    for (int e = 0; e < 30000; ++e) {
      auto& half = (e % 2 == 0) ? left : right;
      half->Update(e, +1);
      whole->Update(e, +1);
    }
    ASSERT_TRUE(left->Merge(*right));
    if (id == SketchBackendId::kSetSketch) {
      EXPECT_TRUE(left->Equals(*whole)) << SketchBackendName(id);
    } else {
      // Theta thresholds depend on per-sketch insert history; the merged
      // estimate must still agree with the concatenated stream's.
      EXPECT_LT(RelativeError(left->EstimateDistinct(), 30000),
                left->TargetRelativeError())
          << SketchBackendName(id);
    }
  }
}

TEST(BackendSketchTest, MergeRefusesMismatchedConfig) {
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions(256, 1));
    auto wrong_seed = CreateDistinctSketch(id, TestOptions(256, 2));
    auto wrong_size = CreateDistinctSketch(id, TestOptions(512, 1));
    EXPECT_FALSE(sketch->Merge(*wrong_seed));
    EXPECT_FALSE(sketch->Merge(*wrong_size));
    const auto other =
        (id == SketchBackendId::kThetaKmv) ? SketchBackendId::kSetSketch
                                           : SketchBackendId::kThetaKmv;
    auto wrong_backend = CreateDistinctSketch(other, TestOptions(256, 1));
    EXPECT_FALSE(sketch->Merge(*wrong_backend));
  }
}

// ---------------------------------------------------------------------------
// Serialization

TEST(BackendSketchTest, SerializeRoundTripsAndIsCanonical) {
  std::mt19937_64 rng(7);
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions(512, 9));
    for (int e = 0; e < 50000; ++e) sketch->Update(rng(), +1);
    std::string bytes;
    sketch->SerializeTo(&bytes);
    size_t offset = 0;
    std::string error;
    auto restored = DeserializeDistinctSketch(bytes, &offset, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(offset, bytes.size());
    EXPECT_TRUE(restored->Equals(*sketch));
    // Canonical: re-serializing the restored sketch gives the same bytes
    // (summary caches and anti-entropy repair compare encodings).
    std::string again;
    restored->SerializeTo(&again);
    EXPECT_EQ(again, bytes) << SketchBackendName(id);
  }
}

TEST(BackendSketchTest, DeserializeRejectsMutatedEncodings) {
  // Truncations and single-byte mutations must fail cleanly or decode to
  // a *valid* sketch (never crash / over-read). Exhaustive truncation,
  // sampled mutation.
  std::mt19937_64 rng(11);
  for (const SketchBackendId id : kBackends) {
    auto sketch = CreateDistinctSketch(id, TestOptions(64, 3));
    for (int e = 0; e < 3000; ++e) sketch->Update(rng(), +1);
    std::string bytes;
    sketch->SerializeTo(&bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::string truncated = bytes.substr(0, cut);
      size_t offset = 0;
      std::string error;
      auto decoded = DeserializeDistinctSketch(truncated, &offset, &error);
      // Truncation may still decode if the cut lands past the payload's
      // self-delimited end — impossible here because we cut strictly
      // inside, so every decode must fail.
      EXPECT_EQ(decoded, nullptr) << SketchBackendName(id) << " cut=" << cut;
    }
    for (int trial = 0; trial < 500; ++trial) {
      std::string mutated = bytes;
      mutated[rng() % mutated.size()] = static_cast<char>(rng());
      size_t offset = 0;
      std::string error;
      auto decoded = DeserializeDistinctSketch(mutated, &offset, &error);
      if (decoded != nullptr) {
        EXPECT_LE(offset, mutated.size());
        std::string reencoded;
        decoded->SerializeTo(&reencoded);  // Must not crash.
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Expression seam

using Lookup = std::unordered_map<std::string, std::unique_ptr<DistinctSketch>>;

std::function<const DistinctSketch*(const std::string&)> LeafOf(
    const Lookup& lookup) {
  return [&lookup](const std::string& name) -> const DistinctSketch* {
    auto it = lookup.find(name);
    return it == lookup.end() ? nullptr : it->second.get();
  };
}

/// Three overlapping streams: A = [0, 60k), B = [40k, 120k), C = [100k,
/// 140k) — ground truths computed from the ranges.
Lookup BuildStreams(SketchBackendId id) {
  Lookup lookup;
  const BackendOptions options = TestOptions(4096, 21);
  auto ingest = [&](const std::string& name, int lo, int hi) {
    auto sketch = CreateDistinctSketch(id, options);
    for (int e = lo; e < hi; ++e) sketch->Update(e, +1);
    lookup.emplace(name, std::move(sketch));
  };
  ingest("A", 0, 60000);
  ingest("B", 40000, 120000);
  ingest("C", 100000, 140000);
  return lookup;
}

double Estimate(const std::string& text, const Lookup& lookup,
                bool* ok = nullptr, std::string* error = nullptr) {
  ParseResult parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  BackendEstimate result =
      EstimateWithBackend(*parsed.expression, LeafOf(lookup));
  if (ok != nullptr) *ok = result.ok;
  if (error != nullptr) *error = result.error;
  return result.estimate;
}

TEST(BackendExpressionTest, ThetaHandlesEveryConnectiveNested) {
  Lookup lookup = BuildStreams(SketchBackendId::kThetaKmv);
  const double tolerance = 0.15;
  EXPECT_LT(RelativeError(Estimate("A | B", lookup), 120000), tolerance);
  EXPECT_LT(RelativeError(Estimate("A & B", lookup), 20000), tolerance);
  EXPECT_LT(RelativeError(Estimate("A - B", lookup), 40000), tolerance);
  EXPECT_LT(RelativeError(Estimate("(A & B) | C", lookup), 60000), tolerance);
  EXPECT_LT(RelativeError(Estimate("(A | B) - (B & C)", lookup), 100000),
            tolerance);
}

TEST(BackendExpressionTest, SetSketchHandlesUnionsAndOneLevelIE) {
  Lookup lookup = BuildStreams(SketchBackendId::kSetSketch);
  EXPECT_LT(RelativeError(Estimate("A | B | C", lookup), 140000), 0.1);
  // Inclusion-exclusion amplifies noise; looser tolerance.
  EXPECT_LT(RelativeError(Estimate("A & B", lookup), 20000), 0.5);
  EXPECT_LT(RelativeError(Estimate("A - B", lookup), 40000), 0.35);
  bool ok = true;
  std::string error;
  Estimate("(A & B) | C", lookup, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("theta_kmv"), std::string::npos) << error;
}

TEST(BackendExpressionTest, RefusesMixedBackendsAndMissingStreams) {
  Lookup lookup;
  lookup.emplace("A", CreateDistinctSketch(SketchBackendId::kThetaKmv,
                                           TestOptions()));
  lookup.emplace("B", CreateDistinctSketch(SketchBackendId::kSetSketch,
                                           TestOptions()));
  bool ok = true;
  std::string error;
  Estimate("A | B", lookup, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("mixed sketch backends"), std::string::npos) << error;
  Estimate("A | Missing", lookup, &ok, &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("no backend sketch"), std::string::npos) << error;
}

TEST(BackendSketchTest, ThetaShrinkKeepsSampleBounded) {
  ThetaKmvSketch sketch(TestOptions(64, 5));
  for (int e = 0; e < 100000; ++e) sketch.Update(e, +1);
  EXPECT_LE(sketch.SampleSize(), 128u);  // <= 2k by construction.
  EXPECT_LT(sketch.theta(), ThetaKmvSketch::kThetaMax);
  EXPECT_LT(RelativeError(sketch.EstimateDistinct(), 100000), 0.5);
}

TEST(BackendSketchTest, SetSketchRegistersTrackMaxOccupiedRank) {
  SetSketchBackend sketch(TestOptions(16, 5));
  sketch.Update(123, +1);
  int occupied = 0;
  for (uint32_t reg = 0; reg < 16; ++reg) {
    if (sketch.Register(reg) != 0) ++occupied;
  }
  EXPECT_EQ(occupied, 1);
  sketch.Update(123, -1);
  for (uint32_t reg = 0; reg < 16; ++reg) {
    EXPECT_EQ(sketch.Register(reg), 0);
  }
}

}  // namespace
}  // namespace setsketch
