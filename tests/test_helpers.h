// Shared fixtures for estimator tests: build aligned sketch banks over
// controlled synthetic datasets.

#ifndef SETSKETCH_TESTS_TEST_HELPERS_H_
#define SETSKETCH_TESTS_TEST_HELPERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/sketch_bank.h"
#include "stream/stream_generator.h"

namespace setsketch {

inline SketchParams TestParams(int levels = 24, int s = 16) {
  SketchParams params;
  params.levels = levels;
  params.num_second_level = s;
  return params;
}

/// Builds a SketchBank with `copies` aligned sketches per stream over the
/// regions of `data` (streams named "S0", "S1", ...).
inline std::unique_ptr<SketchBank> BankFromDataset(
    const PartitionedDataset& data, int copies, uint64_t master_seed,
    SketchParams params = TestParams()) {
  auto bank = std::make_unique<SketchBank>(
      SketchFamily(params, copies, master_seed));
  std::vector<std::string> names;
  for (int s = 0; s < data.num_streams; ++s) {
    names.push_back("S" + std::to_string(s));
    bank->AddStream(names.back());
  }
  for (size_t mask = 1; mask < data.regions.size(); ++mask) {
    for (uint64_t e : data.regions[mask]) {
      for (int s = 0; s < data.num_streams; ++s) {
        if ((mask >> s) & 1) bank->Apply(names[static_cast<size_t>(s)], e, 1);
      }
    }
  }
  return bank;
}

/// Stream names "S0".."S{n-1}" for a dataset.
inline std::vector<std::string> DatasetStreamNames(int num_streams) {
  std::vector<std::string> names;
  for (int s = 0; s < num_streams; ++s) {
    names.push_back("S" + std::to_string(s));
  }
  return names;
}

}  // namespace setsketch

#endif  // SETSKETCH_TESTS_TEST_HELPERS_H_
