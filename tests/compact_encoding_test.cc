// Tests for varint primitives and the compact sketch wire encoding.

#include <limits>

#include <gtest/gtest.h>

#include "core/two_level_hash_sketch.h"
#include "hash/prng.h"
#include "util/varint.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// ZigZag

TEST(ZigZagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripsExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1},
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(ZigZagTest, RoundTripsRandomValues) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

// ---------------------------------------------------------------------------
// Varint

TEST(VarintTest, EncodesKnownValues) {
  std::string out;
  AppendVarint(&out, 0);
  EXPECT_EQ(out, std::string(1, '\0'));
  out.clear();
  AppendVarint(&out, 127);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  AppendVarint(&out, 128);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  AppendVarint(&out, ~0ULL);
  EXPECT_EQ(out.size(), 10u);
}

TEST(VarintTest, RoundTripsRandomValues) {
  Xoshiro256StarStar rng(7);
  std::string buffer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    // Mix magnitudes: shift a random value by a random amount.
    const uint64_t v = rng.Next() >> rng.NextBelow(64);
    values.push_back(v);
    AppendVarint(&buffer, v);
  }
  size_t offset = 0;
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(ReadVarint(buffer, &offset, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, RejectsTruncation) {
  std::string buffer;
  AppendVarint(&buffer, 1ULL << 40);
  buffer.resize(buffer.size() - 1);
  size_t offset = 0;
  uint64_t value = 0;
  EXPECT_FALSE(ReadVarint(buffer, &offset, &value));
}

TEST(VarintTest, RejectsOverlongEncoding) {
  // 11 continuation bytes can't be a valid u64.
  const std::string buffer(11, '\x80');
  size_t offset = 0;
  uint64_t value = 0;
  EXPECT_FALSE(ReadVarint(buffer, &offset, &value));
}

// ---------------------------------------------------------------------------
// Compact sketch encoding

class CompactEncodingTest : public ::testing::Test {
 protected:
  static TwoLevelHashSketch MakeSketch(int elements, uint64_t seed) {
    SketchParams params;
    params.levels = 32;
    params.num_second_level = 32;
    TwoLevelHashSketch sketch(
        std::make_shared<const SketchSeed>(params, seed));
    for (int e = 0; e < elements; ++e) {
      sketch.Update(static_cast<uint64_t>(e) * 2654435761ULL, 1 + e % 3);
    }
    return sketch;
  }
};

TEST_F(CompactEncodingTest, RoundTripsExactly) {
  const TwoLevelHashSketch sketch = MakeSketch(5000, 11);
  std::string bytes;
  sketch.SerializeCompactTo(&bytes);
  size_t offset = 0;
  const auto decoded = TwoLevelHashSketch::Deserialize(bytes, &offset);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(*decoded == sketch);
}

TEST_F(CompactEncodingTest, EmptySketchIsTiny) {
  const TwoLevelHashSketch sketch = MakeSketch(0, 13);
  std::string compact;
  sketch.SerializeCompactTo(&compact);
  // Header + a single zero-run token pair.
  EXPECT_LT(compact.size(), 40u);
  size_t offset = 0;
  const auto decoded = TwoLevelHashSketch::Deserialize(compact, &offset);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->Empty());
}

TEST_F(CompactEncodingTest, MuchSmallerThanFixedWidth) {
  const TwoLevelHashSketch sketch = MakeSketch(5000, 17);
  std::string fixed, compact;
  sketch.SerializeTo(&fixed);
  sketch.SerializeCompactTo(&compact);
  EXPECT_LT(compact.size() * 3, fixed.size())
      << "compact " << compact.size() << " vs fixed " << fixed.size();
}

TEST_F(CompactEncodingTest, HandlesNegativeCounters) {
  // Out-of-order delete-then-insert leaves transient negative cells only
  // mid-stream, but a plain negative net is also representable (callers
  // may merge partial sketches). Force one.
  SketchParams params;
  params.levels = 16;
  params.num_second_level = 8;
  TwoLevelHashSketch sketch(
      std::make_shared<const SketchSeed>(params, 19));
  sketch.Update(42, -5);
  std::string bytes;
  sketch.SerializeCompactTo(&bytes);
  size_t offset = 0;
  const auto decoded = TwoLevelHashSketch::Deserialize(bytes, &offset);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(*decoded == sketch);
}

TEST_F(CompactEncodingTest, BothEncodingsInterleaveInOneBuffer) {
  const TwoLevelHashSketch a = MakeSketch(100, 21);
  const TwoLevelHashSketch b = MakeSketch(200, 21);
  std::string bytes;
  a.SerializeTo(&bytes);
  b.SerializeCompactTo(&bytes);
  a.SerializeCompactTo(&bytes);
  size_t offset = 0;
  const auto da = TwoLevelHashSketch::Deserialize(bytes, &offset);
  const auto db = TwoLevelHashSketch::Deserialize(bytes, &offset);
  const auto da2 = TwoLevelHashSketch::Deserialize(bytes, &offset);
  ASSERT_TRUE(da && db && da2);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(*da == a);
  EXPECT_TRUE(*db == b);
  EXPECT_TRUE(*da2 == a);
}

TEST_F(CompactEncodingTest, RejectsCorruptRunLengths) {
  const TwoLevelHashSketch sketch = MakeSketch(50, 23);
  std::string bytes;
  sketch.SerializeCompactTo(&bytes);
  // Truncations at every prefix must fail cleanly, never crash.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::string truncated = bytes.substr(0, cut);
    size_t offset = 0;
    EXPECT_EQ(TwoLevelHashSketch::Deserialize(truncated, &offset), nullptr);
  }
}

TEST_F(CompactEncodingTest, FuzzRandomCorruption) {
  const TwoLevelHashSketch sketch = MakeSketch(500, 29);
  std::string bytes;
  sketch.SerializeCompactTo(&bytes);
  Xoshiro256StarStar rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    const size_t index = rng.NextBelow(corrupted.size());
    corrupted[index] = static_cast<char>(rng.Next());
    size_t offset = 0;
    // Must either fail cleanly or produce *some* sketch (flips can be
    // semantically valid); the requirement is no crash/overrun.
    const auto decoded = TwoLevelHashSketch::Deserialize(corrupted, &offset);
    if (decoded) {
      EXPECT_LE(offset, corrupted.size());
    }
  }
}

}  // namespace
}  // namespace setsketch
