// Tests for the Section 3.2 elementary property checks: SingletonBucket,
// IdenticalSingletonBucket, SingletonUnionBucket, and their n-ary
// generalizations.
//
// The checks are probabilistic only in one direction (a multi-element
// bucket can masquerade as a singleton with probability 2^-s); with s = 16
// that is ~1.5e-5 per check, so the deterministic assertions below are
// sound for the fixed seeds used.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/property_checks.h"
#include "core/sketch_seed.h"

namespace setsketch {
namespace {

SketchParams SmallParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  return params;
}

class PropertyCheckTest : public ::testing::Test {
 protected:
  PropertyCheckTest()
      : seed_(std::make_shared<const SketchSeed>(SmallParams(), 4242)),
        a_(seed_),
        b_(seed_) {}

  // Finds `count` distinct elements that all map to the same first-level
  // bucket, returning (level, elements).
  std::pair<int, std::vector<uint64_t>> ElementsInOneBucket(int count) {
    // Level 0 collects ~half of all elements; scan until `count` found.
    std::vector<uint64_t> found;
    for (uint64_t e = 1; found.size() < static_cast<size_t>(count); ++e) {
      if (seed_->Level(e) == 0) found.push_back(e);
    }
    return {0, found};
  }

  std::shared_ptr<const SketchSeed> seed_;
  TwoLevelHashSketch a_;
  TwoLevelHashSketch b_;
};

// ---------------------------------------------------------------------------
// BucketEmpty / SingletonBucket

TEST_F(PropertyCheckTest, EmptyBucketIsNotSingleton) {
  EXPECT_TRUE(BucketEmpty(a_, 0));
  EXPECT_FALSE(SingletonBucket(a_, 0));
}

TEST_F(PropertyCheckTest, SingleElementIsSingleton) {
  const auto [level, elements] = ElementsInOneBucket(1);
  a_.Update(elements[0], 1);
  EXPECT_FALSE(BucketEmpty(a_, level));
  EXPECT_TRUE(SingletonBucket(a_, level));
}

TEST_F(PropertyCheckTest, SingletonWithMultiplicityStillSingleton) {
  const auto [level, elements] = ElementsInOneBucket(1);
  a_.Update(elements[0], 57);  // One distinct value, high frequency.
  EXPECT_TRUE(SingletonBucket(a_, level));
}

TEST_F(PropertyCheckTest, TwoElementsAreNotSingleton) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  a_.Update(elements[1], 1);
  EXPECT_FALSE(SingletonBucket(a_, level));
}

TEST_F(PropertyCheckTest, ManyElementsAreNotSingleton) {
  const auto [level, elements] = ElementsInOneBucket(10);
  for (uint64_t e : elements) a_.Update(e, 1);
  EXPECT_FALSE(SingletonBucket(a_, level));
}

TEST_F(PropertyCheckTest, DeletionRestoresSingleton) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  a_.Update(elements[1], 1);
  ASSERT_FALSE(SingletonBucket(a_, level));
  a_.Update(elements[1], -1);  // Back to one distinct element.
  EXPECT_TRUE(SingletonBucket(a_, level));
}

// ---------------------------------------------------------------------------
// IdenticalSingletonBucket

TEST_F(PropertyCheckTest, IdenticalSingletonsDetected) {
  const auto [level, elements] = ElementsInOneBucket(1);
  a_.Update(elements[0], 1);
  b_.Update(elements[0], 3);  // Different frequency, same value.
  EXPECT_TRUE(IdenticalSingletonBucket(a_, b_, level));
}

TEST_F(PropertyCheckTest, DifferentSingletonsRejected) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  b_.Update(elements[1], 1);
  EXPECT_FALSE(IdenticalSingletonBucket(a_, b_, level));
}

TEST_F(PropertyCheckTest, IdenticalSingletonNeedsBothSingleton) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  // b empty.
  EXPECT_FALSE(IdenticalSingletonBucket(a_, b_, level));
  // b has two values.
  b_.Update(elements[0], 1);
  b_.Update(elements[1], 1);
  EXPECT_FALSE(IdenticalSingletonBucket(a_, b_, level));
}

TEST_F(PropertyCheckTest, IdenticalSingletonRejectsForeignSeeds) {
  TwoLevelHashSketch other(
      std::make_shared<const SketchSeed>(SmallParams(), 999));
  a_.Update(2, 1);
  other.Update(2, 1);
  EXPECT_FALSE(IdenticalSingletonBucket(a_, other, 0));
}

// ---------------------------------------------------------------------------
// SingletonUnionBucket (binary)

TEST_F(PropertyCheckTest, UnionSingletonOneSideEmpty) {
  const auto [level, elements] = ElementsInOneBucket(1);
  a_.Update(elements[0], 1);
  EXPECT_TRUE(SingletonUnionBucket(a_, b_, level));
  EXPECT_TRUE(SingletonUnionBucket(b_, a_, level));  // Symmetric.
}

TEST_F(PropertyCheckTest, UnionSingletonSharedValue) {
  const auto [level, elements] = ElementsInOneBucket(1);
  a_.Update(elements[0], 1);
  b_.Update(elements[0], 1);
  EXPECT_TRUE(SingletonUnionBucket(a_, b_, level));
}

TEST_F(PropertyCheckTest, UnionOfTwoDistinctValuesNotSingleton) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  b_.Update(elements[1], 1);
  EXPECT_FALSE(SingletonUnionBucket(a_, b_, level));
}

TEST_F(PropertyCheckTest, UnionBothEmptyNotSingleton) {
  EXPECT_FALSE(SingletonUnionBucket(a_, b_, 0));
}

// ---------------------------------------------------------------------------
// n-ary generalizations

TEST_F(PropertyCheckTest, GroupSeedsMatchValidation) {
  TwoLevelHashSketch c(seed_);
  EXPECT_TRUE(GroupSeedsMatch({&a_, &b_, &c}));
  EXPECT_FALSE(GroupSeedsMatch({}));
  TwoLevelHashSketch foreign(
      std::make_shared<const SketchSeed>(SmallParams(), 1234));
  EXPECT_FALSE(GroupSeedsMatch({&a_, &foreign}));
}

TEST_F(PropertyCheckTest, UnionBucketEmptyAcrossGroup) {
  TwoLevelHashSketch c(seed_);
  EXPECT_TRUE(UnionBucketEmpty({&a_, &b_, &c}, 0));
  const auto [level, elements] = ElementsInOneBucket(1);
  c.Update(elements[0], 1);
  EXPECT_FALSE(UnionBucketEmpty({&a_, &b_, &c}, level));
}

TEST_F(PropertyCheckTest, NaryUnionSingletonMatchesBinaryCheck) {
  const auto [level, elements] = ElementsInOneBucket(2);
  a_.Update(elements[0], 1);
  b_.Update(elements[0], 2);
  EXPECT_EQ(UnionSingletonBucket({&a_, &b_}, level),
            SingletonUnionBucket(a_, b_, level));
  EXPECT_TRUE(UnionSingletonBucket({&a_, &b_}, level));
  b_.Update(elements[1], 1);
  EXPECT_EQ(UnionSingletonBucket({&a_, &b_}, level),
            SingletonUnionBucket(a_, b_, level));
  EXPECT_FALSE(UnionSingletonBucket({&a_, &b_}, level));
}

TEST_F(PropertyCheckTest, NaryUnionSingletonThreeStreams) {
  TwoLevelHashSketch c(seed_);
  const auto [level, elements] = ElementsInOneBucket(3);
  // Same value spread across three streams: still a singleton union.
  a_.Update(elements[0], 1);
  b_.Update(elements[0], 4);
  c.Update(elements[0], 2);
  EXPECT_TRUE(UnionSingletonBucket({&a_, &b_, &c}, level));
  // A second value anywhere breaks it.
  c.Update(elements[1], 1);
  EXPECT_FALSE(UnionSingletonBucket({&a_, &b_, &c}, level));
}

TEST_F(PropertyCheckTest, NaryUnionSingletonAllEmptyIsFalse) {
  TwoLevelHashSketch c(seed_);
  EXPECT_FALSE(UnionSingletonBucket({&a_, &b_, &c}, 0));
}

// Randomized sweep: SingletonBucket must agree with ground truth on every
// bucket for a moderately filled sketch (error probability per bucket is
// 2^-16; over 24 buckets x 20 trials that is < 1% overall — and the seeds
// are fixed, so the test is deterministic in practice).
class SingletonSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SingletonSweepTest, AgreesWithGroundTruthPerBucket) {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  const auto seed =
      std::make_shared<const SketchSeed>(params, 5000 + GetParam());
  TwoLevelHashSketch sketch(seed);
  std::vector<int> distinct_per_level(24, 0);
  for (uint64_t e = 1; e <= 64; ++e) {
    const uint64_t elem = e * 0x9E3779B97F4A7C15ULL;
    ++distinct_per_level[static_cast<size_t>(seed->Level(elem))];
    sketch.Update(elem, 1 + (e % 2));
  }
  for (int level = 0; level < 24; ++level) {
    EXPECT_EQ(SingletonBucket(sketch, level),
              distinct_per_level[static_cast<size_t>(level)] == 1)
        << "level " << level << " holds "
        << distinct_per_level[static_cast<size_t>(level)] << " values";
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, SingletonSweepTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace setsketch
