// Tests for the (epsilon, delta) -> resource sizing rules of
// estimator_config (Theorems 3.3-3.5, 4.1 constants).

#include <cmath>
#include <gtest/gtest.h>

#include "core/estimator_config.h"

namespace setsketch {
namespace {

TEST(AccuracyTargetTest, Validity) {
  EXPECT_TRUE((AccuracyTarget{0.1, 0.05}.Valid()));
  EXPECT_FALSE((AccuracyTarget{0.0, 0.05}.Valid()));
  EXPECT_FALSE((AccuracyTarget{1.0, 0.05}.Valid()));
  EXPECT_FALSE((AccuracyTarget{0.1, 0.0}.Valid()));
  EXPECT_FALSE((AccuracyTarget{0.1, 1.0}.Valid()));
}

TEST(UnionCopiesTest, MatchesFormula) {
  // r = 256 ln(1/delta) / (7 eps^2).
  const AccuracyTarget target{0.5, 0.1};
  const double expected = 256.0 * std::log(10.0) / (7.0 * 0.25);
  EXPECT_EQ(UnionCopiesNeeded(target),
            static_cast<int>(std::ceil(expected)));
}

TEST(UnionCopiesTest, MonotoneInAccuracy) {
  EXPECT_GT(UnionCopiesNeeded({0.05, 0.05}),
            UnionCopiesNeeded({0.1, 0.05}));
  EXPECT_GT(UnionCopiesNeeded({0.1, 0.01}),
            UnionCopiesNeeded({0.1, 0.1}));
}

TEST(WitnessCopiesTest, ScalesWithUnionToResultRatio) {
  const AccuracyTarget target{0.2, 0.05};
  const int easy = WitnessCopiesNeeded(target, 2.0);
  const int hard = WitnessCopiesNeeded(target, 32.0);
  EXPECT_GT(hard, easy);
  // Linear scaling in the ratio (Theorems 3.4/3.5).
  EXPECT_NEAR(static_cast<double>(hard) / easy, 16.0, 1.0);
}

TEST(SecondLevelTest, UnionBoundSizing) {
  // 2^-s <= delta / r.
  EXPECT_EQ(SecondLevelNeeded(0.5, 1), 1);
  EXPECT_EQ(SecondLevelNeeded(0.001, 1000), 20);  // log2(1e6) ~ 19.93.
  EXPECT_GE(SecondLevelNeeded(0.01, 512), 16);    // log2(51200) ~ 15.6.
}

TEST(WitnessLevelTest, FormulaAndClamping) {
  // ceil(log2(2 * 100 / 0.5)) = ceil(log2(400)) = 9.
  EXPECT_EQ(WitnessLevel(100, 0.5, 2.0, 48), 9);
  // Larger beta raises the level.
  EXPECT_GT(WitnessLevel(100, 0.5, 8.0, 48), WitnessLevel(100, 0.5, 2.0, 48));
  // Clamped into [0, levels-1].
  EXPECT_EQ(WitnessLevel(1e15, 0.5, 2.0, 10), 9);
  EXPECT_GE(WitnessLevel(0.0, 0.5, 2.0, 10), 0);
}

TEST(ParamsForTargetTest, ProducesValidParams) {
  const AccuracyTarget target{0.1, 0.05};
  const SketchParams params = ParamsForTarget(target, 256);
  EXPECT_TRUE(params.Valid());
  EXPECT_EQ(params.first_level_kind, FirstLevelKind::kKWisePoly);
  // Theta(log 1/eps)-wise independence: log2(3/0.1) ~ 4.9 -> >= 5.
  EXPECT_GE(params.independence, 5);
  // s sized for 256 copies at delta = 0.05: log2(256/0.05) ~ 12.3 -> 13.
  EXPECT_EQ(params.num_second_level, 13);
  EXPECT_GE(params.levels, 32);
}

TEST(ParamsForTargetTest, DomainBitsControlLevels) {
  const AccuracyTarget target{0.2, 0.1};
  EXPECT_LT(ParamsForTarget(target, 64, 16).levels,
            ParamsForTarget(target, 64, 48).levels);
  EXPECT_LE(ParamsForTarget(target, 64, 62).levels, 64);
}

}  // namespace
}  // namespace setsketch
