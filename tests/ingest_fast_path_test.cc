// Tests for the ingest fast path (src/server/epoll_backend,
// src/server/ingest_arena, src/util/varint_bulk and the zero-copy
// protocol decode): the bulk varint decoder must agree byte-for-byte
// with ReadVarint on random and hostile input, the zero-copy
// PUSH_UPDATES decode must agree with the legacy owning decode down to
// the error strings, ScanFrame must agree with FrameDecoder under any
// read chunking, and the epoll backend must produce bank and WAL state
// bit-identical to the legacy thread-per-connection backend. A
// TSan-targeted suite (IngestFastPathTsan, see tools/check.sh) stresses
// concurrent push/query/shutdown through the epoll loop.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/two_level_hash_sketch.h"
#include "hash/prng.h"
#include "server/ingest_arena.h"
#include "server/protocol.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "util/varint.h"
#include "util/varint_bulk.h"

namespace setsketch {
namespace {

constexpr uint64_t kMasterSeed = 20030609;

SketchServer::Options ServerOptions(IngestBackend backend) {
  SketchServer::Options options;
  options.params.levels = 24;
  options.params.num_second_level = 16;
  options.copies = 16;
  options.seed = kMasterSeed;
  options.shards = 2;
  options.queue_capacity = 64;
  options.witness.pool_all_levels = true;
  options.backend = backend;
  return options;
}

// --- Bulk varint decode vs ReadVarint ----------------------------------

/// Reference decode of up to `count` varints via ReadVarint; returns the
/// decoded values and sets *consumed like DecodeVarintRun does.
std::vector<uint64_t> ReferenceRun(const std::string& bytes, size_t count,
                                   size_t* consumed) {
  std::vector<uint64_t> values;
  size_t offset = 0;
  while (values.size() < count) {
    uint64_t value = 0;
    size_t probe = offset;
    if (!ReadVarint(bytes, &probe, &value)) break;
    values.push_back(value);
    offset = probe;
  }
  *consumed = offset;
  return values;
}

void ExpectRunMatchesReference(const std::string& bytes, size_t count) {
  size_t want_used = 0;
  const std::vector<uint64_t> want = ReferenceRun(bytes, count, &want_used);
  std::vector<uint64_t> got(count, 0);
  size_t got_used = 0;
  const size_t n = DecodeVarintRun(
      reinterpret_cast<const uint8_t*>(bytes.data()),
      reinterpret_cast<const uint8_t*>(bytes.data()) + bytes.size(), count,
      got.data(), &got_used);
  ASSERT_EQ(n, want.size()) << "run length mismatch on " << bytes.size()
                            << " bytes";
  EXPECT_EQ(got_used, want_used);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], want[i]) << "value " << i << " differs";
  }
}

TEST(VarintBulkTest, SingleDecodeAgreesWithReadVarintOnRandomBytes) {
  Xoshiro256StarStar rng(kMasterSeed);
  for (int round = 0; round < 20000; ++round) {
    std::string bytes;
    const size_t len = rng.NextBelow(14);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    uint64_t want_value = 0;
    size_t want_offset = 0;
    const bool want_ok = ReadVarint(bytes, &want_offset, &want_value);
    uint64_t got_value = 0;
    const size_t got_len = DecodeVarint(
        reinterpret_cast<const uint8_t*>(bytes.data()),
        reinterpret_cast<const uint8_t*>(bytes.data()) + bytes.size(),
        &got_value);
    ASSERT_EQ(got_len != 0, want_ok) << "round " << round;
    if (want_ok) {
      EXPECT_EQ(got_len, want_offset);
      EXPECT_EQ(got_value, want_value);
    }
  }
}

TEST(VarintBulkTest, RunDecodeAgreesOnRandomValueStreams) {
  Xoshiro256StarStar rng(kMasterSeed + 1);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes;
    const size_t count = rng.NextBelow(200);
    for (size_t i = 0; i < count; ++i) {
      // Mix widths: small ids, medium counts, full 64-bit elements.
      uint64_t value = rng.Next();
      const int width = static_cast<int>(rng.NextBelow(4));
      if (width == 0) value &= 0x7F;
      if (width == 1) value &= 0xFFFF;
      if (width == 2) value &= 0xFFFFFFFFull;
      char tmp[kMaxVarintBytes];
      bytes.append(tmp, static_cast<size_t>(WriteVarint(tmp, value) - tmp));
    }
    ExpectRunMatchesReference(bytes, count);
    // Also ask for more than is present: the run must stop cleanly.
    ExpectRunMatchesReference(bytes, count + 1 + rng.NextBelow(4));
  }
}

TEST(VarintBulkTest, RunDecodeAgreesOnHostileTails) {
  const std::vector<std::string> hostile = {
      std::string(9, '\x80'),                    // truncated 9-byte prefix
      std::string(10, '\x80'),                   // 10th byte continues
      std::string(11, '\x80'),                   // overlong
      std::string(10, '\x80') + '\x01',          // 11-byte varint
      "\x80",                                    // lone continuation
      std::string(9, '\xFF'),                    // truncated, bits set
      std::string(9, '\xFF') + '\x7F',           // legal 10-byte varint
      std::string(9, '\xFF') + '\x01',           // legal, top bit only
      std::string(9, '\xFF') + '\xFF' + '\x00',  // continues past 10
  };
  Xoshiro256StarStar rng(kMasterSeed + 2);
  for (int round = 0; round < 4000; ++round) {
    // Valid prefix, one hostile tail, then (sometimes) valid suffix: the
    // run must stop exactly where ReadVarint stops, never resync.
    std::string bytes;
    size_t valid = rng.NextBelow(40);
    for (size_t i = 0; i < valid; ++i) {
      char tmp[kMaxVarintBytes];
      uint64_t value = rng.Next() >> (8 * rng.NextBelow(8));
      bytes.append(tmp, static_cast<size_t>(WriteVarint(tmp, value) - tmp));
    }
    bytes += hostile[rng.NextBelow(hostile.size())];
    if (rng.NextBelow(2) == 0) {
      char tmp[kMaxVarintBytes];
      bytes.append(tmp, static_cast<size_t>(WriteVarint(tmp, 5) - tmp));
    }
    ExpectRunMatchesReference(bytes, valid + 4);
  }
}

TEST(VarintBulkTest, RunDecodeAgreesOnRandomByteSoup) {
  Xoshiro256StarStar rng(kMasterSeed + 3);
  for (int round = 0; round < 4000; ++round) {
    std::string bytes;
    const size_t len = rng.NextBelow(120);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ExpectRunMatchesReference(bytes, 1 + rng.NextBelow(64));
  }
}

// --- Zero-copy PUSH_UPDATES decode vs the legacy owning decode ---------

UpdateBatch SampleBatch(Xoshiro256StarStar* rng) {
  UpdateBatch batch;
  const size_t num_names = 1 + rng->NextBelow(5);
  for (size_t i = 0; i < num_names; ++i) {
    std::string name = "stream-";
    name.push_back(static_cast<char>('a' + i));
    if (rng->NextBelow(8) == 0) name.append(rng->NextBelow(200), 'x');
    batch.stream_names.push_back(std::move(name));
  }
  const size_t num_updates = rng->NextBelow(300);
  for (size_t i = 0; i < num_updates; ++i) {
    batch.updates.push_back(
        Update{static_cast<StreamId>(rng->NextBelow(num_names)),
               rng->Next() >> (8 * rng->NextBelow(8)),
               rng->NextBelow(2) == 0 ? int64_t{3} : int64_t{-1}});
  }
  if (rng->NextBelow(2) == 0) {
    batch.site_id = "site-";
    batch.site_id.append(1 + rng->NextBelow(kMaxSiteIdBytes - 5), 's');
    batch.sequence = rng->Next();
  }
  // A third of the corpus carries backend tags (the optional trailing
  // PUSH section), so both decoders fuzz the tagged layout too.
  if (rng->NextBelow(3) == 0) {
    for (size_t i = 0; i < num_names; ++i) {
      batch.stream_backends.push_back(
          static_cast<uint8_t>(rng->NextBelow(3)));
    }
  }
  return batch;
}

/// Both decoders must agree on ok/error-string; on success the view
/// decode must read back the exact same batch.
void ExpectDecodersAgree(const std::string& payload) {
  UpdateBatch legacy;
  std::string legacy_error;
  const bool legacy_ok = DecodePushUpdates(payload, &legacy, &legacy_error);
  UpdateBatchView view;
  std::string view_error;
  const bool view_ok =
      DecodePushUpdates(std::string_view(payload), &view, &view_error);
  ASSERT_EQ(view_ok, legacy_ok) << "legacy: " << legacy_error
                                << " view: " << view_error;
  if (!legacy_ok) {
    EXPECT_EQ(view_error, legacy_error);
    return;
  }
  EXPECT_EQ(view.site_id, legacy.site_id);
  EXPECT_EQ(view.sequence, legacy.sequence);
  ASSERT_EQ(view.stream_names.size(), legacy.stream_names.size());
  for (size_t i = 0; i < view.stream_names.size(); ++i) {
    EXPECT_EQ(view.stream_names[i], legacy.stream_names[i]);
  }
  ASSERT_EQ(view.updates.size(), legacy.updates.size());
  for (size_t i = 0; i < view.updates.size(); ++i) {
    EXPECT_EQ(view.updates[i].stream, legacy.updates[i].stream);
    EXPECT_EQ(view.updates[i].element, legacy.updates[i].element);
    EXPECT_EQ(view.updates[i].delta, legacy.updates[i].delta);
  }
  // Both decoders normalize tags to one per stream (0 = default).
  EXPECT_EQ(view.stream_backends, legacy.stream_backends);
  EXPECT_EQ(legacy.stream_backends.size(), legacy.stream_names.size());
}

TEST(ZeroCopyDecodeTest, AgreesWithLegacyOnRandomBatches) {
  Xoshiro256StarStar rng(kMasterSeed + 10);
  for (int round = 0; round < 400; ++round) {
    const UpdateBatch batch = SampleBatch(&rng);
    ExpectDecodersAgree(
        EncodePushUpdates(batch, batch.site_id, batch.sequence));
  }
}

TEST(ZeroCopyDecodeTest, AgreesWithLegacyOnEveryTruncation) {
  Xoshiro256StarStar rng(kMasterSeed + 11);
  const UpdateBatch batch = SampleBatch(&rng);
  const std::string payload =
      EncodePushUpdates(batch, batch.site_id, batch.sequence);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    ExpectDecodersAgree(payload.substr(0, cut));
  }
}

TEST(ZeroCopyDecodeTest, AgreesWithLegacyOnMutatedPayloads) {
  Xoshiro256StarStar rng(kMasterSeed + 12);
  for (int round = 0; round < 2000; ++round) {
    const UpdateBatch batch = SampleBatch(&rng);
    std::string payload =
        EncodePushUpdates(batch, batch.site_id, batch.sequence);
    const size_t flips = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < flips && !payload.empty(); ++i) {
      payload[rng.NextBelow(payload.size())] ^=
          static_cast<char>(1u << rng.NextBelow(8));
    }
    ExpectDecodersAgree(payload);
  }
}

TEST(ZeroCopyDecodeTest, AgreesWithLegacyOnRandomPayloadSoup) {
  Xoshiro256StarStar rng(kMasterSeed + 13);
  for (int round = 0; round < 4000; ++round) {
    std::string payload;
    const size_t len = rng.NextBelow(160);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ExpectDecodersAgree(payload);
  }
}

// --- ScanFrame vs FrameDecoder under arbitrary chunking ----------------

TEST(ZeroCopyDecodeTest, ScanFrameAgreesWithFrameDecoderUnderChunking) {
  Xoshiro256StarStar rng(kMasterSeed + 14);
  for (int round = 0; round < 300; ++round) {
    // A stream of small frames, occasionally ending in corruption.
    std::string wire;
    const size_t num_frames = rng.NextBelow(8);
    for (size_t i = 0; i < num_frames; ++i) {
      std::string payload;
      const size_t len = rng.NextBelow(40);
      for (size_t j = 0; j < len; ++j) {
        payload.push_back(static_cast<char>(rng.NextBelow(256)));
      }
      wire += EncodeFrame(Opcode::kPing, payload);
    }
    const bool corrupt = rng.NextBelow(2) == 0;
    if (corrupt) {
      std::string tail = EncodeFrame(Opcode::kPing, "x");
      tail[rng.NextBelow(8)] ^= static_cast<char>(0xFF);
      wire += tail;
    }

    // Reference: FrameDecoder fed in random chunks.
    FrameDecoder decoder;
    std::vector<std::string> want_payloads;
    bool want_error = false;
    std::string want_message;
    size_t offset = 0;
    while (offset < wire.size() && !want_error) {
      const size_t chunk =
          1 + rng.NextBelow(std::min<size_t>(wire.size() - offset, 61));
      decoder.Feed(wire.data() + offset, chunk);
      offset += chunk;
      while (true) {
        Frame frame;
        const FrameDecoder::Status status = decoder.Next(&frame);
        if (status == FrameDecoder::Status::kFrame) {
          want_payloads.push_back(frame.payload);
        } else if (status == FrameDecoder::Status::kError) {
          want_error = true;
          want_message = decoder.error_message();
          break;
        } else {
          break;
        }
      }
    }

    // ScanFrame over an accumulating buffer, arena-style.
    std::vector<std::string> got_payloads;
    bool got_error = false;
    std::string got_message;
    std::string buffer = wire;
    size_t parsed = 0;
    while (parsed < buffer.size()) {
      FrameView frame;
      size_t frame_bytes = 0;
      WireError wire_error;
      std::string message;
      const FrameScanStatus status =
          ScanFrame(std::string_view(buffer).substr(parsed), &frame,
                    &frame_bytes, &wire_error, &message);
      if (status == FrameScanStatus::kFrame) {
        got_payloads.push_back(std::string(frame.payload));
        parsed += frame_bytes;
      } else if (status == FrameScanStatus::kError) {
        got_error = true;
        got_message = message;
        break;
      } else {
        break;
      }
    }

    ASSERT_EQ(got_payloads.size(), want_payloads.size()) << "round "
                                                         << round;
    for (size_t i = 0; i < got_payloads.size(); ++i) {
      EXPECT_EQ(got_payloads[i], want_payloads[i]);
    }
    EXPECT_EQ(got_error, want_error);
    EXPECT_EQ(got_message, want_message);
  }
}

// --- IngestArena -------------------------------------------------------

TEST(IngestArenaTest, GrowsCompactsAndTracksHighWatermark) {
  IngestArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.Unparsed().size(), 0u);

  char* w = arena.WritePtr(100);
  std::memcpy(w, std::string(100, 'a').data(), 100);
  arena.CommitRead(100);
  EXPECT_EQ(arena.Unparsed(), std::string(100, 'a'));
  EXPECT_EQ(arena.high_watermark(), 100u);

  arena.Consume(40);
  EXPECT_EQ(arena.Unparsed(), std::string(60, 'a'));

  // Growth preserves the unparsed suffix (compaction moved it down).
  const size_t big = 1u << 20;
  w = arena.WritePtr(big);
  std::memcpy(w, std::string(big, 'b').data(), big);
  arena.CommitRead(big);
  EXPECT_GE(arena.capacity(), big + 60);
  const std::string_view unparsed = arena.Unparsed();
  ASSERT_EQ(unparsed.size(), 60 + big);
  EXPECT_EQ(unparsed.substr(0, 60), std::string(60, 'a'));
  EXPECT_EQ(unparsed.substr(60), std::string(big, 'b'));
  EXPECT_EQ(arena.high_watermark(), big + 60);

  // Fully drained: offsets reset, shrink releases an oversized buffer.
  arena.Consume(60 + big);
  EXPECT_EQ(arena.Unparsed().size(), 0u);
  arena.MaybeShrink(1024);
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.high_watermark(), big + 60);

  // A drained arena under the idle threshold keeps its buffer.
  w = arena.WritePtr(64);
  std::memcpy(w, "xy", 2);
  arena.CommitRead(2);
  arena.Consume(2);
  const size_t small_capacity = arena.capacity();
  EXPECT_GT(small_capacity, 0u);
  arena.MaybeShrink(1u << 20);
  EXPECT_EQ(arena.capacity(), small_capacity);
}

// --- Epoll backend end to end ------------------------------------------

TEST(EpollIngestTest, ServesPushQueryStatsOverEpollBackend) {
  SketchServer server(ServerOptions(IngestBackend::kEpoll));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto client = SketchClient::Connect("127.0.0.1", server.port(), &error);
  ASSERT_NE(client, nullptr) << error;

  Xoshiro256StarStar rng(kMasterSeed + 20);
  UpdateBatch batch;
  batch.stream_names = {"A", "B"};
  for (int i = 0; i < 5000; ++i) {
    batch.updates.push_back(Update{static_cast<StreamId>(i % 2),
                                   rng.Next() % 4096,
                                   i % 7 == 0 ? int64_t{-1} : int64_t{2}});
  }
  const SketchClient::Status push = client->PushUpdatesWithRetry(batch);
  ASSERT_TRUE(push.ok) << push.error;
  EXPECT_EQ(push.accepted, batch.updates.size());

  const QueryResultInfo answer = client->Query("A | B");
  EXPECT_TRUE(answer.ok) << answer.error;
  EXPECT_GT(answer.estimate, 0.0);

  std::string stats_text;
  ASSERT_TRUE(client->Stats(&stats_text).ok);
  EXPECT_NE(stats_text.find("ingest_backend epoll"), std::string::npos)
      << stats_text;

  ASSERT_TRUE(client->Shutdown().ok);
  server.Wait();
  const SketchServer::StatsSnapshot stats = server.stats();
  EXPECT_GT(stats.ingest_bytes_read, 0u);
  EXPECT_GT(stats.ingest_read_calls, 0u);
  EXPECT_GT(stats.ingest_max_frames_per_read, 0u);
  EXPECT_GT(stats.ingest_arena_hwm_bytes, 0u);
  EXPECT_EQ(stats.updates_applied, batch.updates.size());
}

/// Pushes a deterministic churned workload and returns the server's
/// final bank plus its WAL directory bytes (path -> contents).
struct IngestOutcome {
  std::vector<std::string> stream_names;
  std::vector<std::string> serialized_banks;
  std::map<std::string, std::string> wal_files;
};

IngestOutcome RunWorkload(IngestBackend backend,
                          const std::filesystem::path& wal_dir) {
  std::filesystem::remove_all(wal_dir);
  SketchServer::Options options = ServerOptions(backend);
  options.wal_dir = wal_dir.string();
  options.wal_fsync = false;
  SketchServer server(options);
  std::string error;
  EXPECT_TRUE(server.Start(&error)) << error;

  SketchClient::Options client_options;
  client_options.port = server.port();
  client_options.site_id = "identity-site";
  auto client = SketchClient::Connect(client_options, &error);
  EXPECT_NE(client, nullptr) << error;

  Xoshiro256StarStar rng(kMasterSeed + 21);
  for (int frame = 0; frame < 40; ++frame) {
    UpdateBatch batch;
    batch.stream_names = {"A", "B", "C"};
    const size_t count = 1 + rng.NextBelow(700);
    for (size_t i = 0; i < count; ++i) {
      batch.updates.push_back(
          Update{static_cast<StreamId>(rng.NextBelow(3)), rng.Next() % 9999,
                 rng.NextBelow(5) == 0 ? int64_t{-1} : int64_t{1}});
    }
    const SketchClient::Status status = client->PushUpdatesWithRetry(batch);
    EXPECT_TRUE(status.ok) << status.error;
  }
  client->Shutdown();
  server.Wait();

  IngestOutcome outcome;
  outcome.stream_names = server.bank().StreamNames();
  for (const std::string& name : outcome.stream_names) {
    std::string bytes;
    for (const TwoLevelHashSketch& sketch : server.bank().Sketches(name)) {
      sketch.SerializeTo(&bytes);
    }
    outcome.serialized_banks.push_back(std::move(bytes));
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(wal_dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    outcome.wal_files[entry.path().filename().string()] =
        std::move(contents);
  }
  std::filesystem::remove_all(wal_dir);
  return outcome;
}

TEST(EpollIngestTest, BankAndWalBitIdenticalToLegacyBackend) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "setsketch_identity_wal";
  const IngestOutcome legacy =
      RunWorkload(IngestBackend::kThreaded, base / "legacy");
  const IngestOutcome fast =
      RunWorkload(IngestBackend::kEpoll, base / "fast");

  ASSERT_EQ(fast.stream_names, legacy.stream_names);
  ASSERT_EQ(fast.serialized_banks.size(), legacy.serialized_banks.size());
  for (size_t i = 0; i < fast.serialized_banks.size(); ++i) {
    EXPECT_EQ(fast.serialized_banks[i], legacy.serialized_banks[i])
        << "bank state differs for stream " << fast.stream_names[i];
  }
  ASSERT_EQ(fast.wal_files.size(), legacy.wal_files.size());
  for (const auto& [name, contents] : legacy.wal_files) {
    const auto it = fast.wal_files.find(name);
    ASSERT_NE(it, fast.wal_files.end()) << "missing WAL file " << name;
    EXPECT_EQ(it->second, contents) << "WAL bytes differ in " << name;
  }
  std::filesystem::remove_all(base);
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

std::string RecvFrame(int fd) {
  std::string bytes;
  char tmp[4096];
  while (true) {
    if (bytes.size() >= 12) {
      uint32_t payload_len = 0;
      std::memcpy(&payload_len, bytes.data() + 8, sizeof(payload_len));
      if (bytes.size() >= 12 + payload_len) {
        return bytes.substr(0, 12 + payload_len);
      }
    }
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return bytes;
    bytes.append(tmp, static_cast<size_t>(n));
  }
}

TEST(EpollIngestTest, ReassemblesFramesTornAcrossReads) {
  SketchServer server(ServerOptions(IngestBackend::kEpoll));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int fd = ConnectTo(server.port());

  UpdateBatch batch;
  batch.stream_names = {"torn"};
  for (int i = 0; i < 100; ++i) {
    batch.updates.push_back(Update{0, static_cast<uint64_t>(i), 1});
  }
  const std::string wire =
      EncodeFrame(Opcode::kPushUpdates, EncodePushUpdates(batch));
  // Dribble the frame a few bytes at a time so the arena sees many
  // partial reads before a complete frame materializes.
  for (size_t offset = 0; offset < wire.size();) {
    const size_t chunk = std::min<size_t>(7, wire.size() - offset);
    ASSERT_EQ(::send(fd, wire.data() + offset, chunk, 0),
              static_cast<ssize_t>(chunk));
    offset += chunk;
  }
  const std::string response = RecvFrame(fd);
  ASSERT_GE(response.size(), 12u);
  EXPECT_EQ(response[5], static_cast<char>(Opcode::kAck));
  ::close(fd);
  server.Stop();
  EXPECT_EQ(server.stats().updates_applied, batch.updates.size());
}

TEST(EpollIngestTest, ErrorBudgetClosesAbusiveConnection) {
  SketchServer::Options options = ServerOptions(IngestBackend::kEpoll);
  options.max_connection_errors = 3;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int fd = ConnectTo(server.port());

  // Valid frames whose payloads are garbage: per-frame recoverable
  // errors that accrue to the connection's budget.
  const std::string bad = EncodeFrame(Opcode::kPushUpdates, "garbage");
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
              static_cast<ssize_t>(bad.size()));
  }
  // Read until the server closes, then reassemble what it sent: three
  // per-frame errors, then TOO_MANY_ERRORS, then EOF.
  FrameDecoder decoder;
  char tmp[4096];
  while (true) {
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) break;
    decoder.Feed(tmp, static_cast<size_t>(n));
  }
  std::vector<Frame> responses;
  Frame frame;
  while (decoder.Next(&frame) == FrameDecoder::Status::kFrame) {
    responses.push_back(frame);
  }
  ASSERT_EQ(responses.size(), 4u);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].opcode, Opcode::kError) << "frame " << i;
    ErrorInfo info;
    ASSERT_TRUE(DecodeError(responses[i].payload, &info));
    EXPECT_EQ(info.code, i + 1 < responses.size()
                             ? WireError::kBadPayload
                             : WireError::kTooManyErrors);
  }
  ::close(fd);
  server.Stop();
}

TEST(EpollIngestTest, HeaderCorruptionPoisonsStream) {
  SketchServer server(ServerOptions(IngestBackend::kEpoll));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int fd = ConnectTo(server.port());

  std::string bad = EncodeFrame(Opcode::kPing, "");
  bad[0] ^= static_cast<char>(0xFF);  // break the magic
  ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
            static_cast<ssize_t>(bad.size()));
  const std::string response = RecvFrame(fd);
  ASSERT_GE(response.size(), 12u);
  EXPECT_EQ(response[5], static_cast<char>(Opcode::kError));
  char tmp[8];
  EXPECT_EQ(::recv(fd, tmp, sizeof(tmp), 0), 0);
  ::close(fd);
  server.Stop();
}

// --- TSan-targeted concurrency stress (see tools/check.sh) -------------

TEST(IngestFastPathTsan, ConcurrentPushQueryShutdownOverEpoll) {
  SketchServer::Options options = ServerOptions(IngestBackend::kEpoll);
  options.io_threads = 2;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> pushers;
  std::atomic<uint64_t> pushed{0};
  for (int t = 0; t < 3; ++t) {
    pushers.emplace_back([port, t, &stop, &pushed] {
      std::string connect_error;
      SketchClient::Options client_options;
      client_options.port = port;
      client_options.site_id = "tsan-site-" + std::to_string(t);
      auto client = SketchClient::Connect(client_options, &connect_error);
      if (client == nullptr) return;
      Xoshiro256StarStar rng(kMasterSeed + 30 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        UpdateBatch batch;
        batch.stream_names = {"A", "B"};
        for (int i = 0; i < 128; ++i) {
          batch.updates.push_back(
              Update{static_cast<StreamId>(rng.NextBelow(2)),
                     rng.Next() % 2048, 1});
        }
        const SketchClient::Status status =
            client->PushUpdatesWithRetry(batch);
        if (!status.ok) break;
        pushed += batch.updates.size();
      }
    });
  }
  std::thread querier([port, &stop] {
    std::string connect_error;
    auto client =
        SketchClient::Connect("127.0.0.1", port, &connect_error);
    if (client == nullptr) return;
    while (!stop.load(std::memory_order_relaxed)) {
      client->Query("A & B");
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& t : pushers) t.join();
  querier.join();
  server.Stop();
  EXPECT_EQ(server.stats().updates_applied, pushed.load());
}

}  // namespace
}  // namespace setsketch
