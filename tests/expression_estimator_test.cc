// Tests for the Section 4 general set-expression estimator.

#include <memory>

#include <gtest/gtest.h>

#include "core/set_difference_estimator.h"
#include "core/set_expression_estimator.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "expr/parser.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

ExprPtr Parse(const std::string& text) {
  ParseResult p = ParseExpression(text);
  EXPECT_TRUE(p.ok()) << p.error;
  return p.expression;
}

TEST(ExpressionEstimatorTest, RejectsUnknownStreams) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(512, 1), 32, 2);
  const ExprPtr expr = Parse("S0 & Missing");
  const ExpressionEstimate est = EstimateSetExpression(
      *expr, {"S0", "S1"}, bank->Groups({"S0", "S1"}));
  EXPECT_FALSE(est.ok);
}

TEST(ExpressionEstimatorTest, RejectsEmptyGroups) {
  const ExprPtr expr = Parse("A");
  EXPECT_FALSE(EstimateSetExpression(*expr, {"A"}, {}).ok);
}

TEST(ExpressionEstimatorTest, EmptyStreamsGiveZero) {
  SketchBank bank(SketchFamily(TestParams(), 32, 5));
  bank.AddStream("A");
  bank.AddStream("B");
  const ExprPtr expr = Parse("A & B");
  const ExpressionEstimate est = EstimateSetExpression(*expr, bank);
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.expression.estimate, 0.0);
}

TEST(ExpressionEstimatorTest, SingleStreamMatchesUnionEstimator) {
  VennPartitionGenerator gen(1, {0.0, 1.0});
  const PartitionedDataset data = gen.Generate(4096, 7);
  const auto bank = BankFromDataset(data, 256, 9);
  const ExprPtr expr = Parse("S0");
  const ExpressionEstimate est = EstimateSetExpression(*expr, *bank);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.expression.estimate,
                          static_cast<double>(data.UnionSize())),
            0.3);
}

// The expression estimator must agree with the specialized binary
// estimators on two-stream inputs (same witness machinery).
TEST(ExpressionEstimatorTest, MatchesBinaryIntersectionEstimator) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 11);
  const auto bank = BankFromDataset(data, 384, 13);
  const auto pairs = bank->Groups({"S0", "S1"});

  const ExpressionEstimate expr_est =
      EstimateSetExpression(*Parse("S0 & S1"), *bank);
  ASSERT_TRUE(expr_est.ok);

  const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
  const WitnessEstimate bin_est = EstimateSetIntersection(pairs, ue.estimate);
  ASSERT_TRUE(bin_est.ok);

  // Same level, same valid-observation count, same witness count.
  EXPECT_EQ(expr_est.expression.level, bin_est.level);
  EXPECT_EQ(expr_est.expression.valid_observations,
            bin_est.valid_observations);
  EXPECT_EQ(expr_est.expression.witnesses, bin_est.witnesses);
}

TEST(ExpressionEstimatorTest, MatchesBinaryDifferenceEstimator) {
  VennPartitionGenerator gen(2, BinaryDifferenceProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 15);
  const auto bank = BankFromDataset(data, 384, 17);
  const auto pairs = bank->Groups({"S0", "S1"});

  const ExpressionEstimate expr_est =
      EstimateSetExpression(*Parse("S0 - S1"), *bank);
  ASSERT_TRUE(expr_est.ok);
  const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
  const WitnessEstimate bin_est = EstimateSetDifference(pairs, ue.estimate);
  ASSERT_TRUE(bin_est.ok);
  EXPECT_EQ(expr_est.expression.witnesses, bin_est.witnesses);
  EXPECT_EQ(expr_est.expression.valid_observations,
            bin_est.valid_observations);
}

// The paper's three-stream experiment: (A - B) n C.
TEST(ExpressionEstimatorTest, ThreeStreamExpressionAccuracy) {
  VennPartitionGenerator gen(3, ExprDiffIntersectProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 19);
  const auto bank = BankFromDataset(data, 512, 21);
  const int64_t exact = static_cast<int64_t>(data.regions[5].size());
  const ExpressionEstimate est =
      EstimateSetExpression(*Parse("(S0 - S1) & S2"), *bank);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.expression.estimate,
                          static_cast<double>(exact)),
            0.55);
}

TEST(ExpressionEstimatorTest, UnionOnlyExpression) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(4096, 23);
  const auto bank = BankFromDataset(data, 256, 25);
  const ExpressionEstimate est =
      EstimateSetExpression(*Parse("S0 | S1"), *bank);
  ASSERT_TRUE(est.ok);
  // |S0 u S1| = union size; every valid witness satisfies B(E).
  EXPECT_DOUBLE_EQ(est.expression.WitnessFraction(), 1.0);
  EXPECT_LT(RelativeError(est.expression.estimate,
                          static_cast<double>(data.UnionSize())),
            0.4);
}

TEST(ExpressionEstimatorTest, SelfDifferenceIsZero) {
  VennPartitionGenerator gen(1, {0.0, 1.0});
  const auto bank = BankFromDataset(gen.Generate(2048, 27), 128, 29);
  const ExpressionEstimate est =
      EstimateSetExpression(*Parse("S0 - S0"), *bank);
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.expression.estimate, 0.0);
}

TEST(ExpressionEstimatorTest, ComplementWithinUnionSums) {
  // |A - B| + |A & B| should approximately equal |A|.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.4));
  const PartitionedDataset data = gen.Generate(8192, 31);
  const auto bank = BankFromDataset(data, 512, 33);
  const ExpressionEstimate diff =
      EstimateSetExpression(*Parse("S0 - S1"), *bank);
  const ExpressionEstimate inter =
      EstimateSetExpression(*Parse("S0 & S1"), *bank);
  const ExpressionEstimate a_only =
      EstimateSetExpression(*Parse("S0"), *bank);
  ASSERT_TRUE(diff.ok);
  ASSERT_TRUE(inter.ok);
  ASSERT_TRUE(a_only.ok);
  const double sum = diff.expression.estimate + inter.expression.estimate;
  EXPECT_LT(RelativeError(sum, a_only.expression.estimate), 0.5);
}

// Deeper expressions still produce sane estimates.
TEST(ExpressionEstimatorTest, FourStreamNestedExpression) {
  // Streams: A=0, B=1, C=2, D=3 with explicit region probabilities.
  // Make D = A u B u C's complement slice plus overlap with A.
  std::vector<double> probs(16, 0.0);
  probs[1] = 0.2;   // A only
  probs[2] = 0.2;   // B only
  probs[4] = 0.2;   // C only
  probs[8] = 0.2;   // D only
  probs[9] = 0.1;   // A and D
  probs[15] = 0.1;  // all four
  VennPartitionGenerator gen(4, probs);
  const PartitionedDataset data = gen.Generate(8192, 35);
  const auto bank = BankFromDataset(data, 512, 37);
  // E = (A & D) - (B | C): regions with bits A,D set, B,C clear -> mask 9.
  const int64_t exact = static_cast<int64_t>(data.regions[9].size());
  const ExpressionEstimate est =
      EstimateSetExpression(*Parse("(S0 & S3) - (S1 | S2)"), *bank);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.expression.estimate,
                          static_cast<double>(exact)),
            0.8);
}

}  // namespace
}  // namespace setsketch
