// Tests for CountMin-style frequency point queries over 2-level hash
// sketches.

#include <gtest/gtest.h>

#include "core/frequency_estimator.h"
#include "core/sketch_bank.h"
#include "stream/exact_set_store.h"
#include "hash/prng.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

TEST(FrequencyTest, ExactOnSparseSketch) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 3);
  TwoLevelHashSketch sketch(seed);
  sketch.Update(42, 7);
  sketch.Update(43, 2);
  EXPECT_EQ(FrequencyUpperBound(sketch, 42), 7);
  EXPECT_EQ(FrequencyUpperBound(sketch, 43), 2);
}

TEST(FrequencyTest, AbsentElementWithEmptyBucketIsZero) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 5);
  TwoLevelHashSketch sketch(seed);
  std::vector<uint64_t> present;
  for (uint64_t e = 0; e < 3; ++e) {
    present.push_back(e * 7919 + 1);
    sketch.Update(present.back(), 1);
  }
  // Find an absent element whose first-level bucket holds none of the
  // present ones: its bound must be exactly 0.
  for (uint64_t candidate = 1000; candidate < 1100; ++candidate) {
    bool shares_level = false;
    for (uint64_t e : present) {
      shares_level |= seed->Level(e) == seed->Level(candidate);
    }
    if (!shares_level) {
      EXPECT_EQ(FrequencyUpperBound(sketch, candidate), 0);
      return;
    }
  }
  FAIL() << "no candidate with a private bucket found";
}

TEST(FrequencyTest, NeverUnderestimates) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 7);
  TwoLevelHashSketch sketch(seed);
  ExactSetStore exact(1);
  Xoshiro256StarStar rng(9);
  std::vector<uint64_t> elements;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t e = rng.Next() & 0xFFFF;  // Small domain: collisions.
    const int64_t delta = 1 + static_cast<int64_t>(rng.NextBelow(3));
    elements.push_back(e);
    sketch.Update(e, delta);
    exact.Apply(Insert(0, e, delta));
  }
  for (uint64_t e : elements) {
    EXPECT_GE(FrequencyUpperBound(sketch, e), exact.NetFrequency(0, e));
  }
}

TEST(FrequencyTest, DeletionsLowerTheBound) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 11);
  TwoLevelHashSketch sketch(seed);
  sketch.Update(100, 10);
  EXPECT_EQ(FrequencyUpperBound(sketch, 100), 10);
  sketch.Update(100, -6);
  EXPECT_EQ(FrequencyUpperBound(sketch, 100), 4);
  sketch.Update(100, -4);
  EXPECT_EQ(FrequencyUpperBound(sketch, 100), 0);
}

TEST(FrequencyTest, MoreCopiesTightenTheBound) {
  // Dense single sketch overestimates a hot element less often when the
  // min runs across many copies.
  SketchParams params = TestParams(/*levels=*/8, /*s=*/4);
  SketchBank bank(SketchFamily(params, 32, 13));
  bank.AddStream("A");
  ExactSetStore exact(1);
  Xoshiro256StarStar rng(15);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t e = rng.NextBelow(256);
    bank.Apply("A", e, 1);
    exact.Apply(Insert(0, e));
  }
  const auto& sketches = bank.Sketches("A");
  int64_t single_excess = 0, multi_excess = 0;
  for (uint64_t e = 0; e < 256; ++e) {
    const int64_t truth = exact.NetFrequency(0, e);
    single_excess += FrequencyUpperBound(sketches[0], e) - truth;
    multi_excess += EstimateFrequency(sketches, e) - truth;
    EXPECT_GE(EstimateFrequency(sketches, e), truth);
  }
  EXPECT_LE(multi_excess, single_excess);
}

TEST(FrequencyTest, EmptyInputsGiveZero) {
  EXPECT_EQ(EstimateFrequency(std::vector<const TwoLevelHashSketch*>{}, 5),
            0);
}

}  // namespace
}  // namespace setsketch
