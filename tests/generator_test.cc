// Tests for the Section 5.1 synthetic data generators: Venn-partition
// assignment, target-ratio probability helpers, churn injection, Zipf.

#include <cmath>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "stream/exact_set_store.h"
#include "stream/stream_generator.h"

namespace setsketch {
namespace {

TEST(ProbHelpersTest, BinaryIntersectionSumsToOne) {
  for (double ratio : {0.0, 0.1, 0.5, 1.0}) {
    const std::vector<double> probs = BinaryIntersectionProbs(ratio);
    ASSERT_EQ(probs.size(), 4u);
    EXPECT_DOUBLE_EQ(probs[0], 0.0);
    EXPECT_NEAR(probs[1] + probs[2] + probs[3], 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(probs[3], ratio);
    EXPECT_DOUBLE_EQ(probs[1], probs[2]);  // Equal stream sizes.
  }
}

TEST(ProbHelpersTest, BinaryDifferenceTargetsRegionOne) {
  const std::vector<double> probs = BinaryDifferenceProbs(0.25);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_DOUBLE_EQ(probs[1], 0.25);        // A only == A - B.
  EXPECT_DOUBLE_EQ(probs[2], 0.25);        // Equal sizes.
  EXPECT_DOUBLE_EQ(probs[3], 0.5);
}

TEST(ProbHelpersTest, ExprProbsEqualizeStreamSizes) {
  for (double ratio : {0.05, 0.2, 0.5}) {
    const std::vector<double> probs = ExprDiffIntersectProbs(ratio);
    ASSERT_EQ(probs.size(), 8u);
    double total = 0;
    for (double p : probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(probs[5], ratio);  // (A - B) n C region.
    // Expected relative sizes of A, B, C.
    double a = 0, b = 0, c = 0;
    for (int mask = 1; mask < 8; ++mask) {
      if (mask & 1) a += probs[static_cast<size_t>(mask)];
      if (mask & 2) b += probs[static_cast<size_t>(mask)];
      if (mask & 4) c += probs[static_cast<size_t>(mask)];
    }
    EXPECT_NEAR(a, b, 1e-12);
    EXPECT_NEAR(b, c, 1e-12);
  }
}

TEST(VennGeneratorTest, RealizedRegionSizesMatchProbabilities) {
  const int64_t u = 1 << 16;
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(u, /*seed=*/7);
  // De-dup can shave a little off u (32-bit domain, 2^16 draws).
  EXPECT_GT(data.UnionSize(), u - 200);
  EXPECT_LE(data.UnionSize(), u);
  const double n = static_cast<double>(data.UnionSize());
  EXPECT_NEAR(static_cast<double>(data.regions[3].size()) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(data.regions[1].size()) / n, 0.375, 0.02);
  EXPECT_NEAR(static_cast<double>(data.regions[2].size()) / n, 0.375, 0.02);
}

TEST(VennGeneratorTest, ElementsAreDistinctAcrossRegions) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(1 << 14, 9);
  std::set<uint64_t> all;
  for (const auto& region : data.regions) {
    for (uint64_t e : region) {
      EXPECT_TRUE(all.insert(e).second) << "duplicate element " << e;
    }
  }
}

TEST(VennGeneratorTest, DeterministicPerSeed) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.3));
  const PartitionedDataset a = gen.Generate(4096, 11);
  const PartitionedDataset b = gen.Generate(4096, 11);
  for (size_t mask = 0; mask < a.regions.size(); ++mask) {
    EXPECT_EQ(a.regions[mask], b.regions[mask]);
  }
  const PartitionedDataset c = gen.Generate(4096, 12);
  EXPECT_NE(a.regions[3], c.regions[3]);
}

TEST(VennGeneratorTest, CountWhereMatchesExpressionSemantics) {
  VennPartitionGenerator gen(3, ExprDiffIntersectProbs(0.2));
  const PartitionedDataset data = gen.Generate(1 << 14, 13);
  // (A - B) n C == region mask 5 exactly.
  const int64_t expr = data.CountWhere([](uint32_t mask) {
    const bool in_a = mask & 1, in_b = mask & 2, in_c = mask & 4;
    return in_a && !in_b && in_c;
  });
  EXPECT_EQ(expr, static_cast<int64_t>(data.regions[5].size()));
  const double ratio =
      static_cast<double>(expr) / static_cast<double>(data.UnionSize());
  EXPECT_NEAR(ratio, 0.2, 0.02);
}

TEST(VennGeneratorTest, ToInsertUpdatesMatchesMembership) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.4));
  const PartitionedDataset data = gen.Generate(2048, 17);
  const std::vector<Update> updates = data.ToInsertUpdates(3);
  ExactSetStore store(2);
  store.ApplyAll(updates);
  EXPECT_EQ(store.DistinctCount(0), data.StreamSize(0));
  EXPECT_EQ(store.DistinctCount(1), data.StreamSize(1));
  // Every "both" element must be in both streams.
  for (uint64_t e : data.regions[3]) {
    EXPECT_TRUE(store.Contains(0, e));
    EXPECT_TRUE(store.Contains(1, e));
  }
  for (uint64_t e : data.regions[1]) {
    EXPECT_TRUE(store.Contains(0, e));
    EXPECT_FALSE(store.Contains(1, e));
  }
}

// Churn injection must preserve the net multiset exactly.
TEST(ChurnTest, NetEffectIsIdentity) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(2048, 19);
  const std::vector<Update> base = data.ToInsertUpdates(5);

  ChurnOptions churn;
  churn.max_multiplicity = 4;
  churn.transient_fraction = 0.7;
  churn.seed = 23;
  const std::vector<Update> churned = InjectChurn(base, churn);
  EXPECT_GT(churned.size(), base.size());

  ExactSetStore plain(2), noisy(2);
  EXPECT_EQ(plain.ApplyAll(base), base.size());
  EXPECT_EQ(noisy.ApplyAll(churned), churned.size());  // All legal.
  for (StreamId s = 0; s < 2; ++s) {
    EXPECT_EQ(plain.DistinctCount(s), noisy.DistinctCount(s));
    plain.ForEachDistinct(s, [&](uint64_t e, int64_t freq) {
      EXPECT_EQ(noisy.NetFrequency(s, e), freq);
    });
  }
}

TEST(ChurnTest, ContainsDeletions) {
  const std::vector<Update> base = {Insert(0, 1), Insert(0, 2),
                                    Insert(0, 3), Insert(0, 4)};
  ChurnOptions churn;
  churn.transient_fraction = 1.0;
  churn.max_multiplicity = 3;
  const std::vector<Update> churned = InjectChurn(base, churn);
  bool has_delete = false;
  for (const Update& u : churned) has_delete |= u.delta < 0;
  EXPECT_TRUE(has_delete);
}

TEST(ZipfTest, TotalAndSkew) {
  const std::vector<Update> updates =
      GenerateZipfStream(0, /*num_distinct=*/100, /*total_count=*/20000,
                         /*alpha=*/1.2, /*seed=*/29);
  EXPECT_EQ(updates.size(), 20000u);
  std::unordered_map<uint64_t, int64_t> freq;
  for (const Update& u : updates) {
    EXPECT_EQ(u.stream, 0u);
    EXPECT_LT(u.element, 100u);
    freq[u.element] += u.delta;
  }
  // Rank 0 should dominate rank 50 heavily under alpha = 1.2.
  EXPECT_GT(freq[0], 10 * std::max<int64_t>(freq[50], 1));
}

TEST(ZipfTest, ElementOffsetShiftsDomain) {
  const std::vector<Update> updates =
      GenerateZipfStream(1, 10, 100, 1.0, 31, /*element_offset=*/1000);
  for (const Update& u : updates) {
    EXPECT_GE(u.element, 1000u);
    EXPECT_LT(u.element, 1010u);
  }
}

}  // namespace
}  // namespace setsketch
