// Tests for multi-threaded sketch ingest: the parallel result must be
// bit-identical to serial ingest for any thread count.

#include <gtest/gtest.h>

#include "query/parallel_ingest.h"
#include "query/stream_engine.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

std::vector<Update> MakeWorkload(uint64_t seed) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.4));
  const PartitionedDataset data = gen.Generate(4096, seed);
  ChurnOptions churn;
  churn.seed = seed ^ 1;
  churn.transient_fraction = 0.4;
  return InjectChurn(data.ToInsertUpdates(seed ^ 2), churn);
}

class ParallelIngestThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelIngestThreadsTest, MatchesSerialBitForBit) {
  const int threads = GetParam();
  const std::vector<Update> updates = MakeWorkload(77);
  const std::vector<std::string> names = {"A", "B"};

  SketchBank serial(SketchFamily(TestParams(), 64, 5));
  SketchBank parallel(SketchFamily(TestParams(), 64, 5));
  for (const std::string& name : names) {
    serial.AddStream(name);
    parallel.AddStream(name);
  }
  const size_t serial_applied = ParallelIngest(&serial, names, updates, 1);
  const size_t parallel_applied =
      ParallelIngest(&parallel, names, updates, threads);
  EXPECT_EQ(serial_applied, parallel_applied);
  EXPECT_EQ(serial_applied, updates.size());
  for (const std::string& name : names) {
    const auto& a = serial.Sketches(name);
    const auto& b = parallel.Sketches(name);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << name << " copy " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelIngestThreadsTest,
                         ::testing::Values(2, 3, 4, 8, 64, 100));

TEST(ParallelIngestTest, SkipsUnknownStreams) {
  SketchBank bank(SketchFamily(TestParams(), 8, 7));
  bank.AddStream("A");
  const std::vector<std::string> names = {"A", "Missing"};
  const std::vector<Update> updates = {Insert(0, 1), Insert(1, 2),
                                       Insert(7, 3)};
  EXPECT_EQ(ParallelIngest(&bank, names, updates, 4), 1u);
  EXPECT_FALSE(bank.Sketches("A")[0].Empty());
}

TEST(ParallelIngestTest, EmptyBatchIsFine) {
  SketchBank bank(SketchFamily(TestParams(), 4, 9));
  bank.AddStream("A");
  EXPECT_EQ(ParallelIngest(&bank, {"A"}, {}, 8), 0u);
}

TEST(StreamEngineParallelTest, ParallelEqualsSerialEngine) {
  const std::vector<Update> updates = MakeWorkload(99);

  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 96;
  options.seed = 1234;
  options.track_exact = true;

  StreamEngine serial(options), parallel(options);
  for (StreamEngine* engine : {&serial, &parallel}) {
    engine->RegisterStream("A");
    engine->RegisterStream("B");
    engine->RegisterQuery("A & B");
  }
  EXPECT_EQ(serial.IngestAll(updates), updates.size());
  EXPECT_EQ(parallel.IngestAllParallel(updates, 4), updates.size());
  EXPECT_EQ(serial.updates_processed(), parallel.updates_processed());

  const auto serial_answer = serial.AnswerQuery(0);
  const auto parallel_answer = parallel.AnswerQuery(0);
  ASSERT_TRUE(serial_answer.ok);
  ASSERT_TRUE(parallel_answer.ok);
  EXPECT_DOUBLE_EQ(serial_answer.estimate, parallel_answer.estimate);
  EXPECT_EQ(serial_answer.exact, parallel_answer.exact);
}

}  // namespace
}  // namespace setsketch
