// Tests for StreamEngine::ExplainQuery.

#include <gtest/gtest.h>

#include "query/stream_engine.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

StreamEngine::Options ExplainOptions() {
  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 64;
  options.seed = 2718;
  return options;
}

TEST(ExplainTest, InvalidIdNotOk) {
  StreamEngine engine(ExplainOptions());
  EXPECT_FALSE(engine.ExplainQuery(0).ok);
  EXPECT_FALSE(engine.ExplainQuery(-3).ok);
}

TEST(ExplainTest, ReportsSimplification) {
  StreamEngine engine(ExplainOptions());
  const auto q = engine.RegisterQuery("A | (A & B)");
  ASSERT_TRUE(q.ok());
  const auto explanation = engine.ExplainQuery(q.id);
  ASSERT_TRUE(explanation.ok);
  EXPECT_EQ(explanation.simplified, "A");
  EXPECT_FALSE(explanation.provably_empty);
  EXPECT_NE(explanation.report.find("simplifies to: A"),
            std::string::npos);
}

TEST(ExplainTest, DetectsProvablyEmptyQueries) {
  StreamEngine engine(ExplainOptions());
  const auto q = engine.RegisterQuery("(A & B) - A");
  ASSERT_TRUE(q.ok());
  const auto explanation = engine.ExplainQuery(q.id);
  ASSERT_TRUE(explanation.ok);
  EXPECT_TRUE(explanation.provably_empty);
  EXPECT_EQ(explanation.simplified, "{}");
  EXPECT_NE(explanation.report.find("provably empty"), std::string::npos);
}

TEST(ExplainTest, EmptyStreamsShortCircuit) {
  StreamEngine engine(ExplainOptions());
  const auto q = engine.RegisterQuery("A & B");
  ASSERT_TRUE(q.ok());
  const auto explanation = engine.ExplainQuery(q.id);
  ASSERT_TRUE(explanation.ok);
  EXPECT_NE(explanation.report.find("streams are empty"),
            std::string::npos);
}

TEST(ExplainTest, ReportsWitnessGeometryWithData) {
  StreamEngine engine(ExplainOptions());
  const auto q = engine.RegisterQuery("A & B");
  ASSERT_TRUE(q.ok());
  for (int e = 0; e < 2000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761ULL;
    engine.Ingest("A", elem, 1);
    if (e % 2 == 0) engine.Ingest("B", elem, 1);
  }
  const auto explanation = engine.ExplainQuery(q.id);
  ASSERT_TRUE(explanation.ok);
  EXPECT_GT(explanation.union_estimate, 1000);
  EXPECT_GT(explanation.witness_level, 8);  // ~log2(4 * 2000 / 0.5).
  EXPECT_GT(explanation.expected_valid_fraction, 0.02);
  EXPECT_LT(explanation.expected_valid_fraction, 0.25);
  EXPECT_EQ(explanation.streams,
            (std::vector<std::string>{"A", "B"}));
  EXPECT_NE(explanation.report.find("witness level"), std::string::npos);
}

}  // namespace
}  // namespace setsketch
