// Tests for the inclusion-exclusion baseline estimator.

#include <gtest/gtest.h>

#include "core/inclusion_exclusion_estimator.h"
#include "core/set_expression_estimator.h"
#include "expr/parser.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

ExprPtr P(const std::string& text) {
  const ParseResult result = ParseExpression(text);
  EXPECT_TRUE(result.ok()) << result.error;
  return result.expression;
}

TEST(InclusionExclusionTest, RejectsBadInputs) {
  EXPECT_FALSE(
      EstimateByInclusionExclusion(*P("A"), {"A"}, {}).ok);
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(512, 1), 16, 2);
  EXPECT_FALSE(EstimateByInclusionExclusion(
                   *P("S0 & Missing"), {"S0", "S1"},
                   bank->Groups({"S0", "S1"}))
                   .ok);
}

TEST(InclusionExclusionTest, IntersectionOfLargeOverlap) {
  // Large |E|/|U|: inclusion-exclusion is fine here.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(8192, 3);
  const auto bank = BankFromDataset(data, 192, 5);
  const InclusionExclusionEstimate est = EstimateByInclusionExclusion(
      *P("S0 & S1"), {"S0", "S1"}, bank->Groups({"S0", "S1"}));
  ASSERT_TRUE(est.ok);
  EXPECT_EQ(est.unions_estimated, 3);  // {A}, {B}, {A,B}.
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.regions[3].size())),
            0.35);
}

TEST(InclusionExclusionTest, DifferenceViaTwoUnions) {
  // |A - B| = |A u B| - |B|.
  VennPartitionGenerator gen(2, BinaryDifferenceProbs(0.4));
  const PartitionedDataset data = gen.Generate(8192, 7);
  const auto bank = BankFromDataset(data, 192, 9);
  const InclusionExclusionEstimate est = EstimateByInclusionExclusion(
      *P("S0 - S1"), {"S0", "S1"}, bank->Groups({"S0", "S1"}));
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.regions[1].size())),
            0.35);
}

TEST(InclusionExclusionTest, ThreeStreamExpression) {
  VennPartitionGenerator gen(3, ExprDiffIntersectProbs(0.25));
  const PartitionedDataset data = gen.Generate(8192, 11);
  const auto bank = BankFromDataset(data, 192, 13);
  const InclusionExclusionEstimate est = EstimateByInclusionExclusion(
      *P("(S0 - S1) & S2"), {"S0", "S1", "S2"},
      bank->Groups({"S0", "S1", "S2"}));
  ASSERT_TRUE(est.ok);
  EXPECT_EQ(est.unions_estimated, 7);
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(data.regions[5].size())),
            0.6);
}

TEST(InclusionExclusionTest, ClampsNegativeCancellation) {
  // Disjoint streams: |A n B| = 0. Cancellation noise can push the raw
  // signed sum below zero; the estimate must clamp.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.0));
  const PartitionedDataset data = gen.Generate(8192, 15);
  const auto bank = BankFromDataset(data, 128, 17);
  const InclusionExclusionEstimate est = EstimateByInclusionExclusion(
      *P("S0 & S1"), {"S0", "S1"}, bank->Groups({"S0", "S1"}));
  ASSERT_TRUE(est.ok);
  EXPECT_GE(est.estimate, 0.0);
  // The raw sum reflects pure cancellation noise near 0.
  EXPECT_LT(std::abs(est.raw),
            0.2 * static_cast<double>(data.UnionSize()));
}

// The paper's core quantitative claim, reproduced as a test: for small
// |E| / |union| the witness estimator beats inclusion-exclusion (whose
// absolute error scales with |union|).
TEST(InclusionExclusionTest, WitnessMethodWinsOnSmallResults) {
  std::vector<double> ie_errors, witness_errors;
  for (uint64_t t = 0; t < 6; ++t) {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(1.0 / 64.0));
    const PartitionedDataset data = gen.Generate(8192, 100 + t * 7);
    const auto bank = BankFromDataset(data, 192, 200 + t * 11);
    const auto groups = bank->Groups({"S0", "S1"});
    const double exact = static_cast<double>(data.regions[3].size());
    if (exact == 0) continue;

    const InclusionExclusionEstimate ie = EstimateByInclusionExclusion(
        *P("S0 & S1"), {"S0", "S1"}, groups);
    WitnessOptions options;
    options.pool_all_levels = true;
    options.mle_union = true;
    const ExpressionEstimate witness = EstimateSetExpression(
        *P("S0 & S1"), {"S0", "S1"}, groups, options);
    ASSERT_TRUE(ie.ok);
    ASSERT_TRUE(witness.ok);
    ie_errors.push_back(RelativeError(ie.estimate, exact));
    witness_errors.push_back(
        RelativeError(witness.expression.estimate, exact));
  }
  EXPECT_LT(Mean(witness_errors), Mean(ie_errors))
      << "witness " << Mean(witness_errors) << " vs IE "
      << Mean(ie_errors);
}

}  // namespace
}  // namespace setsketch
