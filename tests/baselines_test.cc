// Tests for the prior-work baselines: Flajolet-Martin, KMV / bottom-k,
// min-wise signatures, and the exact distinct counter — including the
// deletion failure modes the paper motivates 2-level hash sketches with.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/exact_distinct.h"
#include "baselines/fm_sketch.h"
#include "baselines/kmv_sketch.h"
#include "baselines/minwise_sketch.h"
#include "util/stats.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// Flajolet-Martin

TEST(FmSketchTest, EstimatesDistinctCount) {
  FmSketch fm(64, 32, /*seed=*/1);
  const int n = 10000;
  for (int e = 0; e < n; ++e) {
    fm.Insert(static_cast<uint64_t>(e) * 2654435761u);
  }
  EXPECT_LT(RelativeError(fm.Estimate(), n), 0.35);
}

TEST(FmSketchTest, DuplicatesDoNotInflate) {
  FmSketch fm(64, 32, 3);
  for (int rep = 0; rep < 10; ++rep) {
    for (int e = 0; e < 500; ++e) {
      fm.Insert(static_cast<uint64_t>(e) * 7919);
    }
  }
  EXPECT_LT(RelativeError(fm.Estimate(), 500), 0.4);
}

TEST(FmSketchTest, DeletionsAreRefusedAndCounted) {
  FmSketch fm(8, 32, 5);
  fm.Insert(1);
  const double before = fm.Estimate();
  EXPECT_FALSE(fm.Delete(1));
  EXPECT_EQ(fm.ignored_deletions(), 1);
  EXPECT_DOUBLE_EQ(fm.Estimate(), before);  // Unchanged.
}

TEST(FmSketchTest, MergeEstimatesUnion) {
  FmSketch a(64, 32, 7), b(64, 32, 7);
  for (int e = 0; e < 3000; ++e) {
    a.Insert(static_cast<uint64_t>(e) * 104729);
    b.Insert(static_cast<uint64_t>(e + 1500) * 104729);  // 50% overlap.
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_LT(RelativeError(a.Estimate(), 4500), 0.4);
}

TEST(FmSketchTest, MergeRejectsMismatchedConfig) {
  FmSketch a(8, 32, 1), b(8, 32, 2), c(16, 32, 1);
  EXPECT_FALSE(a.Merge(b));  // Different seed.
  EXPECT_FALSE(a.Merge(c));  // Different instance count.
}

TEST(FmSketchTest, SizeBytesIsTiny) {
  FmSketch fm(64, 32, 9);
  EXPECT_EQ(fm.SizeBytes(), 64u * 32u / 8u);
}

// ---------------------------------------------------------------------------
// KMV

TEST(KmvSketchTest, EstimatesDistinctCount) {
  KmvSketch kmv(256, 1);
  const int n = 20000;
  for (int e = 0; e < n; ++e) {
    kmv.Insert(static_cast<uint64_t>(e) * 48271 + 11);
  }
  EXPECT_LT(RelativeError(kmv.EstimateDistinct(), n), 0.2);
}

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch kmv(64, 3);
  for (int e = 0; e < 40; ++e) kmv.Insert(static_cast<uint64_t>(e));
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 40.0);
  // Duplicates don't change it.
  for (int e = 0; e < 40; ++e) kmv.Insert(static_cast<uint64_t>(e));
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 40.0);
}

TEST(KmvSketchTest, UnionAndIntersectionInsertOnly) {
  KmvSketch a(512, 5), b(512, 5);
  const int n = 8192;
  // 25% overlap.
  for (int e = 0; e < n; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u + 3;
    a.Insert(elem);
    if (e < n / 4) b.Insert(elem);
  }
  for (int e = 0; e < 3 * n / 4; ++e) {
    b.Insert(static_cast<uint64_t>(e) * 16807 + (1ULL << 50));
  }
  // |A u B| = n + 3n/4, |A n B| = n/4.
  EXPECT_LT(RelativeError(KmvSketch::EstimateUnion(a, b), 1.75 * n), 0.2);
  EXPECT_LT(
      RelativeError(KmvSketch::EstimateIntersection(a, b), 0.25 * n),
      0.35);
  EXPECT_LT(RelativeError(KmvSketch::EstimateDifference(a, b), 0.75 * n),
            0.3);
}

TEST(KmvSketchTest, DeletionDepletesSample) {
  KmvSketch kmv(32, 7);
  // Insert 32 elements: all sampled.
  std::vector<uint64_t> elements;
  for (int e = 0; e < 32; ++e) {
    elements.push_back(static_cast<uint64_t>(e) * 7919 + 1);
    kmv.Insert(elements.back());
  }
  EXPECT_FALSE(kmv.depleted());
  EXPECT_TRUE(kmv.Delete(elements[0]));  // Sampled: eviction.
  EXPECT_TRUE(kmv.depleted());
  EXPECT_EQ(kmv.depletions(), 1);
}

TEST(KmvSketchTest, MassDeletionBiasesEstimate) {
  // Insert n, then delete all but n/16. A correct synopsis would estimate
  // n/16; the depleted KMV keeps k non-deleted minima it can't backfill,
  // so the estimate is biased (usually high). We just document that the
  // sketch *knows* it was depleted.
  KmvSketch kmv(256, 9);
  const int n = 8192;
  std::vector<uint64_t> elements;
  for (int e = 0; e < n; ++e) {
    elements.push_back(static_cast<uint64_t>(e) * 104729 + 5);
    kmv.Insert(elements.back());
  }
  for (int e = 0; e < n; ++e) {
    if (e % 16 != 0) kmv.Delete(elements[static_cast<size_t>(e)]);
  }
  EXPECT_TRUE(kmv.depleted());
  EXPECT_GT(kmv.depletions(), 200);
}

// ---------------------------------------------------------------------------
// Min-wise signatures

TEST(MinwiseSketchTest, JaccardOfIdenticalStreamsIsOne) {
  MinwiseSketch a(128, 1), b(128, 1);
  for (int e = 0; e < 1000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 31337;
    a.Insert(elem);
    b.Insert(elem);
  }
  EXPECT_DOUBLE_EQ(MinwiseSketch::EstimateJaccard(a, b), 1.0);
}

TEST(MinwiseSketchTest, JaccardOfDisjointStreamsNearZero) {
  MinwiseSketch a(128, 3), b(128, 3);
  for (int e = 0; e < 1000; ++e) {
    a.Insert(static_cast<uint64_t>(e) * 7919 + 1);
    b.Insert(static_cast<uint64_t>(e) * 15485863 + (1ULL << 50));
  }
  EXPECT_LT(MinwiseSketch::EstimateJaccard(a, b), 0.05);
}

TEST(MinwiseSketchTest, JaccardTracksOverlap) {
  // 50% overlap -> J = |AnB| / |AuB| = 0.5/1.5 = 1/3.
  MinwiseSketch a(512, 5), b(512, 5);
  const int n = 4000;
  for (int e = 0; e < n; ++e) {
    const uint64_t shared = static_cast<uint64_t>(e) * 2654435761u;
    if (e < n / 2) {
      a.Insert(shared);
      b.Insert(shared);
    } else {
      a.Insert(shared);
      b.Insert(shared + (1ULL << 52));
    }
  }
  EXPECT_NEAR(MinwiseSketch::EstimateJaccard(a, b), 1.0 / 3.0, 0.07);
  EXPECT_LT(RelativeError(
                MinwiseSketch::EstimateIntersection(a, b, 1.5 * n / 2 * 2),
                n / 2.0),
            0.3);
}

TEST(MinwiseSketchTest, DeletionsAreIgnoredAndLeaveStaleState) {
  MinwiseSketch a(64, 7);
  a.Insert(42);
  const std::vector<uint64_t> before = a.signature();
  EXPECT_FALSE(a.Delete(42));
  EXPECT_EQ(a.ignored_deletions(), 1);
  EXPECT_EQ(a.signature(), before);  // Stale: still reflects 42.
}

TEST(MinwiseSketchTest, EmptySketchJaccardIsZero) {
  MinwiseSketch a(16, 9), b(16, 9);
  EXPECT_DOUBLE_EQ(MinwiseSketch::EstimateJaccard(a, b), 0.0);
  a.Insert(1);
  EXPECT_DOUBLE_EQ(MinwiseSketch::EstimateJaccard(a, b), 0.0);
}

// ---------------------------------------------------------------------------
// Exact distinct

TEST(ExactDistinctTest, TracksNetFrequencies) {
  ExactDistinct exact;
  EXPECT_TRUE(exact.Update(1, 2));
  EXPECT_TRUE(exact.Update(2, 1));
  EXPECT_EQ(exact.Distinct(), 2);
  EXPECT_TRUE(exact.Update(1, -1));
  EXPECT_EQ(exact.Distinct(), 2);
  EXPECT_TRUE(exact.Update(1, -1));
  EXPECT_EQ(exact.Distinct(), 1);
  EXPECT_EQ(exact.Frequency(1), 0);
  EXPECT_FALSE(exact.Update(1, -1));  // Illegal.
}

// The punchline comparison: under pure churn (insert+delete), the 2-level
// hash sketch is exact-equivalent while KMV depletes. Verified indirectly
// here by the depletion counters; the full head-to-head lives in
// bench_deletions.
TEST(BaselineContrastTest, ChurnDepletesKmvOnly) {
  KmvSketch kmv(64, 11);
  for (int e = 0; e < 64; ++e) {
    kmv.Insert(static_cast<uint64_t>(e));
  }
  for (int e = 0; e < 64; ++e) {
    kmv.Delete(static_cast<uint64_t>(e));
  }
  EXPECT_EQ(kmv.depletions(), 64);
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 0.0);  // Sample is gone...
  kmv.Insert(9999);  // ...and the sketch can only rebuild from new data.
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 1.0);
}

}  // namespace
}  // namespace setsketch
