// Tests for the sketchtool command library and the bank file format.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "stream/stream_io.h"
#include "tools/bank_io.h"
#include "tools/commands.h"

namespace setsketch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteUpdatesFile(const std::string& path,
                      const std::vector<Update>& updates) {
  std::ofstream out(path);
  ASSERT_TRUE(out);
  WriteUpdates(out, updates);
}

class ToolsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Bank I/O

TEST_F(ToolsTest, BankEncodeDecodeRoundTrip) {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  SketchBank bank(SketchFamily(params, 8, 99));
  bank.AddStream("A");
  bank.AddStream("B");
  for (int e = 0; e < 500; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 7919, 1);
    if (e % 2 == 0) bank.Apply("B", static_cast<uint64_t>(e) * 7919, 1);
  }
  const std::string bytes = EncodeBank(bank);
  std::string error;
  const std::unique_ptr<SketchBank> decoded = DecodeBank(bytes, &error);
  ASSERT_NE(decoded, nullptr) << error;
  EXPECT_EQ(decoded->num_copies(), 8);
  EXPECT_TRUE(decoded->HasStream("A"));
  EXPECT_TRUE(decoded->HasStream("B"));
  for (const std::string name : {"A", "B"}) {
    const auto& a = bank.Sketches(name);
    const auto& b = decoded->Sketches(name);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  }
}

TEST_F(ToolsTest, BankDecodeRejectsGarbage) {
  std::string error;
  EXPECT_EQ(DecodeBank("", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(DecodeBank("not a bank", &error), nullptr);

  SketchBank bank(SketchFamily(SketchParams{}, 2, 1));
  bank.AddStream("A");
  const std::string bytes = EncodeBank(bank);
  EXPECT_EQ(DecodeBank(bytes.substr(0, bytes.size() / 2), &error), nullptr);
  EXPECT_EQ(DecodeBank(bytes + "zz", &error), nullptr);
}

TEST_F(ToolsTest, FileHelpersRoundTrip) {
  const std::string path = Track(TempPath("bytes.bin"));
  std::string error;
  const std::string payload = std::string("\x00\x01\x02garbled", 10);
  ASSERT_TRUE(WriteFileBytes(path, payload, &error)) << error;
  std::string read_back;
  ASSERT_TRUE(ReadFileBytes(path, &read_back, &error)) << error;
  EXPECT_EQ(read_back, payload);
  EXPECT_FALSE(ReadFileBytes("/no/such/file", &read_back, &error));
  EXPECT_FALSE(WriteFileBytes("/no/such/dir/f", payload, &error));
}

// ---------------------------------------------------------------------------
// Commands end-to-end

TEST_F(ToolsTest, BuildInfoEstimatePipeline) {
  // Controlled dataset: |A n B| = u/4.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(4096, 5);
  const std::string updates_path = Track(TempPath("updates.txt"));
  WriteUpdatesFile(updates_path, data.ToInsertUpdates(7));

  BuildSpec spec;
  spec.updates_path = updates_path;
  spec.output_path = Track(TempPath("bank.bin"));
  spec.stream_names = {"A", "B"};
  spec.copies = 192;
  spec.seed = 11;
  const CommandResult build = RunBuild(spec);
  ASSERT_TRUE(build.ok) << build.error;
  EXPECT_NE(build.output.find("2 streams"), std::string::npos);

  const CommandResult info = RunInfo(spec.output_path);
  ASSERT_TRUE(info.ok) << info.error;
  EXPECT_NE(info.output.find("A"), std::string::npos);
  EXPECT_NE(info.output.find("copies r = 192"), std::string::npos);

  const CommandResult estimate =
      RunEstimate(spec.output_path, "A & B");
  ASSERT_TRUE(estimate.ok) << estimate.error;
  EXPECT_NE(estimate.output.find("|(A & B)| ~="), std::string::npos);
}

TEST_F(ToolsTest, BuildRejectsBadInputs) {
  BuildSpec spec;
  spec.updates_path = "/no/such/updates.txt";
  spec.output_path = Track(TempPath("never.bin"));
  EXPECT_FALSE(RunBuild(spec).ok);

  const std::string bad_updates = Track(TempPath("bad.txt"));
  {
    std::ofstream out(bad_updates);
    out << "0 1 1\nnot an update\n";
  }
  spec.updates_path = bad_updates;
  const CommandResult result = RunBuild(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("malformed"), std::string::npos);
}

TEST_F(ToolsTest, BuildValidatesStreamNameCount) {
  const std::string updates_path = Track(TempPath("two_streams.txt"));
  WriteUpdatesFile(updates_path, {Insert(0, 1), Insert(1, 2)});
  BuildSpec spec;
  spec.updates_path = updates_path;
  spec.output_path = Track(TempPath("bank2.bin"));
  spec.stream_names = {"OnlyOne"};
  const CommandResult result = RunBuild(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("stream id 1"), std::string::npos);
}

TEST_F(ToolsTest, MergeCombinesDistributedBanks) {
  // Two "sites" sketch halves of the same streams with shared coins; the
  // merged bank must estimate the full streams.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(4096, 13);
  std::vector<Update> updates = data.ToInsertUpdates(17);
  std::vector<Update> half1(updates.begin(),
                            updates.begin() + updates.size() / 2);
  std::vector<Update> half2(updates.begin() + updates.size() / 2,
                            updates.end());

  const std::string bank1 = Track(TempPath("site1.bin"));
  const std::string bank2 = Track(TempPath("site2.bin"));
  for (const auto& [half, path] :
       {std::pair{half1, bank1}, std::pair{half2, bank2}}) {
    const std::string updates_path = Track(path + ".txt");
    WriteUpdatesFile(updates_path, half);
    BuildSpec spec;
    spec.updates_path = updates_path;
    spec.output_path = path;
    spec.stream_names = {"A", "B"};
    spec.copies = 128;
    spec.seed = 4242;  // Shared coins.
    ASSERT_TRUE(RunBuild(spec).ok);
  }

  const std::string merged = Track(TempPath("merged.bin"));
  const CommandResult merge = RunMerge({bank1, bank2}, merged);
  ASSERT_TRUE(merge.ok) << merge.error;

  const CommandResult estimate = RunEstimate(merged, "A & B");
  ASSERT_TRUE(estimate.ok) << estimate.error;
}

TEST_F(ToolsTest, MergeRejectsForeignCoins) {
  const std::string updates_path = Track(TempPath("u.txt"));
  WriteUpdatesFile(updates_path, {Insert(0, 1)});
  const std::string bank1 = Track(TempPath("c1.bin"));
  const std::string bank2 = Track(TempPath("c2.bin"));
  for (const auto& [path, seed] :
       {std::pair{bank1, uint64_t{1}}, std::pair{bank2, uint64_t{2}}}) {
    BuildSpec spec;
    spec.updates_path = updates_path;
    spec.output_path = path;
    spec.copies = 4;
    spec.seed = seed;
    ASSERT_TRUE(RunBuild(spec).ok);
  }
  const CommandResult merge =
      RunMerge({bank1, bank2}, Track(TempPath("m.bin")));
  EXPECT_FALSE(merge.ok);
  EXPECT_NE(merge.error.find("not combinable"), std::string::npos);
}

TEST_F(ToolsTest, EstimateRejectsUnknownStreamAndBadExpression) {
  const std::string updates_path = Track(TempPath("u2.txt"));
  WriteUpdatesFile(updates_path, {Insert(0, 1), Insert(0, 2)});
  BuildSpec spec;
  spec.updates_path = updates_path;
  spec.output_path = Track(TempPath("b.bin"));
  spec.stream_names = {"A"};
  spec.copies = 8;
  ASSERT_TRUE(RunBuild(spec).ok);

  EXPECT_FALSE(RunEstimate(spec.output_path, "A &").ok);
  const CommandResult unknown = RunEstimate(spec.output_path, "A & Z");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("no stream named 'Z'"), std::string::npos);
}

}  // namespace
}  // namespace setsketch
