// Tests for the Figure 6 witness-based estimators: set difference
// (Section 3.4) and set intersection (Section 3.5).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/estimator_config.h"
#include "core/set_difference_estimator.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace setsketch {
namespace {

// Shared scenario: a controlled 2-stream dataset plus its sketch bank.
struct Scenario {
  PartitionedDataset data;
  std::unique_ptr<SketchBank> bank;
  std::vector<SketchGroup> pairs;
  double union_estimate = 0;
  int64_t exact_union = 0;
};

Scenario MakeScenario(const std::vector<double>& probs, int64_t u,
                      int copies, uint64_t seed) {
  Scenario s;
  VennPartitionGenerator gen(2, probs);
  s.data = gen.Generate(u, seed);
  s.bank = BankFromDataset(s.data, copies, seed ^ 0xABCD);
  s.pairs = s.bank->Groups({"S0", "S1"});
  s.exact_union = s.data.UnionSize();
  const UnionEstimate ue = EstimateSetUnion(s.pairs, 0.5);
  EXPECT_TRUE(ue.ok);
  s.union_estimate = ue.estimate;
  return s;
}

// ---------------------------------------------------------------------------
// Input validation

TEST(SetDifferenceEstimatorTest, RejectsBadInputs) {
  EXPECT_FALSE(EstimateSetDifference({}, 100).ok);

  Scenario s = MakeScenario(BinaryDifferenceProbs(0.25), 512, 16, 1);
  WitnessOptions bad;
  bad.beta = 1.0;  // Must be > 1.
  EXPECT_FALSE(EstimateSetDifference(s.pairs, s.union_estimate, bad).ok);
  bad = WitnessOptions{};
  bad.epsilon = 0.0;
  EXPECT_FALSE(EstimateSetDifference(s.pairs, s.union_estimate, bad).ok);
  EXPECT_FALSE(EstimateSetDifference(s.pairs, -5.0).ok);

  // Groups must be pairs.
  std::vector<SketchGroup> triples = s.bank->Groups({"S0", "S1", "S0"});
  EXPECT_FALSE(EstimateSetDifference(triples, s.union_estimate).ok);
}

TEST(SetIntersectionEstimatorTest, RejectsBadInputs) {
  EXPECT_FALSE(EstimateSetIntersection({}, 100).ok);
  Scenario s = MakeScenario(BinaryIntersectionProbs(0.25), 512, 16, 2);
  WitnessOptions bad;
  bad.beta = 0.5;
  EXPECT_FALSE(EstimateSetIntersection(s.pairs, s.union_estimate, bad).ok);
}

// ---------------------------------------------------------------------------
// Atomic estimators

TEST(AtomicEstimatorTest, WitnessAndNonWitnessPaths) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 777);
  TwoLevelHashSketch a(seed), b(seed);
  // Find an element and its level-? bucket: use level of element directly.
  const uint64_t e1 = 12345;
  const int level = seed->Level(e1);
  a.Update(e1, 1);

  // A-only singleton: a difference witness and not an intersection witness.
  EXPECT_EQ(AtomicDiffEstimate(a, b, level), std::optional<int>(1));
  EXPECT_EQ(AtomicIntersectEstimate(a, b, level), std::optional<int>(0));

  // Shared value: intersection witness, not difference witness.
  b.Update(e1, 2);
  EXPECT_EQ(AtomicDiffEstimate(a, b, level), std::optional<int>(0));
  EXPECT_EQ(AtomicIntersectEstimate(a, b, level), std::optional<int>(1));

  // Empty union bucket: noEstimate.
  int empty_level = -1;
  for (int l = 0; l < a.levels(); ++l) {
    if (BucketEmpty(a, l) && BucketEmpty(b, l)) {
      empty_level = l;
      break;
    }
  }
  ASSERT_GE(empty_level, 0);
  EXPECT_EQ(AtomicDiffEstimate(a, b, empty_level), std::nullopt);
  EXPECT_EQ(AtomicIntersectEstimate(a, b, empty_level), std::nullopt);
}

TEST(AtomicEstimatorTest, NonSingletonUnionGivesNoEstimate) {
  const auto seed = std::make_shared<const SketchSeed>(TestParams(), 888);
  TwoLevelHashSketch a(seed), b(seed);
  // Two distinct elements in the same level-0 bucket.
  std::vector<uint64_t> in_level0;
  for (uint64_t e = 1; in_level0.size() < 2; ++e) {
    if (seed->Level(e) == 0) in_level0.push_back(e);
  }
  a.Update(in_level0[0], 1);
  b.Update(in_level0[1], 1);
  EXPECT_EQ(AtomicDiffEstimate(a, b, 0), std::nullopt);
  EXPECT_EQ(AtomicIntersectEstimate(a, b, 0), std::nullopt);
}

// ---------------------------------------------------------------------------
// Accuracy (fixed seeds keep these deterministic)

TEST(SetDifferenceEstimatorTest, AccuracyAtModerateRatio) {
  // |A - B| = u/4.
  Scenario s = MakeScenario(BinaryDifferenceProbs(0.25), 8192, 512, 3);
  const int64_t exact = static_cast<int64_t>(s.data.regions[1].size());
  const WitnessEstimate est =
      EstimateSetDifference(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  EXPECT_GT(est.valid_observations, 20);
  // ~46 valid observations at r = 512 carry ~26% 1-sigma relative error
  // on the witness fraction alone; 0.55 is a ~2-sigma envelope.
  EXPECT_LT(RelativeError(est.estimate, static_cast<double>(exact)), 0.55);
}

TEST(SetIntersectionEstimatorTest, AccuracyAtModerateRatio) {
  Scenario s = MakeScenario(BinaryIntersectionProbs(0.25), 8192, 512, 4);
  const int64_t exact = static_cast<int64_t>(s.data.regions[3].size());
  const WitnessEstimate est =
      EstimateSetIntersection(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, static_cast<double>(exact)), 0.55);
}

TEST(SetIntersectionEstimatorTest, IdenticalStreamsGiveFullIntersection) {
  Scenario s = MakeScenario(BinaryIntersectionProbs(1.0), 4096, 384, 5);
  const WitnessEstimate est =
      EstimateSetIntersection(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  // Every witness is an intersection witness: p_hat = 1.
  EXPECT_DOUBLE_EQ(est.WitnessFraction(), 1.0);
  EXPECT_LT(RelativeError(est.estimate,
                          static_cast<double>(s.exact_union)),
            0.4);
}

TEST(SetDifferenceEstimatorTest, IdenticalStreamsGiveZeroDifference) {
  Scenario s = MakeScenario(BinaryIntersectionProbs(1.0), 4096, 384, 6);
  const WitnessEstimate est =
      EstimateSetDifference(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
}

TEST(SetIntersectionEstimatorTest, DisjointStreamsGiveZeroIntersection) {
  Scenario s = MakeScenario(BinaryIntersectionProbs(0.0), 4096, 384, 7);
  const WitnessEstimate est =
      EstimateSetIntersection(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
}

TEST(SetDifferenceEstimatorTest, DisjointEqualStreamsGiveHalfUnion) {
  Scenario s = MakeScenario(BinaryDifferenceProbs(0.5), 8192, 512, 8);
  const int64_t exact = static_cast<int64_t>(s.data.regions[1].size());
  const WitnessEstimate est =
      EstimateSetDifference(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(RelativeError(est.estimate, static_cast<double>(exact)), 0.45);
}

// Deletions: B's elements removed again must move the difference estimate.
TEST(SetDifferenceEstimatorTest, ReactsToDeletions) {
  // Start with A == B (difference 0), then delete half of B.
  SketchBank bank(SketchFamily(TestParams(), 512, 99));
  bank.AddStream("A");
  bank.AddStream("B");
  const int n = 4096;
  for (int e = 0; e < n; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u + 17;
    bank.Apply("A", elem, 1);
    bank.Apply("B", elem, 1);
  }
  for (int e = 0; e < n; e += 2) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761u + 17;
    bank.Apply("B", elem, -1);
  }
  const auto pairs = bank.Groups({"A", "B"});
  const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
  ASSERT_TRUE(ue.ok);
  const WitnessEstimate est = EstimateSetDifference(pairs, ue.estimate);
  ASSERT_TRUE(est.ok);
  // True |A - B| = n/2 now.
  EXPECT_LT(RelativeError(est.estimate, n / 2.0), 0.5);
}

// The valid-observation rate should be near the analysis' (beta-1)/beta^2
// lower bound at beta = 2 (~ e^{-1/beta}/beta ~ 0.30 actual singleton rate).
TEST(WitnessEstimatorTest, ValidObservationRateMatchesTheory) {
  Scenario s = MakeScenario(BinaryIntersectionProbs(0.5), 8192, 512, 10);
  const WitnessEstimate est =
      EstimateSetIntersection(s.pairs, s.union_estimate);
  ASSERT_TRUE(est.ok);
  const double rate = static_cast<double>(est.valid_observations) /
                      static_cast<double>(est.copies);
  // Theory: the witness level puts u/R in (1/16, 1/8], so
  // P[singleton] = (u/R)(1 - 1/R)^(u-1) lies in ~(0.059, 0.110];
  // accept a sampling envelope around that band.
  EXPECT_GT(rate, 0.04);
  EXPECT_LT(rate, 0.16);
}

// Witness level honors beta and the union estimate.
TEST(WitnessEstimatorTest, WitnessLevelMatchesFormula) {
  // beta * u / (1 - eps) = 2 * 1000 / 0.5 = 4000 -> ceil(log2) = 12.
  EXPECT_EQ(WitnessLevel(1000, 0.5, 2.0, 48), 12);
  // Clamped to the available levels.
  EXPECT_EQ(WitnessLevel(1e12, 0.5, 2.0, 16), 15);
  // Tiny unions floor at level 1 (log2(2/0.5)=2 ... ) — just bounds.
  EXPECT_GE(WitnessLevel(0.5, 0.5, 2.0, 48), 0);
}

// Hardness scaling (Theorems 3.4/3.5): with fixed r, smaller |E|/|U|
// ratios carry larger error. We check the coarse trend over a 16x ratio
// range using a fixed seed ensemble.
TEST(WitnessEstimatorTest, ErrorGrowsAsResultShrinks) {
  auto avg_error = [](double ratio, uint64_t seed_base) {
    std::vector<double> errors;
    for (uint64_t t = 0; t < 6; ++t) {
      Scenario s = MakeScenario(BinaryIntersectionProbs(ratio), 8192, 256,
                                seed_base + t * 131);
      const int64_t exact = static_cast<int64_t>(s.data.regions[3].size());
      const WitnessEstimate est =
          EstimateSetIntersection(s.pairs, s.union_estimate);
      if (est.ok && exact > 0) {
        errors.push_back(
            RelativeError(est.estimate, static_cast<double>(exact)));
      }
    }
    return Mean(errors);
  };
  const double easy = avg_error(0.5, 1000);
  const double hard = avg_error(1.0 / 32.0, 2000);
  EXPECT_LT(easy, hard + 0.05)
      << "easy=" << easy << " hard=" << hard;
}

}  // namespace
}  // namespace setsketch
