// Tests for Wilson confidence intervals over the estimators.

#include <gtest/gtest.h>

#include "core/confidence.h"
#include "core/set_intersection_estimator.h"
#include "core/set_union_estimator.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

TEST(WilsonIntervalTest, DegenerateInputs) {
  const Interval empty = WilsonInterval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(WilsonIntervalTest, ContainsInteriorPointEstimates) {
  for (int successes : {1, 13, 50, 87, 99}) {
    const Interval interval = WilsonInterval(successes, 100);
    const double p = successes / 100.0;
    EXPECT_TRUE(interval.Contains(p)) << successes;
    EXPECT_GE(interval.lo, 0.0);
    EXPECT_LE(interval.hi, 1.0);
  }
  // At the extremes Wilson deliberately pulls toward 1/2 (the interval
  // need not contain the degenerate MLE), but must stay near it.
  EXPECT_LT(WilsonInterval(0, 100).lo, 0.01);
  EXPECT_GT(WilsonInterval(100, 100).hi, 0.99);
}

TEST(WilsonIntervalTest, BoundaryCasesStayOpen) {
  // 0/n must not collapse to [0, 0]; n/n must not collapse to [1, 1].
  const Interval zero = WilsonInterval(0, 50);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = WilsonInterval(50, 50);
  EXPECT_LT(all.lo, 1.0);
}

TEST(WilsonIntervalTest, ShrinksWithMoreTrials) {
  const Interval small = WilsonInterval(5, 10);
  const Interval large = WilsonInterval(500, 1000);
  EXPECT_LT(large.Width(), small.Width());
}

TEST(WilsonIntervalTest, WidensWithHigherConfidence) {
  const Interval z95 = WilsonInterval(30, 100, 1.96);
  const Interval z99 = WilsonInterval(30, 100, 2.58);
  EXPECT_GT(z99.Width(), z95.Width());
}

TEST(UnionIntervalTest, CoversTruthAtReasonableRate) {
  int covered = 0;
  const int trials = 20;
  for (uint64_t t = 0; t < trials; ++t) {
    VennPartitionGenerator gen(1, {0.0, 1.0});
    const PartitionedDataset data = gen.Generate(4096, 300 + t);
    const auto bank = BankFromDataset(data, 128, 400 + t * 3);
    const UnionEstimate estimate =
        EstimateSetUnion(bank->Groups({"S0"}), 0.5);
    ASSERT_TRUE(estimate.ok);
    const Interval interval = UnionInterval(estimate);
    EXPECT_LE(interval.lo, interval.hi);
    EXPECT_TRUE(interval.Contains(estimate.estimate));
    if (interval.Contains(static_cast<double>(data.UnionSize()))) {
      ++covered;
    }
  }
  // Nominal 95%; allow sampling slack (and the stopping-rule bias).
  EXPECT_GE(covered, 14) << covered << "/" << trials;
}

TEST(UnionIntervalTest, NotOkEstimateGivesNullInterval) {
  UnionEstimate bad;
  const Interval interval = UnionInterval(bad);
  EXPECT_DOUBLE_EQ(interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(interval.hi, 0.0);
}

TEST(WitnessIntervalTest, ScalesWitnessFractionByUnion) {
  WitnessEstimate estimate;
  estimate.ok = true;
  estimate.witnesses = 25;
  estimate.valid_observations = 100;
  estimate.union_estimate = 1000;
  estimate.estimate = 250;
  const Interval interval = WitnessInterval(estimate);
  EXPECT_TRUE(interval.Contains(250.0));
  EXPECT_GT(interval.lo, 100.0);
  EXPECT_LT(interval.hi, 450.0);
}

TEST(WitnessIntervalTest, UnionUncertaintyWidensInterval) {
  WitnessEstimate estimate;
  estimate.ok = true;
  estimate.witnesses = 25;
  estimate.valid_observations = 100;
  estimate.union_estimate = 1000;
  estimate.estimate = 250;
  const Interval tight = WitnessInterval(estimate);
  const Interval wide = WitnessInterval(estimate, Interval{800, 1200});
  EXPECT_GT(wide.Width(), tight.Width());
  EXPECT_LE(wide.lo, tight.lo);
  EXPECT_GE(wide.hi, tight.hi);
}

TEST(WitnessIntervalTest, EndToEndCoverage) {
  int covered = 0;
  const int trials = 15;
  for (uint64_t t = 0; t < trials; ++t) {
    VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
    const PartitionedDataset data = gen.Generate(4096, 500 + t * 7);
    const auto bank = BankFromDataset(data, 192, 600 + t * 11);
    const auto pairs = bank->Groups({"S0", "S1"});
    const UnionEstimate ue = EstimateSetUnion(pairs, 0.5);
    WitnessOptions options;
    options.pool_all_levels = true;
    const WitnessEstimate est =
        EstimateSetIntersection(pairs, ue.estimate, options);
    ASSERT_TRUE(est.ok);
    const Interval interval = WitnessInterval(est, UnionInterval(ue));
    if (interval.Contains(static_cast<double>(data.regions[3].size()))) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 10) << covered << "/" << trials;
}

}  // namespace
}  // namespace setsketch
