// Tests for the update-stream substrate: Update, ExactSetStore, stream I/O.

#include <sstream>

#include <gtest/gtest.h>

#include "stream/exact_set_store.h"
#include "stream/stream_io.h"
#include "stream/update.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// Update

TEST(UpdateTest, ConstructorsSetSigns) {
  const Update ins = Insert(2, 40, 3);
  EXPECT_EQ(ins.stream, 2u);
  EXPECT_EQ(ins.element, 40u);
  EXPECT_EQ(ins.delta, 3);
  const Update del = Delete(1, 7);
  EXPECT_EQ(del.delta, -1);
}

TEST(UpdateTest, ToStringFormatsSign) {
  EXPECT_EQ(ToString(Insert(2, 17, 3)), "<2, 17, +3>");
  EXPECT_EQ(ToString(Delete(0, 5, 2)), "<0, 5, -2>");
}

TEST(UpdateTest, ShuffleIsDeterministicAndPermutes) {
  std::vector<Update> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(Insert(0, static_cast<uint64_t>(i)));
    b.push_back(Insert(0, static_cast<uint64_t>(i)));
  }
  ShuffleUpdates(&a, 5);
  ShuffleUpdates(&b, 5);
  EXPECT_EQ(a, b);  // Same seed, same order.

  std::vector<Update> c = a;
  ShuffleUpdates(&c, 6);
  EXPECT_NE(a, c);  // Different seed, different order (overwhelmingly).

  // Still a permutation.
  std::vector<bool> seen(100, false);
  for (const Update& u : c) seen[static_cast<size_t>(u.element)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

// ---------------------------------------------------------------------------
// ExactSetStore

TEST(ExactSetStoreTest, InsertAndCount) {
  ExactSetStore store(2);
  EXPECT_TRUE(store.Apply(Insert(0, 10)));
  EXPECT_TRUE(store.Apply(Insert(0, 10)));
  EXPECT_TRUE(store.Apply(Insert(0, 20)));
  EXPECT_TRUE(store.Apply(Insert(1, 10)));
  EXPECT_EQ(store.DistinctCount(0), 2);
  EXPECT_EQ(store.DistinctCount(1), 1);
  EXPECT_EQ(store.TotalCount(0), 3);
  EXPECT_EQ(store.NetFrequency(0, 10), 2);
}

TEST(ExactSetStoreTest, DeletionRemovesAtZero) {
  ExactSetStore store(1);
  store.Apply(Insert(0, 5, 2));
  EXPECT_TRUE(store.Apply(Delete(0, 5)));
  EXPECT_TRUE(store.Contains(0, 5));
  EXPECT_TRUE(store.Apply(Delete(0, 5)));
  EXPECT_FALSE(store.Contains(0, 5));
  EXPECT_EQ(store.DistinctCount(0), 0);
}

TEST(ExactSetStoreTest, IllegalDeletionRejected) {
  ExactSetStore store(1);
  store.Apply(Insert(0, 5));
  EXPECT_FALSE(store.Apply(Delete(0, 5, 2)));  // Would go to -1.
  EXPECT_EQ(store.NetFrequency(0, 5), 1);      // Unchanged.
  EXPECT_FALSE(store.Apply(Delete(0, 99)));    // Never inserted.
}

TEST(ExactSetStoreTest, UnknownStreamRejected) {
  ExactSetStore store(1);
  EXPECT_FALSE(store.Apply(Insert(3, 5)));
}

TEST(ExactSetStoreTest, ApplyAllCountsApplied) {
  ExactSetStore store(1);
  const std::vector<Update> updates = {Insert(0, 1), Delete(0, 2),
                                       Insert(0, 3)};
  EXPECT_EQ(store.ApplyAll(updates), 2u);  // Delete(2) is illegal.
}

TEST(ExactSetStoreTest, AddStreamGrowsStore) {
  ExactSetStore store(1);
  const StreamId id = store.AddStream();
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(store.num_streams(), 2);
  EXPECT_TRUE(store.Apply(Insert(id, 42)));
  EXPECT_TRUE(store.Contains(id, 42));
}

TEST(ExactSetStoreTest, ForEachDistinctVisitsPositiveOnly) {
  ExactSetStore store(1);
  store.Apply(Insert(0, 1));
  store.Apply(Insert(0, 2, 3));
  store.Apply(Insert(0, 3));
  store.Apply(Delete(0, 3));
  int visits = 0;
  int64_t total = 0;
  store.ForEachDistinct(0, [&](uint64_t e, int64_t freq) {
    ++visits;
    total += freq;
    EXPECT_TRUE(e == 1 || e == 2);
  });
  EXPECT_EQ(visits, 2);
  EXPECT_EQ(total, 4);
}

TEST(ExactSetStoreTest, DistinctElementsMatchesCount) {
  ExactSetStore store(1);
  for (uint64_t e = 0; e < 50; ++e) store.Apply(Insert(0, e));
  const std::vector<uint64_t> elements = store.DistinctElements(0);
  EXPECT_EQ(elements.size(), 50u);
}

// ---------------------------------------------------------------------------
// Stream I/O

TEST(StreamIoTest, RoundTrip) {
  const std::vector<Update> updates = {Insert(0, 10, 2), Delete(1, 20),
                                       Insert(2, 1ULL << 40)};
  std::ostringstream out;
  WriteUpdates(out, updates);
  std::istringstream in(out.str());
  const ParsedUpdates parsed = ReadUpdates(in);
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.updates, updates);
}

TEST(StreamIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n0 1 1\n   \n# more\n1 2 -1\n");
  const ParsedUpdates parsed = ReadUpdates(in);
  EXPECT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.updates.size(), 2u);
  EXPECT_EQ(parsed.updates[0], Insert(0, 1));
  EXPECT_EQ(parsed.updates[1], Delete(1, 2));
}

TEST(StreamIoTest, ReportsMalformedLinesWithNumbers) {
  std::istringstream in("0 1 1\nnot an update\n0 2 xyz\n0 3 1\n");
  const ParsedUpdates parsed = ReadUpdates(in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.updates.size(), 2u);
  ASSERT_EQ(parsed.errors.size(), 2u);
  EXPECT_NE(parsed.errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(parsed.errors[1].find("line 3"), std::string::npos);
}

TEST(StreamIoTest, ParseUpdateLineRejectsTrailingJunk) {
  Update u;
  EXPECT_TRUE(ParseUpdateLine("1 2 3", &u));
  EXPECT_EQ(u, Insert(1, 2, 3));
  EXPECT_FALSE(ParseUpdateLine("1 2 3 4", &u));
  EXPECT_FALSE(ParseUpdateLine("1 2", &u));
  EXPECT_FALSE(ParseUpdateLine("", &u));
  EXPECT_FALSE(ParseUpdateLine("-1 2 3", &u));  // Negative stream id.
}

TEST(StreamIoTest, ParsesNegativeDeltasAndWhitespace) {
  Update u;
  EXPECT_TRUE(ParseUpdateLine("  7   99   -12  ", &u));
  EXPECT_EQ(u, Delete(7, 99, 12));
}

}  // namespace
}  // namespace setsketch
