// End-to-end tests for the TCP sketch-serving subsystem (src/server/):
// the acceptance loopback flow (bulk updates with deletions + a site
// summary + remote set-expression queries), backpressure (RETRY_LATER)
// with zero acknowledged loss across graceful shutdown, shard-queue
// semantics, and the server's protocol-error handling on a raw socket.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "core/sketch_backend.h"
#include "distributed/site.h"
#include "expr/exact_evaluator.h"
#include "expr/parser.h"
#include "hash/prng.h"
#include "server/shard_queue.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "stream/exact_set_store.h"
#include "stream/stream_generator.h"
#include "util/stats.h"

namespace setsketch {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  return params;
}

constexpr uint64_t kMasterSeed = 20030609;

SketchServer::Options ServerOptions(int copies, int shards = 2,
                                    size_t queue_capacity = 64) {
  SketchServer::Options options;
  options.params = TestParams();
  options.copies = copies;
  options.seed = kMasterSeed;
  options.shards = shards;
  options.queue_capacity = queue_capacity;
  options.witness.pool_all_levels = true;
  return options;
}

std::unique_ptr<SketchClient> MustConnect(const SketchServer& server) {
  std::string error;
  auto client = SketchClient::Connect("127.0.0.1", server.port(), &error);
  EXPECT_NE(client, nullptr) << error;
  return client;
}

// --- ShardQueue unit behavior ------------------------------------------

TEST(ShardQueueTest, CapacityCountsWorkInFlight) {
  ShardQueue queue(2);
  auto batch = std::make_shared<IngestBatch>();
  EXPECT_TRUE(queue.CanAccept());
  EXPECT_TRUE(queue.Push(batch));
  EXPECT_TRUE(queue.CanAccept());
  EXPECT_TRUE(queue.Push(batch));
  EXPECT_FALSE(queue.CanAccept());  // Full: 2 in flight.
  // Popping alone does not free the slot — TaskDone does.
  ASSERT_NE(queue.PopOrWait(), nullptr);
  EXPECT_FALSE(queue.CanAccept());
  queue.TaskDone();
  EXPECT_TRUE(queue.CanAccept());
  ASSERT_NE(queue.PopOrWait(), nullptr);
  queue.TaskDone();
  queue.WaitDrained();  // Immediate: nothing in flight.
  EXPECT_EQ(queue.stats().depth, 0u);
  EXPECT_EQ(queue.stats().pushed, 2u);
}

TEST(ShardQueueTest, StopDrainsQueuedBatchesBeforeNull) {
  ShardQueue queue(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Push(std::make_shared<IngestBatch>()));
  }
  queue.Stop();
  EXPECT_FALSE(queue.CanAccept());
  EXPECT_FALSE(queue.Push(std::make_shared<IngestBatch>()));
  // All three queued batches are still delivered after Stop.
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(queue.PopOrWait(), nullptr) << "batch " << i;
    queue.TaskDone();
  }
  EXPECT_EQ(queue.PopOrWait(), nullptr);
}

TEST(ShardQueueTest, ShutdownWhileFullDeliversEveryQueuedBatch) {
  // Stop() on a queue at capacity: nothing queued is dropped, the stats
  // stay coherent, and a blocked worker drains to completion.
  constexpr size_t kCapacity = 4;
  ShardQueue queue(kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    ASSERT_TRUE(queue.CanAccept()) << "slot " << i;
    ASSERT_TRUE(queue.Push(std::make_shared<IngestBatch>()));
  }
  ASSERT_FALSE(queue.CanAccept());  // Full.
  EXPECT_EQ(queue.stats().depth, kCapacity);

  std::atomic<uint64_t> drained{0};
  std::thread worker([&queue, &drained] {
    while (queue.PopOrWait() != nullptr) {
      ++drained;
      queue.TaskDone();
    }
  });
  queue.Stop();  // While full, with the worker mid-drain.
  worker.join();
  EXPECT_EQ(drained.load(), kCapacity);
  const ShardQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.pushed, kCapacity);
  EXPECT_EQ(stats.depth, 0u);
  // WaitDrained after full drain returns immediately instead of hanging.
  queue.WaitDrained();
}

TEST(ShardQueueTest, DrainAfterShutdownReturnsNullForever) {
  ShardQueue queue(2);
  ASSERT_TRUE(queue.Push(std::make_shared<IngestBatch>()));
  queue.Stop();
  // The queued batch is still handed out once, then the queue stays
  // terminally empty: repeated PopOrWait calls keep returning nullptr
  // without blocking (a worker re-polling after shutdown must not hang).
  ASSERT_NE(queue.PopOrWait(), nullptr);
  queue.TaskDone();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.PopOrWait(), nullptr) << "poll " << i;
  }
  // Push after shutdown is refused and does not disturb accounting.
  EXPECT_FALSE(queue.Push(std::make_shared<IngestBatch>()));
  const ShardQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.pushed, 1u);
  EXPECT_EQ(stats.depth, 0u);
}

// --- Acceptance: end-to-end loopback flow ------------------------------

TEST(SketchServerTest, EndToEndLoopbackWithSummaryAndQueries) {
  SketchServer server(ServerOptions(/*copies=*/256));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok);

  // Two overlapping streams with churn (insertions AND deletions).
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.25));
  const PartitionedDataset data = gen.Generate(49152, 55);
  std::vector<Update> updates = data.ToInsertUpdates(3);
  ChurnOptions churn;
  churn.seed = 77;
  updates = InjectChurn(updates, churn);
  ASSERT_GE(updates.size(), 100000u);

  ExactSetStore exact(3);
  for (const Update& u : updates) exact.Apply(u);

  const std::vector<std::string> names = {"A", "B"};
  uint64_t acknowledged = 0;
  const size_t kBatch = 8192;
  for (size_t begin = 0; begin < updates.size(); begin += kBatch) {
    UpdateBatch batch;
    batch.stream_names = names;
    const size_t end = std::min(updates.size(), begin + kBatch);
    batch.updates.assign(updates.begin() + begin, updates.begin() + end);
    const SketchClient::Status status = client->PushUpdatesWithRetry(batch);
    ASSERT_TRUE(status.ok) << status.error;
    acknowledged += status.accepted;
  }
  EXPECT_EQ(acknowledged, updates.size());

  // One site ships a summary for a third stream C over the same coins.
  Site site("site-1", TestParams(), 256, kMasterSeed);
  site.ObserveStream("C");
  Xoshiro256StarStar rng(4242);
  for (int e = 0; e < 4000; ++e) {
    const uint64_t element = rng.Next();
    site.Ingest("C", element, 1);
    exact.Apply(Insert(2, element));
  }
  const SketchClient::Status summary_status =
      client->PushSummary(site.EncodeSummary());
  ASSERT_TRUE(summary_status.ok) << summary_status.error;
  EXPECT_EQ(summary_status.accepted, 1u);
  EXPECT_FALSE(summary_status.replaced);
  // Idempotent retransmission.
  const SketchClient::Status again = client->PushSummary(site.EncodeSummary());
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.replaced);

  // Union, intersection and difference queries answered remotely must hit
  // the same relative-error envelope the in-process engine test asserts.
  const StreamNameMap name_map = {{"A", 0}, {"B", 1}, {"C", 2}};
  for (const std::string& text :
       {std::string("A | B"), std::string("A & B"), std::string("A - B"),
        std::string("A | C")}) {
    const QueryResultInfo answer = client->Query(text);
    ASSERT_TRUE(answer.ok) << text << ": " << answer.error;
    const ParseResult parsed = ParseExpression(text);
    const int64_t truth =
        ExactCardinality(*parsed.expression, exact, name_map);
    ASSERT_GT(truth, 0) << text;
    EXPECT_LT(RelativeError(answer.estimate, static_cast<double>(truth)),
              0.7)
        << text << ": estimate " << answer.estimate << " vs exact " << truth;
    EXPECT_LE(answer.lo, answer.hi) << text;
  }

  std::string stats_text;
  ASSERT_TRUE(client->Stats(&stats_text).ok);
  EXPECT_NE(stats_text.find("updates_applied " +
                            std::to_string(updates.size())),
            std::string::npos)
      << stats_text;
  EXPECT_NE(stats_text.find("summaries_accepted 2"), std::string::npos);

  ASSERT_TRUE(client->Shutdown().ok);
  server.Wait();
  EXPECT_EQ(server.stats().updates_applied, updates.size());
}

// --- Acceptance: backpressure + graceful drain --------------------------

TEST(SketchServerTest, BackpressureRetryLaterLosesNoAcknowledgedBatch) {
  // One slow shard with a single-slot queue: the round trip is much
  // faster than applying a 5000-update batch at r = 512, so consecutive
  // pushes must observe RETRY_LATER.
  SketchServer::Options options =
      ServerOptions(/*copies=*/512, /*shards=*/1, /*queue_capacity=*/1);
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  constexpr int kBatches = 20;
  constexpr int kPerBatch = 5000;
  std::vector<Update> all;
  all.reserve(kBatches * kPerBatch);
  uint64_t retries_seen = 0;
  uint64_t acknowledged_updates = 0;
  for (int b = 0; b < kBatches; ++b) {
    UpdateBatch batch;
    batch.stream_names = {"A"};
    batch.updates.reserve(kPerBatch);
    for (int i = 0; i < kPerBatch; ++i) {
      const uint64_t element =
          static_cast<uint64_t>(b * kPerBatch + i) * 2654435761ULL;
      // Every 5th update is a deletion of the previous element (net
      // churn), so the drained state exercises signed counters too.
      const int64_t delta = i % 5 == 4 ? -1 : 1;
      batch.updates.push_back(Update{0, element, delta});
    }
    all.insert(all.end(), batch.updates.begin(), batch.updates.end());
    uint64_t retries = 0;
    const SketchClient::Status status = client->PushUpdatesWithRetry(
        batch, /*max_attempts=*/10000, /*backoff_ms=*/1, &retries);
    ASSERT_TRUE(status.ok) << status.error;
    retries_seen += retries;
    acknowledged_updates += status.accepted;
  }
  EXPECT_GT(retries_seen, 0u) << "backpressure never engaged";
  EXPECT_EQ(acknowledged_updates, all.size());

  // Graceful shutdown drains the queue; afterwards the server's bank must
  // be bit-identical to a serial reference ingest — nothing acknowledged
  // was lost, nothing applied twice.
  ASSERT_TRUE(client->Shutdown().ok);
  server.Wait();
  EXPECT_EQ(server.stats().updates_applied, all.size());
  EXPECT_EQ(server.stats().batches_rejected, retries_seen);

  SketchBank reference(SketchFamily(options.params, options.copies,
                                    options.seed));
  reference.AddStream("A");
  for (const Update& u : all) reference.Apply("A", u.element, u.delta);
  const auto& served = server.bank().Sketches("A");
  const auto& expected = reference.Sketches("A");
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < served.size(); ++i) {
    ASSERT_TRUE(served[i] == expected[i]) << "copy " << i;
  }
}

// --- Query/push edge cases over the wire --------------------------------

TEST(SketchServerTest, QueryErrorsAndProvablyEmpty) {
  SketchServer server(ServerOptions(/*copies=*/16));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  UpdateBatch batch;
  batch.stream_names = {"A"};
  batch.updates = {Insert(0, 7), Insert(0, 8)};
  ASSERT_TRUE(client->PushUpdates(batch).ok);

  const QueryResultInfo parse_error = client->Query("A &");
  EXPECT_FALSE(parse_error.ok);
  EXPECT_NE(parse_error.error.find("parse error"), std::string::npos);

  const QueryResultInfo unknown = client->Query("A & Nope");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown stream"), std::string::npos);

  // Algebraically empty: answered exactly, even for unknown streams' ids.
  const QueryResultInfo empty = client->Query("A - A");
  EXPECT_TRUE(empty.ok) << empty.error;
  EXPECT_DOUBLE_EQ(empty.estimate, 0.0);
}

TEST(SketchServerTest, DrainingServerRefusesNewPushes) {
  SketchServer server(ServerOptions(/*copies=*/8));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Shutdown().ok);

  UpdateBatch batch;
  batch.stream_names = {"A"};
  batch.updates = {Insert(0, 1)};
  const SketchClient::Status refused = client->PushUpdates(batch);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("SHUTTING_DOWN"), std::string::npos);
  server.Wait();
}

// --- Raw-socket protocol robustness -------------------------------------

/// Minimal raw connection for sending hand-crafted (possibly malformed)
/// byte sequences that SketchClient refuses to produce.
class RawConnection {
 public:
  explicit RawConnection(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  /// Reads frames until one is decoded, the peer closes, or decoding
  /// fails client-side. Returns false on close/failure.
  bool ReadFrame(Frame* frame) {
    char buffer[4096];
    while (true) {
      const FrameDecoder::Status status = decoder_.Next(frame);
      if (status == FrameDecoder::Status::kFrame) return true;
      if (status == FrameDecoder::Status::kError) return false;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return false;
      decoder_.Feed(buffer, static_cast<size_t>(n));
    }
  }

  /// True iff the server closed the connection (EOF or reset).
  bool WaitClosed() {
    char buffer[256];
    while (true) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return true;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_;
};

TEST(SketchServerTest, MalformedPayloadKeepsConnectionUsable) {
  SketchServer server(ServerOptions(/*copies=*/8));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());

  // A PUSH_UPDATES frame whose payload is garbage: ERROR BAD_PAYLOAD,
  // but the frame boundary is intact so the connection survives.
  ASSERT_TRUE(raw.Send(EncodeFrame(Opcode::kPushUpdates, "\xff\xff\xff")));
  Frame reply;
  ASSERT_TRUE(raw.ReadFrame(&reply));
  ASSERT_EQ(reply.opcode, Opcode::kError);
  ErrorInfo info;
  ASSERT_TRUE(DecodeError(reply.payload, &info));
  EXPECT_EQ(info.code, WireError::kBadPayload);

  // A response opcode sent as a request: UNKNOWN_OPCODE, still open.
  ASSERT_TRUE(raw.Send(EncodeFrame(Opcode::kPong, "")));
  ASSERT_TRUE(raw.ReadFrame(&reply));
  ASSERT_EQ(reply.opcode, Opcode::kError);
  ASSERT_TRUE(DecodeError(reply.payload, &info));
  EXPECT_EQ(info.code, WireError::kUnknownOpcode);

  // The connection still answers pings afterwards.
  ASSERT_TRUE(raw.Send(EncodeFrame(Opcode::kPing, "still-here")));
  ASSERT_TRUE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.opcode, Opcode::kPong);
  EXPECT_EQ(reply.payload, "still-here");

  EXPECT_GE(server.stats().protocol_errors, 2u);
  server.Stop();
}

TEST(SketchServerTest, HeaderCorruptionClosesConnectionWithErrorFrame) {
  SketchServer server(ServerOptions(/*copies=*/8));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());

  ASSERT_TRUE(raw.Send("this is not a frame at all"));
  Frame reply;
  ASSERT_TRUE(raw.ReadFrame(&reply));
  ASSERT_EQ(reply.opcode, Opcode::kError);
  ErrorInfo info;
  ASSERT_TRUE(DecodeError(reply.payload, &info));
  EXPECT_EQ(info.code, WireError::kBadMagic);
  EXPECT_TRUE(raw.WaitClosed());
  server.Stop();
}

TEST(SketchServerTest, ErrorBudgetDropsAbusiveConnection) {
  SketchServer::Options options = ServerOptions(/*copies=*/8);
  options.max_connection_errors = 3;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());

  // Three recoverable payload errors exhaust the budget; the server
  // answers each, then drops the connection with TOO_MANY_ERRORS.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(raw.Send(EncodeFrame(Opcode::kPushUpdates, "\xff")));
  }
  Frame reply;
  ErrorInfo info;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(raw.ReadFrame(&reply)) << "reply " << i;
    ASSERT_EQ(reply.opcode, Opcode::kError);
    ASSERT_TRUE(DecodeError(reply.payload, &info));
    EXPECT_EQ(info.code, WireError::kBadPayload);
  }
  ASSERT_TRUE(raw.ReadFrame(&reply));
  ASSERT_EQ(reply.opcode, Opcode::kError);
  ASSERT_TRUE(DecodeError(reply.payload, &info));
  EXPECT_EQ(info.code, WireError::kTooManyErrors);
  EXPECT_TRUE(raw.WaitClosed());
  server.Stop();
}

TEST(SketchServerTest, ConcurrentClientsMergeIntoOneView) {
  SketchServer server(ServerOptions(/*copies=*/128));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Three clients concurrently push disjoint fragments of stream A.
  constexpr int kClients = 3;
  constexpr int kPerClient = 2000;
  std::vector<std::thread> pushers;
  for (int c = 0; c < kClients; ++c) {
    pushers.emplace_back([&server, c] {
      std::string connect_error;
      auto client =
          SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
      ASSERT_NE(client, nullptr) << connect_error;
      UpdateBatch batch;
      batch.stream_names = {"A"};
      for (int i = 0; i < kPerClient; ++i) {
        batch.updates.push_back(
            Insert(0, static_cast<uint64_t>(c * kPerClient + i) * 7919 + 1));
      }
      const SketchClient::Status status =
          client->PushUpdatesWithRetry(batch);
      EXPECT_TRUE(status.ok) << status.error;
    });
  }
  for (std::thread& pusher : pushers) pusher.join();

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  const QueryResultInfo answer = client->Query("A");
  ASSERT_TRUE(answer.ok) << answer.error;
  EXPECT_LT(RelativeError(answer.estimate, kClients * kPerClient), 0.5);
  server.Stop();
}

// --- Backend-tagged ingest -----------------------------------------------

TEST(SketchServerTest, BackendTaggedPushServesEstimatesAndStats) {
  SketchServer server(ServerOptions(/*copies=*/64));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  // One batch names a default stream D plus two backend-tagged streams:
  // T on theta/KMV and S on SetSketch. The tags ride the PUSH frame.
  UpdateBatch batch;
  batch.stream_names = {"D", "T", "S"};
  batch.stream_backends = {
      0, static_cast<uint8_t>(SketchBackendId::kThetaKmv),
      static_cast<uint8_t>(SketchBackendId::kSetSketch)};
  constexpr int kD = 6000, kT = 4000, kS = 2000;
  for (int e = 0; e < kD; ++e) {
    const uint64_t element = static_cast<uint64_t>(e) * 0x9E3779B9ULL + 1;
    batch.updates.push_back(Insert(0, element));
    if (e < kT) batch.updates.push_back(Insert(1, element));
    if (e < kS) batch.updates.push_back(Insert(2, element));
  }
  const SketchClient::Status status = client->PushUpdatesWithRetry(batch);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(status.accepted, batch.updates.size());

  // Every stream answers through its own synopsis within a loose
  // envelope (backend size 4096 => eps well under 10%).
  const std::pair<const char*, double> probes[] = {
      {"D", kD}, {"T", kT}, {"S", kS}};
  for (const auto& [name, truth] : probes) {
    const QueryResultInfo answer = client->Query(name);
    ASSERT_TRUE(answer.ok) << name << ": " << answer.error;
    EXPECT_LT(RelativeError(answer.estimate, truth), 0.2)
        << name << ": estimate " << answer.estimate << " vs " << truth;
    EXPECT_LE(answer.lo, answer.hi) << name;
  }

  // Expressions cannot mix synopsis types; the refusal is typed, not a
  // crash or a silently wrong number.
  const QueryResultInfo mixed = client->Query("T | S");
  EXPECT_FALSE(mixed.ok);
  EXPECT_NE(mixed.error.find("mixed sketch backends"), std::string::npos)
      << mixed.error;

  // STATS surfaces the backend wiring for operators.
  std::string stats_text;
  ASSERT_TRUE(client->Stats(&stats_text).ok);
  EXPECT_NE(stats_text.find("backend_default two_level_hash"),
            std::string::npos)
      << stats_text;
  EXPECT_NE(stats_text.find("backend_streams 2"), std::string::npos)
      << stats_text;
  EXPECT_NE(stats_text.find("plan_cache_backend_queries"),
            std::string::npos)
      << stats_text;
  server.Stop();
}

TEST(SketchServerTest, BackendConflictRefusedWithoutSideEffects) {
  SketchServer server(ServerOptions(/*copies=*/64));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  // X is born on theta/KMV.
  UpdateBatch first;
  first.stream_names = {"X"};
  first.stream_backends = {static_cast<uint8_t>(SketchBackendId::kThetaKmv)};
  for (int e = 0; e < 1000; ++e) {
    first.updates.push_back(Insert(0, static_cast<uint64_t>(e) * 7919 + 3));
  }
  ASSERT_TRUE(client->PushUpdatesWithRetry(first).ok);
  const uint64_t applied_before = server.stats().updates_applied;

  // A batch re-tagging X as set_sketch is refused wholesale — including
  // the brand-new stream Y riding in the same frame.
  UpdateBatch conflicting;
  conflicting.stream_names = {"X", "Y"};
  conflicting.stream_backends = {
      static_cast<uint8_t>(SketchBackendId::kSetSketch),
      static_cast<uint8_t>(SketchBackendId::kSetSketch)};
  conflicting.updates = {Insert(0, 1), Insert(1, 2)};
  const SketchClient::Status refused = client->PushUpdates(conflicting);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("CONFIG_MISMATCH"), std::string::npos)
      << refused.error;
  EXPECT_NE(refused.error.find("already uses the theta_kmv backend"),
            std::string::npos)
      << refused.error;

  // No trace: nothing applied, Y never registered, X still queryable.
  EXPECT_EQ(server.stats().updates_applied, applied_before);
  EXPECT_FALSE(client->Query("Y").ok);
  const QueryResultInfo x = client->Query("X");
  ASSERT_TRUE(x.ok) << x.error;
  EXPECT_LT(RelativeError(x.estimate, 1000.0), 0.2);

  // Tag 0 means "no preference": untagged updates to X are welcome.
  UpdateBatch untagged;
  untagged.stream_names = {"X"};
  untagged.updates = {Insert(0, 0xFEEDu)};
  EXPECT_TRUE(client->PushUpdatesWithRetry(untagged).ok);
  server.Stop();
}

}  // namespace
}  // namespace setsketch
