// Tests for the planner front end (expr/canonical.h): canonical-form
// equality of commuted/reassociated inputs, structural hashing, common
// sub-expression identification, pointwise Boolean equivalence of the
// rewrites, and the parser's typed error paths the planner depends on.

#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expr/analysis.h"
#include "expr/canonical.h"
#include "expr/expression.h"
#include "expr/parser.h"

namespace setsketch {
namespace {

ExprPtr Parse(const std::string& text) {
  const ParseResult p = ParseExpression(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.error;
  return p.expression;
}

CanonicalPlan Canon(const std::string& text) {
  return Canonicalize(*Parse(text));
}

// --- Canonical equality of equivalent inputs ----------------------------

TEST(CanonicalTest, CommutedAndReassociatedFormsShareOnePlan) {
  // Every pair is the same query written differently; the planner must
  // produce byte-identical plans with equal structural hashes, since the
  // plan cache keys on exactly that.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"A | (B & C)", "(C & B) | A"},
      {"A | B | C", "C | (B | A)"},
      {"(A | B) | (C | D)", "D | C | B | A"},
      {"A & B & C", "(C & A) & B"},
      {"(A & B) | (B & A)", "B & A"},
      {"A - (B | C)", "A - (C | B)"},
      {"(A | A) & B", "B & A"},
  };
  for (const auto& [left, right] : pairs) {
    const CanonicalPlan a = Canon(left);
    const CanonicalPlan b = Canon(right);
    ASSERT_TRUE(a.ok() && b.ok()) << left << " / " << right;
    EXPECT_EQ(a.hash(), b.hash()) << left << " vs " << right;
    EXPECT_EQ(a.ToString(), b.ToString()) << left << " vs " << right;
  }
}

TEST(CanonicalTest, DistinctQueriesGetDistinctPlans) {
  const std::vector<std::string> queries = {
      "A", "B", "A | B", "A & B", "A - B", "B - A",
      "A | (B & C)", "(A | B) & C", "A - (B | C)", "(A - B) | C",
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      const CanonicalPlan a = Canon(queries[i]);
      const CanonicalPlan b = Canon(queries[j]);
      EXPECT_NE(a.ToString(), b.ToString())
          << queries[i] << " vs " << queries[j];
      EXPECT_NE(a.hash(), b.hash()) << queries[i] << " vs " << queries[j];
    }
  }
}

TEST(CanonicalTest, NestedUnionsFlattenToOneNaryNode) {
  const CanonicalPlan plan = Canon("((A | B) | (C | D)) | B");
  ASSERT_TRUE(plan.ok());
  const CanonicalNode& root = plan.nodes[static_cast<size_t>(plan.root)];
  EXPECT_EQ(root.kind, Expression::Kind::kUnion);
  EXPECT_EQ(root.children.size(), 4u);  // B deduplicated.
  for (const int child : root.children) {
    EXPECT_EQ(plan.nodes[static_cast<size_t>(child)].kind,
              Expression::Kind::kStream);
  }
  EXPECT_EQ(plan.streams,
            (std::vector<std::string>{"A", "B", "C", "D"}));
}

TEST(CanonicalTest, DifferenceChainsPushDownIntoOneSubtrahendUnion) {
  // (X - Y) - Z == X - (Y u Z) pointwise, so both spellings must compile
  // to the same plan.
  const CanonicalPlan chained = Canon("(A - B) - C");
  const CanonicalPlan pushed = Canon("A - (B | C)");
  ASSERT_TRUE(chained.ok() && pushed.ok());
  EXPECT_EQ(chained.ToString(), pushed.ToString());
  EXPECT_EQ(chained.hash(), pushed.hash());
  // Longer chains collapse too.
  EXPECT_EQ(Canon("((A - B) - C) - D").ToString(),
            Canon("A - (B | C | D)").ToString());
}

TEST(CanonicalTest, SharedSubExpressionsAreInternedOnce) {
  const CanonicalPlan plan = Canon("(A & B) | ((A & B) - C)");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.SharedNodeCount(), 1);
  int shared = -1;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].kind != Expression::Kind::kStream &&
        plan.nodes[i].uses > 1) {
      EXPECT_EQ(shared, -1) << "only (A & B) should be shared";
      shared = static_cast<int>(i);
    }
  }
  ASSERT_NE(shared, -1);
  EXPECT_EQ(plan.nodes[static_cast<size_t>(shared)].kind,
            Expression::Kind::kIntersect);
  EXPECT_EQ(plan.nodes[static_cast<size_t>(shared)].uses, 2);
  EXPECT_EQ(plan.NodeToString(shared), "(A & B)");
}

TEST(CanonicalTest, NoSharingWhenSubtreesDiffer) {
  EXPECT_EQ(Canon("(A & B) | (A & C)").SharedNodeCount(), 0);
  EXPECT_EQ(Canon("A | B").SharedNodeCount(), 0);
}

// --- Pointwise Boolean equivalence --------------------------------------

/// Evaluates `expr` and its canonical plan on every truth assignment of
/// the plan's streams and asserts pointwise equality; this is the property
/// that makes planned estimates bit-identical to direct ones.
void ExpectPlanMatchesTreeOnAllAssignments(const Expression& expr) {
  const CanonicalPlan plan = Canonicalize(expr);
  ASSERT_TRUE(plan.ok());
  const int n = static_cast<int>(plan.streams.size());
  ASSERT_LE(n, 12);
  std::vector<unsigned char> scratch;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto column_occupied = [&](int column) {
      return ((mask >> column) & 1u) != 0;
    };
    const auto name_occupied = [&](const std::string& name) {
      for (int c = 0; c < n; ++c) {
        if (plan.streams[static_cast<size_t>(c)] == name) {
          return column_occupied(c);
        }
      }
      ADD_FAILURE() << "unknown stream " << name;
      return false;
    };
    EXPECT_EQ(EvaluatePlan(plan, column_occupied, &scratch),
              expr.Evaluate(name_occupied))
        << expr.ToString() << " mask=" << mask;
  }
}

TEST(CanonicalTest, PlanEvaluationMatchesTreeEvaluation) {
  const std::vector<std::string> queries = {
      "A", "A | B", "A & B", "A - B", "(A - B) - C",
      "A | (B & C)", "(A | B) & (C | D)", "((A - B) - C) - D",
      "(A & B) | ((A & B) - C)", "A - (A - B)", "(A | B) - (A & B)",
  };
  for (const std::string& text : queries) {
    ExpectPlanMatchesTreeOnAllAssignments(*Parse(text));
  }
}

/// Uniformly random expression tree over `names`, depth-bounded.
ExprPtr RandomExpression(std::mt19937_64& rng,
                         const std::vector<std::string>& names, int depth) {
  std::uniform_int_distribution<int> pick_kind(0, depth <= 0 ? 0 : 3);
  std::uniform_int_distribution<size_t> pick_name(0, names.size() - 1);
  switch (pick_kind(rng)) {
    case 1:
      return Expression::Union(RandomExpression(rng, names, depth - 1),
                               RandomExpression(rng, names, depth - 1));
    case 2:
      return Expression::Intersect(RandomExpression(rng, names, depth - 1),
                                   RandomExpression(rng, names, depth - 1));
    case 3:
      return Expression::Difference(RandomExpression(rng, names, depth - 1),
                                    RandomExpression(rng, names, depth - 1));
    default:
      return Expression::Stream(names[pick_name(rng)]);
  }
}

TEST(CanonicalTest, RandomizedPlansStayPointwiseEquivalent) {
  std::mt19937_64 rng(0xC0FFEE);
  const std::vector<std::string> names = {"A", "B", "C", "D"};
  for (int trial = 0; trial < 200; ++trial) {
    const ExprPtr expr = RandomExpression(rng, names, 4);
    ExpectPlanMatchesTreeOnAllAssignments(*expr);
    // Round-tripping the plan back to a tree preserves semantics too.
    const CanonicalPlan plan = Canonicalize(*expr);
    const ExprPtr back = CanonicalToExpression(plan);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(SemanticallyEqual(*back, *expr))
        << expr->ToString() << " vs " << back->ToString();
    // Canonicalization is a fixed point: re-canonicalizing the rebuilt
    // tree changes nothing.
    EXPECT_EQ(Canonicalize(*back).ToString(), plan.ToString());
    EXPECT_EQ(Canonicalize(*back).hash(), plan.hash());
  }
}

TEST(CanonicalTest, UsesCountsOnlyReachableParents) {
  // "A - A" simplifies structurally: both leaves intern to one node used
  // by one reachable parent, not by dead intermediates.
  const CanonicalPlan plan = Canon("A - A");
  ASSERT_TRUE(plan.ok());
  for (const CanonicalNode& node : plan.nodes) {
    EXPECT_LE(node.uses, 2);
  }
  EXPECT_EQ(plan.streams, std::vector<std::string>{"A"});
}

// --- Parser typed error paths -------------------------------------------

TEST(CanonicalTest, ParserRejectsEmptyInputWithTypedError) {
  for (const std::string text : {"", "   ", "\t\n  "}) {
    const ParseResult p = ParseExpression(text);
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.code, ParseErrorCode::kEmptyInput) << "'" << text << "'";
    EXPECT_NE(p.error.find("position"), std::string::npos) << p.error;
  }
}

TEST(CanonicalTest, ParserRejectsUnbalancedParensWithTypedError) {
  for (const std::string text : {"(A", "((A | B)", "A)", "(A | B))",
                                 "(", ")"}) {
    const ParseResult p = ParseExpression(text);
    EXPECT_FALSE(p.ok()) << text;
    EXPECT_TRUE(p.code == ParseErrorCode::kUnbalancedParens ||
                p.code == ParseErrorCode::kUnexpectedToken)
        << text << " -> " << static_cast<int>(p.code);
    EXPECT_NE(p.error.find("position"), std::string::npos) << p.error;
  }
  EXPECT_EQ(ParseExpression("(A").code, ParseErrorCode::kUnbalancedParens);
  EXPECT_EQ(ParseExpression("A)").code, ParseErrorCode::kUnbalancedParens);
}

TEST(CanonicalTest, ParserRejectsMalformedOperatorsWithTypedError) {
  for (const std::string text : {"A &", "| B", "A & & B", "&"}) {
    const ParseResult p = ParseExpression(text);
    EXPECT_FALSE(p.ok()) << text;
    EXPECT_EQ(p.code, ParseErrorCode::kUnexpectedToken) << text;
  }
  // A well-formed prefix followed by junk is classified as trailing input.
  for (const std::string text : {"A B", "A $ B"}) {
    const ParseResult p = ParseExpression(text);
    EXPECT_FALSE(p.ok()) << text;
    EXPECT_EQ(p.code, ParseErrorCode::kTrailingInput) << text;
  }
}

TEST(CanonicalTest, ParserCapsNestingDepthWithTypedError) {
  // Balanced but absurdly deep input must be refused, not overflow the
  // stack. 256 levels is the documented cap; 300 exceeds it.
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "(";
  deep += "A";
  for (int i = 0; i < 300; ++i) deep += ")";
  const ParseResult p = ParseExpression(deep);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.code, ParseErrorCode::kTooDeep);
  EXPECT_NE(p.error.find("position"), std::string::npos) << p.error;

  // Just under the cap still parses.
  std::string shallow;
  for (int i = 0; i < 200; ++i) shallow += "(";
  shallow += "A";
  for (int i = 0; i < 200; ++i) shallow += ")";
  EXPECT_TRUE(ParseExpression(shallow).ok());
}

TEST(CanonicalTest, ParseSuccessReportsNoErrorCode) {
  const ParseResult p = ParseExpression("(A - B) & C");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.code, ParseErrorCode::kNone);
  EXPECT_TRUE(p.error.empty());
}

}  // namespace
}  // namespace setsketch
