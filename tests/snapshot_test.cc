// Tests for StreamEngine snapshots: save/load round trips, estimate
// equivalence, resumed ingest, and rejection of malformed input.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "query/stream_engine.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

StreamEngine::Options SnapshotOptions() {
  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 64;
  options.seed = 31415;
  options.witness.pool_all_levels = true;
  return options;
}

StreamEngine BuildPopulatedEngine() {
  StreamEngine engine(SnapshotOptions());
  engine.RegisterQuery("A & B");
  engine.RegisterQuery("A - B");
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.3));
  const PartitionedDataset data = gen.Generate(2048, 7);
  engine.IngestAll(data.ToInsertUpdates(9));
  return engine;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  StreamEngine original = BuildPopulatedEngine();
  const std::string bytes = original.SaveSnapshot();
  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(bytes);
  ASSERT_NE(restored, nullptr);

  EXPECT_EQ(restored->stream_names(), original.stream_names());
  EXPECT_EQ(restored->num_queries(), original.num_queries());
  EXPECT_EQ(restored->updates_processed(), original.updates_processed());
  EXPECT_EQ(restored->SynopsisBytes(), original.SynopsisBytes());

  // Same sketches => identical estimates for every query.
  for (int q = 0; q < original.num_queries(); ++q) {
    const auto a = original.AnswerQuery(q);
    const auto b = restored->AnswerQuery(q);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate) << a.expression;
  }
}

TEST(SnapshotTest, DefaultConfigKeepsLegacySsn1BytesExactly) {
  // Backend-aware builds must emit the pre-backend layout bit for bit
  // when every stream is default: same magic, same deterministic bytes.
  StreamEngine original = BuildPopulatedEngine();
  const std::string bytes = original.SaveSnapshot();
  ASSERT_GE(bytes.size(), 4u);
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  EXPECT_EQ(magic, 0x53534E31u) << "default snapshot must stay SSN1";

  // Save → load → save is a fixed point: the restored engine's snapshot
  // reproduces the original bytes exactly.
  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->SaveSnapshot(), bytes);
}

TEST(SnapshotTest, BackendStreamsRoundTripThroughSsn2) {
  StreamEngine::Options options = SnapshotOptions();
  options.default_backend = SketchBackendId::kSetSketch;
  options.backend_size = 256;
  StreamEngine engine(options);
  engine.RegisterStream("A");
  engine.RegisterStreamWithBackend("B", SketchBackendId::kTwoLevelHash);
  engine.RegisterStreamWithBackend("C", SketchBackendId::kThetaKmv);
  VennPartitionGenerator gen(3, {0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2});
  const PartitionedDataset data = gen.Generate(4096, 11);
  engine.IngestAll(data.ToInsertUpdates(5));

  const std::string bytes = engine.SaveSnapshot();
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  EXPECT_EQ(magic, 0x53534E32u) << "backend streams must upgrade to SSN2";

  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->stream_names(), engine.stream_names());
  // Each stream's backend survives: identical estimates per stream
  // (expressions cannot mix backends, so probe one at a time).
  for (const char* expr : {"A", "B", "C"}) {
    const auto before = engine.EstimateNow(expr);
    const auto after = restored->EstimateNow(expr);
    ASSERT_TRUE(before.ok) << expr;
    ASSERT_TRUE(after.ok) << expr;
    EXPECT_DOUBLE_EQ(before.estimate, after.estimate) << expr;
  }
  // And the round trip is a fixed point at the byte level too.
  EXPECT_EQ(restored->SaveSnapshot(), bytes);
}

TEST(SnapshotTest, RestoredEngineKeepsIngesting) {
  StreamEngine original = BuildPopulatedEngine();
  const std::string bytes = original.SaveSnapshot();
  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(bytes);
  ASSERT_NE(restored, nullptr);

  // Feed the same continuation stream to both; answers must stay equal.
  for (int e = 0; e < 500; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 7919 + 123;
    original.Ingest("A", elem, 1);
    restored->Ingest("A", elem, 1);
    if (e % 3 == 0) {
      original.Ingest("B", elem, 1);
      restored->Ingest("B", elem, 1);
    }
  }
  const auto a = original.AnswerQuery(0);
  const auto b = restored->AnswerQuery(0);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(SnapshotTest, ExactTrackingIsNotSerialized) {
  StreamEngine::Options options = SnapshotOptions();
  options.track_exact = true;
  StreamEngine engine(options);
  engine.RegisterQuery("A");
  engine.Ingest("A", 42, 1);
  ASSERT_EQ(engine.AnswerQuery(0).exact, 1);

  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(engine.SaveSnapshot());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->AnswerQuery(0).exact, -1);  // No ground truth.
}

TEST(SnapshotTest, EmptyEngineRoundTrips) {
  StreamEngine engine(SnapshotOptions());
  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(engine.SaveSnapshot());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->num_queries(), 0);
  EXPECT_TRUE(restored->stream_names().empty());
}

TEST(SnapshotTest, RejectsMalformedInput) {
  StreamEngine engine = BuildPopulatedEngine();
  const std::string bytes = engine.SaveSnapshot();

  EXPECT_EQ(StreamEngine::LoadSnapshot(""), nullptr);
  EXPECT_EQ(StreamEngine::LoadSnapshot("garbage"), nullptr);
  // Every truncation must be rejected cleanly.
  for (size_t cut : {size_t{4}, bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_EQ(StreamEngine::LoadSnapshot(bytes.substr(0, cut)), nullptr)
        << "cut at " << cut;
  }
  // Trailing junk is rejected too.
  EXPECT_EQ(StreamEngine::LoadSnapshot(bytes + "x"), nullptr);
  // Bad magic.
  std::string corrupted = bytes;
  corrupted[0] = static_cast<char>(corrupted[0] + 1);
  EXPECT_EQ(StreamEngine::LoadSnapshot(corrupted), nullptr);
}

}  // namespace
}  // namespace setsketch
