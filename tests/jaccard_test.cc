// Tests for the deletion-robust Jaccard estimator.

#include <gtest/gtest.h>

#include "core/jaccard_estimator.h"
#include "core/sketch_bank.h"
#include "stream/stream_generator.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

WitnessOptions Pooled() {
  WitnessOptions options;
  options.pool_all_levels = true;
  return options;
}

TEST(JaccardTest, RejectsBadInputs) {
  EXPECT_FALSE(EstimateJaccard({}).ok);
  SketchBank bank(SketchFamily(TestParams(), 4, 1));
  bank.AddStream("A");
  // Groups of size 1 are not pairs.
  EXPECT_FALSE(EstimateJaccard(bank.Groups({"A"})).ok);
}

TEST(JaccardTest, EmptyStreamsGiveZero) {
  SketchBank bank(SketchFamily(TestParams(), 32, 3));
  bank.AddStream("A");
  bank.AddStream("B");
  const JaccardEstimate est =
      EstimateJaccard(bank.Groups({"A", "B"}), Pooled());
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
}

TEST(JaccardTest, IdenticalStreamsGiveOne) {
  SketchBank bank(SketchFamily(TestParams(), 128, 5));
  bank.AddStream("A");
  bank.AddStream("B");
  for (int e = 0; e < 2000; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761ULL;
    bank.Apply("A", elem, 1);
    bank.Apply("B", elem, 2);  // Frequencies differ; sets match.
  }
  const JaccardEstimate est =
      EstimateJaccard(bank.Groups({"A", "B"}), Pooled());
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.jaccard, 1.0);
}

TEST(JaccardTest, DisjointStreamsGiveZero) {
  SketchBank bank(SketchFamily(TestParams(), 128, 7));
  bank.AddStream("A");
  bank.AddStream("B");
  for (int e = 0; e < 1000; ++e) {
    bank.Apply("A", static_cast<uint64_t>(e) * 7919 + 1, 1);
    bank.Apply("B", static_cast<uint64_t>(e) * 104729 + (1ULL << 50), 1);
  }
  const JaccardEstimate est =
      EstimateJaccard(bank.Groups({"A", "B"}), Pooled());
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
}

class JaccardAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(JaccardAccuracyTest, TracksTargetOverlap) {
  const double ratio = GetParam();  // J = ratio (intersection probs).
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(ratio));
  const PartitionedDataset data = gen.Generate(8192, 11);
  const auto bank = BankFromDataset(data, 256, 13);
  const JaccardEstimate est =
      EstimateJaccard(bank->Groups({"S0", "S1"}), Pooled());
  ASSERT_TRUE(est.ok);
  const double truth = static_cast<double>(data.regions[3].size()) /
                       static_cast<double>(data.UnionSize());
  // ~360 pooled observations: sd ~ sqrt(J(1-J)/360) <= 0.027.
  EXPECT_NEAR(est.jaccard, truth, 0.1) << "target " << ratio;
  // Interval sanity.
  const Interval interval = JaccardInterval(est);
  EXPECT_TRUE(interval.Contains(est.jaccard));
  EXPECT_LT(interval.Width(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, JaccardAccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75));

TEST(JaccardTest, RobustToDeletions) {
  // A == B, then delete half of B: J drops from 1 to 1/2 / 1 = 0.5.
  SketchBank bank(SketchFamily(TestParams(), 256, 17));
  bank.AddStream("A");
  bank.AddStream("B");
  const int n = 4000;
  for (int e = 0; e < n; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 31337 + 3;
    bank.Apply("A", elem, 1);
    bank.Apply("B", elem, 1);
  }
  for (int e = 0; e < n; e += 2) {
    bank.Apply("B", static_cast<uint64_t>(e) * 31337 + 3, -1);
  }
  const JaccardEstimate est =
      EstimateJaccard(bank.Groups({"A", "B"}), Pooled());
  ASSERT_TRUE(est.ok);
  EXPECT_NEAR(est.jaccard, 0.5, 0.1);
}

TEST(JaccardTest, StrictModeAlsoWorks) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(8192, 19);
  const auto bank = BankFromDataset(data, 512, 21);
  WitnessOptions strict;  // Single-level, Figure 6 geometry.
  const JaccardEstimate est =
      EstimateJaccard(bank->Groups({"S0", "S1"}), strict);
  ASSERT_TRUE(est.ok);
  EXPECT_GT(est.valid_observations, 10);
  const double truth = static_cast<double>(data.regions[3].size()) /
                       static_cast<double>(data.UnionSize());
  EXPECT_NEAR(est.jaccard, truth, 0.25);
}

}  // namespace
}  // namespace setsketch
