// Tests for the counting-KMV and BJKST baselines.

#include <gtest/gtest.h>

#include "baselines/bjkst_sketch.h"
#include "baselines/counting_kmv_sketch.h"
#include "util/stats.h"

namespace setsketch {
namespace {

// ---------------------------------------------------------------------------
// Counting KMV

TEST(CountingKmvTest, EstimatesDistinctCount) {
  CountingKmvSketch kmv(256, 1);
  const int n = 20000;
  for (int e = 0; e < n; ++e) {
    kmv.Update(static_cast<uint64_t>(e) * 48271 + 11, 1);
  }
  EXPECT_LT(RelativeError(kmv.EstimateDistinct(), n), 0.2);
}

TEST(CountingKmvTest, SurvivesMultisetChurn) {
  // Insert every element 3x, delete 2x: net distinct count unchanged, and
  // unlike plain KMV no sampled element is lost.
  CountingKmvSketch kmv(256, 3);
  const int n = 10000;
  for (int rep = 0; rep < 3; ++rep) {
    for (int e = 0; e < n; ++e) {
      kmv.Update(static_cast<uint64_t>(e) * 7919 + 1, 1);
    }
  }
  for (int rep = 0; rep < 2; ++rep) {
    for (int e = 0; e < n; ++e) {
      kmv.Update(static_cast<uint64_t>(e) * 7919 + 1, -1);
    }
  }
  EXPECT_EQ(kmv.zero_evictions(), 0);
  EXPECT_LT(RelativeError(kmv.EstimateDistinct(), n), 0.2);
}

TEST(CountingKmvTest, ZeroEvictionOnFullDeletion) {
  CountingKmvSketch kmv(64, 5);
  for (int e = 0; e < 32; ++e) kmv.Update(static_cast<uint64_t>(e), 2);
  for (int e = 0; e < 16; ++e) kmv.Update(static_cast<uint64_t>(e), -2);
  EXPECT_EQ(kmv.zero_evictions(), 16);
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 16.0);  // Below k: exact.
}

TEST(CountingKmvTest, TransientChurnStillDepletes) {
  // The structural failure: a transient with a small hash displaces a real
  // sample entry; its later deletion leaves a hole.
  CountingKmvSketch kmv(128, 7);
  const int n = 4096;
  for (int e = 0; e < n; ++e) {
    kmv.Update(static_cast<uint64_t>(e) * 104729 + 3, 1);
  }
  const double before = kmv.EstimateDistinct();
  // Many transients inserted then fully deleted (net set unchanged).
  for (int t = 0; t < 100000; ++t) {
    const uint64_t transient =
        (static_cast<uint64_t>(t) + 1) * 6364136223846793005ULL;
    kmv.Update(transient, 1);
    kmv.Update(transient, -1);
  }
  EXPECT_GT(kmv.zero_evictions(), 0);
  EXPECT_GT(kmv.displacements(), 0);
  // Estimate degraded relative to before (fewer than k sampled).
  EXPECT_LT(kmv.EstimateDistinct(), before);
}

TEST(CountingKmvTest, IntersectionInsertOnly) {
  CountingKmvSketch a(512, 9), b(512, 9);
  const int n = 8192;
  for (int e = 0; e < n; ++e) {
    const uint64_t elem = static_cast<uint64_t>(e) * 2654435761ULL + 7;
    a.Update(elem, 1);
    if (e < n / 4) b.Update(elem, 1);
  }
  for (int e = 0; e < 3 * n / 4; ++e) {
    b.Update(static_cast<uint64_t>(e) * 16807 + (1ULL << 50), 1);
  }
  EXPECT_LT(RelativeError(CountingKmvSketch::EstimateUnion(a, b), 1.75 * n),
            0.2);
  EXPECT_LT(
      RelativeError(CountingKmvSketch::EstimateIntersection(a, b), n / 4.0),
      0.35);
}

TEST(CountingKmvTest, DeleteOfUnsampledElementIsNoOp) {
  CountingKmvSketch kmv(4, 11);
  for (int e = 0; e < 100; ++e) kmv.Update(static_cast<uint64_t>(e), 1);
  const double before = kmv.EstimateDistinct();
  kmv.Update(9999999, -1);  // Never inserted.
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), before);
}

// ---------------------------------------------------------------------------
// BJKST

TEST(BjkstTest, EstimatesDistinctCount) {
  BjkstSketch bjkst(1024, 1);
  const int n = 50000;
  for (int e = 0; e < n; ++e) {
    bjkst.Insert(static_cast<uint64_t>(e) * 2654435761ULL);
  }
  EXPECT_GT(bjkst.level(), 0);  // Buffer must have shrunk at least once.
  EXPECT_LT(RelativeError(bjkst.Estimate(), n), 0.15);
}

TEST(BjkstTest, ExactWhileBelowCapacity) {
  BjkstSketch bjkst(256, 3);
  for (int e = 0; e < 100; ++e) bjkst.Insert(static_cast<uint64_t>(e));
  EXPECT_EQ(bjkst.level(), 0);
  EXPECT_DOUBLE_EQ(bjkst.Estimate(), 100.0);
  // Duplicates are free.
  for (int e = 0; e < 100; ++e) bjkst.Insert(static_cast<uint64_t>(e));
  EXPECT_DOUBLE_EQ(bjkst.Estimate(), 100.0);
}

TEST(BjkstTest, DeletionsRefused) {
  BjkstSketch bjkst(64, 5);
  bjkst.Insert(1);
  const double before = bjkst.Estimate();
  EXPECT_FALSE(bjkst.Delete(1));
  EXPECT_EQ(bjkst.ignored_deletions(), 1);
  EXPECT_DOUBLE_EQ(bjkst.Estimate(), before);
}

TEST(BjkstTest, MergeEstimatesUnion) {
  BjkstSketch a(512, 7), b(512, 7);
  const int n = 20000;
  for (int e = 0; e < n; ++e) {
    a.Insert(static_cast<uint64_t>(e) * 104729);
    b.Insert(static_cast<uint64_t>(e + n / 2) * 104729);  // 50% overlap.
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_LT(RelativeError(a.Estimate(), 1.5 * n), 0.2);
}

TEST(BjkstTest, MergeRejectsMismatch) {
  BjkstSketch a(64, 1), b(64, 2), c(128, 1);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_FALSE(a.Merge(c));
}

TEST(BjkstTest, MergeAcrossDifferentLevels) {
  BjkstSketch small(64, 9), large(64, 9);
  for (int e = 0; e < 30; ++e) {
    small.Insert(static_cast<uint64_t>(e) * 31337);
  }
  for (int e = 0; e < 30000; ++e) {
    large.Insert(static_cast<uint64_t>(e) * 7919);
  }
  ASSERT_GT(large.level(), small.level());
  ASSERT_TRUE(small.Merge(large));
  // Union ~ 30030; small's contribution is negligible.
  EXPECT_LT(RelativeError(small.Estimate(), 30030), 0.35);
}

TEST(BjkstTest, SizeStaysBounded) {
  BjkstSketch bjkst(128, 11);
  for (int e = 0; e < 100000; ++e) {
    bjkst.Insert(static_cast<uint64_t>(e) * 48271 + 5);
  }
  EXPECT_LE(bjkst.SizeBytes(), 128u * sizeof(uint64_t));
}

}  // namespace
}  // namespace setsketch
