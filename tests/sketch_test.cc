// Tests for the 2-level hash sketch synopsis itself: construction, update
// routing, linearity (deletion imperviousness, merge), serialization, and
// the SketchSeed / SketchFamily / SketchBank plumbing.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/sketch_bank.h"
#include "core/sketch_seed.h"
#include "core/two_level_hash_sketch.h"
#include "hash/prng.h"
#include "stream/stream_generator.h"

namespace setsketch {
namespace {

SketchParams SmallParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 16;
  return params;
}

std::shared_ptr<const SketchSeed> MakeSeed(uint64_t value = 1,
                                           SketchParams params = SmallParams()) {
  return std::make_shared<const SketchSeed>(params, value);
}

// ---------------------------------------------------------------------------
// SketchParams / SketchSeed / SketchFamily

TEST(SketchParamsTest, ValidityChecks) {
  SketchParams p;
  EXPECT_TRUE(p.Valid());
  p.levels = 0;
  EXPECT_FALSE(p.Valid());
  p.levels = 65;
  EXPECT_FALSE(p.Valid());
  p = SketchParams{};
  p.num_second_level = 0;
  EXPECT_FALSE(p.Valid());
  p = SketchParams{};
  p.first_level_kind = FirstLevelKind::kKWisePoly;
  p.independence = 1;
  EXPECT_FALSE(p.Valid());
  p.independence = 2;
  EXPECT_TRUE(p.Valid());
}

TEST(SketchSeedTest, SameSeedValueSameFunctions) {
  const auto a = MakeSeed(7);
  const auto b = MakeSeed(7);
  EXPECT_TRUE(*a == *b);
  for (uint64_t e = 0; e < 200; ++e) {
    EXPECT_EQ(a->Level(e), b->Level(e));
    for (int j = 0; j < a->num_second_level(); ++j) {
      EXPECT_EQ(a->second_level(j)(e), b->second_level(j)(e));
    }
  }
}

TEST(SketchSeedTest, DifferentSeedValuesDiffer) {
  const auto a = MakeSeed(7);
  const auto b = MakeSeed(8);
  EXPECT_FALSE(*a == *b);
  int level_diffs = 0;
  for (uint64_t e = 0; e < 500; ++e) {
    if (a->Level(e) != b->Level(e)) ++level_diffs;
  }
  EXPECT_GT(level_diffs, 100);
}

TEST(SketchSeedTest, LevelsWithinRange) {
  const auto seed = MakeSeed(3);
  for (uint64_t e = 0; e < 10000; ++e) {
    const int level = seed->Level(e);
    EXPECT_GE(level, 0);
    EXPECT_LT(level, SmallParams().levels);
  }
}

TEST(SketchSeedTest, LevelDistributionIsGeometric) {
  const auto seed = MakeSeed(5);
  const int n = 1 << 15;
  std::vector<int> counts(static_cast<size_t>(SmallParams().levels), 0);
  for (int e = 0; e < n; ++e) {
    ++counts[static_cast<size_t>(seed->Level(static_cast<uint64_t>(e)))];
  }
  for (int level = 0; level < 5; ++level) {
    const double p = 1.0 / std::exp2(level + 1);
    EXPECT_NEAR(counts[static_cast<size_t>(level)], n * p,
                6 * std::sqrt(n * p * (1 - p)));
  }
}

TEST(SketchFamilyTest, CopiesAreIndependentButReproducible) {
  const SketchFamily f1(SmallParams(), 8, 99);
  const SketchFamily f2(SmallParams(), 8, 99);
  ASSERT_EQ(f1.size(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(*f1.seed(i) == *f2.seed(i));
  }
  // Distinct copies use distinct coins.
  EXPECT_FALSE(*f1.seed(0) == *f1.seed(1));
}

// ---------------------------------------------------------------------------
// TwoLevelHashSketch: basic behavior

TEST(TwoLevelHashSketchTest, StartsEmpty) {
  const TwoLevelHashSketch sketch(MakeSeed());
  EXPECT_TRUE(sketch.Empty());
  for (int level = 0; level < sketch.levels(); ++level) {
    EXPECT_TRUE(sketch.LevelEmpty(level));
  }
}

TEST(TwoLevelHashSketchTest, SingleInsertLandsInOneLevelOneCellPerJ) {
  const auto seed = MakeSeed(11);
  TwoLevelHashSketch sketch(seed);
  const uint64_t e = 42;
  sketch.Update(e, 3);
  const int level = seed->Level(e);
  EXPECT_EQ(sketch.LevelTotal(level), 3);
  for (int j = 0; j < sketch.num_second_level(); ++j) {
    const int bit = seed->second_level(j)(e);
    EXPECT_EQ(sketch.Count(level, j, bit), 3);
    EXPECT_EQ(sketch.Count(level, j, 1 - bit), 0);
  }
  // All other levels untouched.
  for (int l = 0; l < sketch.levels(); ++l) {
    if (l != level) {
      EXPECT_TRUE(sketch.LevelEmpty(l));
    }
  }
}

TEST(TwoLevelHashSketchTest, InsertThenDeleteRestoresEmpty) {
  TwoLevelHashSketch sketch(MakeSeed(13));
  for (uint64_t e = 0; e < 100; ++e) sketch.Update(e, 2);
  EXPECT_FALSE(sketch.Empty());
  for (uint64_t e = 0; e < 100; ++e) sketch.Update(e, -2);
  EXPECT_TRUE(sketch.Empty());
}

TEST(TwoLevelHashSketchTest, ApplyUsesElementAndDelta) {
  const auto seed = MakeSeed(15);
  TwoLevelHashSketch a(seed), b(seed);
  a.Apply(Insert(3, 77, 5));  // Stream id ignored by the sketch.
  b.Update(77, 5);
  EXPECT_TRUE(a == b);
}

TEST(TwoLevelHashSketchTest, ClearZeroesEverything) {
  TwoLevelHashSketch sketch(MakeSeed(17));
  for (uint64_t e = 0; e < 50; ++e) sketch.Update(e, 1);
  sketch.Clear();
  EXPECT_TRUE(sketch.Empty());
}

// ---------------------------------------------------------------------------
// Linearity: the paper's deletion-imperviousness guarantee.

// Property: for arbitrary legal insert/delete interleavings, the sketch
// equals the sketch of the net multiset — "identical to a sketch that
// never sees the deleted items" (Section 3.1).
class DeletionImperviousTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeletionImperviousTest, SketchEqualsNetMultisetSketch) {
  const uint64_t trial_seed = GetParam();
  const auto seed = MakeSeed(1000 + trial_seed);

  // Base: 512 distinct elements inserted once.
  std::vector<Update> base;
  for (uint64_t e = 0; e < 512; ++e) base.push_back(Insert(0, e * 2654435761));

  // Churned: same net multiset, heavy insert/delete traffic.
  ChurnOptions churn;
  churn.max_multiplicity = 5;
  churn.transient_fraction = 0.8;
  churn.seed = trial_seed;
  std::vector<Update> churned = InjectChurn(base, churn);
  ShuffleUpdates(&base, trial_seed ^ 1);

  TwoLevelHashSketch clean(seed), noisy(seed);
  for (const Update& u : base) clean.Apply(u);
  for (const Update& u : churned) noisy.Apply(u);
  EXPECT_TRUE(clean == noisy)
      << "sketch diverged after churn (trial " << trial_seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Trials, DeletionImperviousTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TwoLevelHashSketchTest, OrderInsensitive) {
  const auto seed = MakeSeed(21);
  std::vector<Update> updates;
  for (uint64_t e = 0; e < 300; ++e) updates.push_back(Insert(0, e));
  for (uint64_t e = 0; e < 300; e += 3) updates.push_back(Delete(0, e));
  TwoLevelHashSketch forward(seed), shuffled_sketch(seed);
  for (const Update& u : updates) forward.Apply(u);
  // Note: shuffling may reorder a delete before its insert; counters can go
  // transiently negative but linearity still holds at the end.
  ShuffleUpdates(&updates, 7);
  for (const Update& u : updates) shuffled_sketch.Apply(u);
  EXPECT_TRUE(forward == shuffled_sketch);
}

// ---------------------------------------------------------------------------
// Merge

TEST(TwoLevelHashSketchTest, MergeEqualsConcatenatedStream) {
  const auto seed = MakeSeed(23);
  TwoLevelHashSketch part1(seed), part2(seed), whole(seed);
  for (uint64_t e = 0; e < 200; ++e) {
    if (e % 2 == 0) {
      part1.Update(e, 1);
    } else {
      part2.Update(e, 1);
    }
    whole.Update(e, 1);
  }
  EXPECT_TRUE(part1.Merge(part2));
  EXPECT_TRUE(part1 == whole);
}

TEST(TwoLevelHashSketchTest, MergeRejectsForeignSeed) {
  TwoLevelHashSketch a(MakeSeed(1)), b(MakeSeed(2));
  b.Update(5, 1);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_TRUE(a.Empty());  // Unchanged.
}

TEST(TwoLevelHashSketchTest, MergeWithOverlapAddsFrequencies) {
  const auto seed = MakeSeed(25);
  TwoLevelHashSketch a(seed), b(seed), expect(seed);
  a.Update(7, 2);
  b.Update(7, 3);
  expect.Update(7, 5);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_TRUE(a == expect);
}

// ---------------------------------------------------------------------------
// Serialization

TEST(TwoLevelHashSketchSerializationTest, RoundTripPreservesEverything) {
  SketchParams params = SmallParams();
  params.first_level_kind = FirstLevelKind::kKWisePoly;
  params.independence = 6;
  TwoLevelHashSketch sketch(MakeSeed(31, params));
  for (uint64_t e = 0; e < 400; ++e) sketch.Update(e * 7919, 1 + (e % 3));
  for (uint64_t e = 0; e < 400; e += 5) sketch.Update(e * 7919, -1);

  std::string bytes;
  sketch.SerializeTo(&bytes);
  size_t offset = 0;
  const auto decoded = TwoLevelHashSketch::Deserialize(bytes, &offset);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(*decoded == sketch);
  // The decoded sketch keeps working (same hash functions).
  TwoLevelHashSketch copy = *decoded;
  copy.Update(123456789, 1);
  TwoLevelHashSketch reference = sketch;
  reference.Update(123456789, 1);
  EXPECT_TRUE(copy == reference);
}

TEST(TwoLevelHashSketchSerializationTest, MultipleSketchesBackToBack) {
  const auto seed = MakeSeed(33);
  TwoLevelHashSketch a(seed), b(seed);
  a.Update(1, 1);
  b.Update(2, 2);
  std::string bytes;
  a.SerializeTo(&bytes);
  b.SerializeTo(&bytes);
  size_t offset = 0;
  const auto da = TwoLevelHashSketch::Deserialize(bytes, &offset);
  const auto db = TwoLevelHashSketch::Deserialize(bytes, &offset);
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(*da == a);
  EXPECT_TRUE(*db == b);
}

TEST(TwoLevelHashSketchSerializationTest, RejectsCorruptedInput) {
  TwoLevelHashSketch sketch(MakeSeed(35));
  sketch.Update(9, 1);
  std::string bytes;
  sketch.SerializeTo(&bytes);

  // Truncation.
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  size_t offset = 0;
  EXPECT_EQ(TwoLevelHashSketch::Deserialize(truncated, &offset), nullptr);

  // Bad magic.
  std::string corrupted = bytes;
  corrupted[0] = static_cast<char>(corrupted[0] + 1);
  offset = 0;
  EXPECT_EQ(TwoLevelHashSketch::Deserialize(corrupted, &offset), nullptr);

  // Empty.
  offset = 0;
  EXPECT_EQ(TwoLevelHashSketch::Deserialize("", &offset), nullptr);
}

// ---------------------------------------------------------------------------
// SketchBank

TEST(SketchBankTest, AddStreamAndApply) {
  SketchBank bank(SketchFamily(SmallParams(), 4, 71));
  EXPECT_TRUE(bank.AddStream("A"));
  EXPECT_FALSE(bank.AddStream("A"));  // Idempotent.
  EXPECT_TRUE(bank.HasStream("A"));
  EXPECT_FALSE(bank.HasStream("B"));
  EXPECT_TRUE(bank.Apply("A", 42, 1));
  EXPECT_FALSE(bank.Apply("B", 42, 1));
  EXPECT_EQ(bank.num_copies(), 4);
  for (const TwoLevelHashSketch& sketch : bank.Sketches("A")) {
    EXPECT_FALSE(sketch.Empty());
  }
}

TEST(SketchBankTest, GroupsAlignCopies) {
  SketchBank bank(SketchFamily(SmallParams(), 3, 73));
  bank.AddStream("A");
  bank.AddStream("B");
  const std::vector<SketchGroup> groups = bank.Groups({"A", "B"});
  ASSERT_EQ(groups.size(), 3u);
  for (const SketchGroup& group : groups) {
    ASSERT_EQ(group.size(), 2u);
    EXPECT_TRUE(GroupSeedsMatch(group));  // Same copy => same coins.
  }
  // Different copies use different coins.
  EXPECT_FALSE(groups[0][0]->seed() == groups[1][0]->seed());
}

TEST(SketchBankTest, GroupsUnknownStreamIsEmpty) {
  SketchBank bank(SketchFamily(SmallParams(), 2, 75));
  bank.AddStream("A");
  EXPECT_TRUE(bank.Groups({"A", "nope"}).empty());
}

TEST(SketchBankTest, CounterBytesScalesWithStreamsAndCopies) {
  SketchBank bank(SketchFamily(SmallParams(), 2, 77));
  EXPECT_EQ(bank.CounterBytes(), 0u);
  bank.AddStream("A");
  const size_t one = bank.CounterBytes();
  EXPECT_GT(one, 0u);
  bank.AddStream("B");
  EXPECT_EQ(bank.CounterBytes(), 2 * one);
}

}  // namespace
}  // namespace setsketch
