// Tests for the plan cache (query/plan_cache.h): bit-identical equivalence
// of planned + cached evaluation vs direct EstimateSetExpression (the
// refactor's correctness bar), including through ingest -> epoch
// invalidation -> re-query cycles; cache-hit semantics for equivalent
// spellings; sub-expression memo granularity; LRU eviction; bank-identity
// invalidation; and the engine-level wiring.

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_expression_estimator.h"
#include "core/sketch_bank.h"
#include "expr/analysis.h"
#include "expr/expression.h"
#include "expr/parser.h"
#include "query/plan_cache.h"
#include "query/stream_engine.h"
#include "test_helpers.h"

namespace setsketch {
namespace {

ExprPtr Parse(const std::string& text) {
  const ParseResult p = ParseExpression(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.error;
  return p.expression;
}

/// Uniform region probabilities over the 2^n - 1 non-empty Venn regions.
std::vector<double> UniformRegionProbs(int num_streams) {
  const size_t regions = size_t{1} << num_streams;
  std::vector<double> probs(regions, 1.0 / static_cast<double>(regions - 1));
  probs[0] = 0.0;
  return probs;
}

/// Asserts the planned result equals direct estimation bit for bit: the
/// whole point of routing everything through one kernel is that caching
/// and canonicalization change nothing about the answer.
void ExpectBitIdentical(const PlanCache::Result& planned,
                        const ExpressionEstimate& direct,
                        const std::string& context) {
  ASSERT_EQ(planned.detail.ok, direct.ok) << context;
  EXPECT_EQ(planned.detail.expression.estimate, direct.expression.estimate)
      << context;
  EXPECT_EQ(planned.detail.expression.witnesses, direct.expression.witnesses)
      << context;
  EXPECT_EQ(planned.detail.expression.valid_observations,
            direct.expression.valid_observations)
      << context;
  EXPECT_EQ(planned.detail.expression.level, direct.expression.level)
      << context;
  EXPECT_EQ(planned.detail.union_part.estimate, direct.union_part.estimate)
      << context;
  EXPECT_EQ(planned.detail.union_part.level, direct.union_part.level)
      << context;
  EXPECT_EQ(planned.detail.union_part.nonempty_count,
            direct.union_part.nonempty_count)
      << context;
  if (direct.ok) {
    EXPECT_EQ(planned.estimate, direct.expression.estimate) << context;
  }
}

/// Uniformly random expression tree over `names`, depth-bounded.
ExprPtr RandomExpression(std::mt19937_64& rng,
                         const std::vector<std::string>& names, int depth) {
  std::uniform_int_distribution<int> pick_kind(0, depth <= 0 ? 0 : 3);
  std::uniform_int_distribution<size_t> pick_name(0, names.size() - 1);
  switch (pick_kind(rng)) {
    case 1:
      return Expression::Union(RandomExpression(rng, names, depth - 1),
                               RandomExpression(rng, names, depth - 1));
    case 2:
      return Expression::Intersect(RandomExpression(rng, names, depth - 1),
                                   RandomExpression(rng, names, depth - 1));
    case 3:
      return Expression::Difference(RandomExpression(rng, names, depth - 1),
                                    RandomExpression(rng, names, depth - 1));
    default:
      return Expression::Stream(names[pick_name(rng)]);
  }
}

// --- Bit-identical equivalence ------------------------------------------

TEST(PlanCacheTest, PlannedAnswersMatchDirectEstimatorExactly) {
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  const auto bank = BankFromDataset(gen.Generate(4096, 11), 64, 11);
  PlanCache cache(PlanCache::Options{});
  const std::vector<std::string> queries = {
      "S0", "S0 | S1", "S0 & S1", "S0 - S1", "(S0 - S1) - S2",
      "S0 | (S1 & S2)", "(S0 | S1) & S2", "(S0 & S1) | ((S0 & S1) - S2)",
      "(S0 | S1) - (S0 & S1)", "S0 & S1 & S2",
  };
  for (const std::string& text : queries) {
    const ExprPtr expr = Parse(text);
    const ExpressionEstimate direct = EstimateSetExpression(*expr, *bank);
    const PlanCache::Result cold = cache.Query(*expr, *bank);
    ExpectBitIdentical(cold, direct, text + " (cold)");
    EXPECT_FALSE(cold.cache_hit);
    // The memoized re-answer is the same object, bit for bit.
    const PlanCache::Result hot = cache.Query(*expr, *bank);
    ExpectBitIdentical(hot, direct, text + " (hot)");
    EXPECT_TRUE(hot.cache_hit);
  }
}

TEST(PlanCacheTest, RandomizedEquivalenceThroughIngestAndInvalidation) {
  std::mt19937_64 rng(0x5E7CA11);
  const std::vector<std::string> names = {"S0", "S1", "S2"};
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  auto bank = BankFromDataset(gen.Generate(2048, 21), 48, 21);
  PlanCache cache(PlanCache::Options{});

  std::uniform_int_distribution<uint64_t> pick_element(1, 1u << 20);
  std::uniform_int_distribution<size_t> pick_stream(0, names.size() - 1);
  for (int round = 0; round < 40; ++round) {
    const ExprPtr expr = RandomExpression(rng, names, 3);
    // The cache short-circuits provably-empty queries to an exact 0
    // without running the estimator, so the bit-identical comparison only
    // applies to the non-degenerate ones.
    if (ProvablyEmpty(*expr)) {
      const PlanCache::Result empty = cache.Query(*expr, *bank);
      EXPECT_TRUE(empty.ok);
      EXPECT_EQ(empty.estimate, 0.0);
      continue;
    }
    const std::string text = expr->ToString();
    ExpectBitIdentical(cache.Query(*expr, *bank),
                       EstimateSetExpression(*expr, *bank), text);
    // Mutate a random stream (epoch bump), then require the re-planned
    // answer to track the bank's new state exactly — a stale memo would
    // reproduce the old numbers instead.
    bank->Apply(names[pick_stream(rng)], pick_element(rng), 1);
    ExpectBitIdentical(cache.Query(*expr, *bank),
                       EstimateSetExpression(*expr, *bank),
                       text + " (after ingest)");
  }
}

TEST(PlanCacheTest, EquivalentSpellingsHitOneCachedPlan) {
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  const auto bank = BankFromDataset(gen.Generate(1024, 31), 32, 31);
  PlanCache cache(PlanCache::Options{});

  const PlanCache::Result first = cache.Query("S0 | (S1 & S2)", *bank);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // A commuted + reassociated spelling canonicalizes to the same plan and
  // is answered from the memo without compiling anything new.
  const PlanCache::Result second = cache.Query("(S2 & S1) | S0", *bank);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.canonical, first.canonical);
  EXPECT_EQ(second.estimate, first.estimate);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.memo_bytes, 0u);
}

TEST(PlanCacheTest, IngestInvalidatesOnlyTouchedMemos) {
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  auto bank = BankFromDataset(gen.Generate(1024, 41), 32, 41);
  PlanCache::Options options;
  options.witness.pool_all_levels = true;  // Robust across seeds.
  PlanCache cache(options);

  // Plan with a leaf-only union sub-expression (S0 | S1) under the root:
  // it gets its own occupancy memo keyed on {S0, S1} epochs only.
  const ExprPtr expr = Parse("(S0 | S1) & S2");
  const PlanCache::Result cold = cache.Query(*expr, *bank);
  ASSERT_TRUE(cold.ok) << cold.error;
  const uint64_t builds_cold = cache.stats().merge_builds;
  EXPECT_GE(builds_cold, 2u);  // Full-union memo + (S0|S1) memo.

  // Ingest into S2 only: the stage-1 full-union memo must rebuild, but
  // the (S0 | S1) sub-memo's epochs are unchanged and it is reused.
  bank->Apply("S2", 987654321u, 1);
  ASSERT_TRUE(cache.Query(*expr, *bank).ok);
  const uint64_t builds_after_s2 = cache.stats().merge_builds;
  EXPECT_EQ(builds_after_s2, builds_cold + 1);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // Ingest into S0: now both the full union and the sub-memo rebuild.
  bank->Apply("S0", 123456789u, 1);
  ASSERT_TRUE(cache.Query(*expr, *bank).ok);
  EXPECT_EQ(cache.stats().merge_builds, builds_after_s2 + 2);
  EXPECT_EQ(cache.stats().invalidations, 2u);

  // Quiescent re-query: pure hit, nothing rebuilt.
  ASSERT_TRUE(cache.Query(*expr, *bank).ok);
  EXPECT_EQ(cache.stats().merge_builds, builds_after_s2 + 2);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, IngestIntoUnrelatedStreamKeepsPlansHot) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  auto bank = BankFromDataset(gen.Generate(1024, 51), 32, 51);
  bank->AddStream("Other");
  PlanCache cache(PlanCache::Options{});

  ASSERT_TRUE(cache.Query("S0 & S1", *bank).ok);
  bank->Apply("Other", 42u, 1);  // Epoch bump on a non-participant.
  const PlanCache::Result again = cache.Query("S0 & S1", *bank);
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, DifferentBankNeverReusesMemos) {
  // Two banks with identical content but distinct identities: the second
  // query must re-derive everything (bank ids differ), never serve the
  // first bank's memo — this is the recovery-safety property.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const PartitionedDataset data = gen.Generate(1024, 61);
  const auto bank_a = BankFromDataset(data, 32, 61);
  const auto bank_b = BankFromDataset(data, 32, 61);
  PlanCache cache(PlanCache::Options{});

  const PlanCache::Result on_a = cache.Query("S0 - S1", *bank_a);
  ASSERT_TRUE(on_a.ok);
  const PlanCache::Result on_b = cache.Query("S0 - S1", *bank_b);
  ASSERT_TRUE(on_b.ok);
  EXPECT_FALSE(on_b.cache_hit);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Same data + same seed => same answer, recomputed rather than reused.
  EXPECT_EQ(on_a.estimate, on_b.estimate);

  // And the memo now belongs to bank_b: querying it again is a hit...
  EXPECT_TRUE(cache.Query("S0 - S1", *bank_b).cache_hit);
  // ...while going back to bank_a re-derives again.
  EXPECT_FALSE(cache.Query("S0 - S1", *bank_a).cache_hit);
}

// --- Cache management ----------------------------------------------------

TEST(PlanCacheTest, LruEvictionBoundsTheCache) {
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  const auto bank = BankFromDataset(gen.Generate(512, 71), 16, 71);
  PlanCache::Options options;
  options.max_entries = 2;
  PlanCache cache(options);

  ASSERT_TRUE(cache.Query("S0 | S1", *bank).ok);
  ASSERT_TRUE(cache.Query("S0 & S1", *bank).ok);
  ASSERT_TRUE(cache.Query("S0 - S1", *bank).ok);  // Evicts "S0 | S1".
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // The evicted plan recompiles on next use; the survivors stay hot.
  EXPECT_TRUE(cache.Query("S0 - S1", *bank).cache_hit);
  EXPECT_FALSE(cache.Query("S0 | S1", *bank).cache_hit);
  EXPECT_EQ(cache.stats().compiles, 4u);
}

TEST(PlanCacheTest, ZeroCapacityClampsToOneUsableEntry) {
  // max_entries = 0 would otherwise evict the entry FindOrCompile just
  // inserted and leave a dangling pointer; the cache clamps to 1.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(512, 77), 16, 77);
  PlanCache::Options options;
  options.max_entries = 0;
  PlanCache cache(options);

  ASSERT_TRUE(cache.Query("S0 | S1", *bank).ok);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(cache.Query("S0 | S1", *bank).cache_hit);
  // A second distinct plan evicts the first (capacity one), never itself.
  ASSERT_TRUE(cache.Query("S0 & S1", *bank).ok);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(cache.Query("S0 & S1", *bank).cache_hit);
}

// --- Two-phase (snapshot) queries ----------------------------------------

/// Copies the requested streams' sketch columns out of the bank — what the
/// server does under its quiesced ingest locks between Begin and Finish.
std::vector<std::vector<TwoLevelHashSketch>> SnapshotStreams(
    const SketchBank& bank, const PlanCache::SnapshotRequest& request) {
  std::vector<std::vector<TwoLevelHashSketch>> copies;
  copies.reserve(request.streams.size());
  for (const std::string& name : request.streams) {
    copies.push_back(bank.Sketches(name));
  }
  return copies;
}

TEST(PlanCacheTest, TwoPhaseQueryMatchesInlineAndInstallsTheMemo) {
  VennPartitionGenerator gen(3, UniformRegionProbs(3));
  const auto bank = BankFromDataset(gen.Generate(2048, 17), 32, 17);
  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("S0 | (S1 & S2)");
  const ExpressionEstimate direct = EstimateSetExpression(*expr, *bank);

  PlanCache::Result hit;
  PlanCache::SnapshotRequest request;
  ASSERT_FALSE(cache.BeginQuery(*expr, *bank, &hit, &request));
  EXPECT_EQ(request.bank_id, bank->bank_id());
  ASSERT_EQ(request.streams.size(), 3u);
  const auto snapshot = SnapshotStreams(*bank, request);

  const PlanCache::Result finished =
      cache.FinishQuery(*expr, request, snapshot);
  ExpectBitIdentical(finished, direct, "two-phase cold");
  EXPECT_EQ(cache.stats().misses, 1u);

  // The finished result is installed: the next Begin is a pure hit, and
  // an equivalent spelling shares it.
  ASSERT_TRUE(cache.BeginQuery(*expr, *bank, &hit, &request));
  ExpectBitIdentical(hit, direct, "two-phase hot");
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_TRUE(cache.BeginQuery(*Parse("(S2 & S1) | S0"), *bank, &hit,
                               &request));
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(PlanCacheTest, StaleSnapshotAnswersItselfWithoutRegressingNewerMemo) {
  // A FinishQuery racing behind an ingest + newer-epoch evaluation must
  // return its own (point-in-time correct) answer but leave the newer
  // memo installed: epochs only move forward, so the older snapshot can
  // never satisfy a future freshness check.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  auto bank = BankFromDataset(gen.Generate(2048, 27), 32, 27);
  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("S0 | S1");
  const ExpressionEstimate old_direct = EstimateSetExpression(*expr, *bank);

  PlanCache::Result hit;
  PlanCache::SnapshotRequest request;
  ASSERT_FALSE(cache.BeginQuery(*expr, *bank, &hit, &request));
  const auto snapshot = SnapshotStreams(*bank, request);

  // Ingest + inline evaluation land first (newer epochs).
  for (uint64_t e = 0; e < 512; ++e) bank->Apply("S0", 1u << 20 | e, 1);
  const PlanCache::Result newer = cache.Query(*expr, *bank);
  ASSERT_TRUE(newer.ok);

  // The stale snapshot still answers its own point in time...
  const PlanCache::Result stale = cache.FinishQuery(*expr, request, snapshot);
  ExpectBitIdentical(stale, old_direct, "stale snapshot");

  // ...and the newer memo survives: the next query is a hit on it.
  const PlanCache::Result after = cache.Query(*expr, *bank);
  ASSERT_TRUE(after.ok);
  EXPECT_TRUE(after.cache_hit);
  EXPECT_EQ(after.estimate, newer.estimate);
}

TEST(PlanCacheTest, SameEpochFinishReusesTheConcurrentlyInstalledAnswer) {
  // Two cold queries of one expression race: whichever FinishQuery lands
  // second finds the identical-epoch memo already installed and reuses it
  // instead of re-evaluating.
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(1024, 37), 32, 37);
  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("S0 - S1");

  PlanCache::Result hit;
  PlanCache::SnapshotRequest first_request, second_request;
  ASSERT_FALSE(cache.BeginQuery(*expr, *bank, &hit, &first_request));
  ASSERT_FALSE(cache.BeginQuery(*expr, *bank, &hit, &second_request));
  const auto snapshot = SnapshotStreams(*bank, first_request);

  const PlanCache::Result first =
      cache.FinishQuery(*expr, first_request, snapshot);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  const uint64_t builds = cache.stats().merge_builds;
  const PlanCache::Result second =
      cache.FinishQuery(*expr, second_request, snapshot);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);  // Reused, nothing rebuilt.
  EXPECT_EQ(cache.stats().merge_builds, builds);
  EXPECT_EQ(second.estimate, first.estimate);
}

TEST(PlanCacheTest, ClearDropsPlansButKeepsCounters) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(512, 81), 16, 81);
  PlanCache cache(PlanCache::Options{});
  ASSERT_TRUE(cache.Query("S0 | S1", *bank).ok);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().compiles, 1u);  // History retained.
  EXPECT_FALSE(cache.Query("S0 | S1", *bank).cache_hit);
  EXPECT_EQ(cache.stats().compiles, 2u);
}

// --- Error and degenerate paths -----------------------------------------

TEST(PlanCacheTest, UnknownStreamIsATypedErrorNotACrash) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(256, 91), 16, 91);
  PlanCache cache(PlanCache::Options{});
  const PlanCache::Result result = cache.Query("S0 & Missing", *bank);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown stream"), std::string::npos)
      << result.error;
  // The error is not memoized as an answer: registering the stream later
  // makes the same plan answerable.
  bank->AddStream("Missing");
  EXPECT_TRUE(cache.Query("S0 & Missing", *bank).ok);
}

TEST(PlanCacheTest, ParseFailuresSurfaceTypedErrors) {
  SketchBank bank(SketchFamily(TestParams(), 8, 3));
  PlanCache cache(PlanCache::Options{});
  const PlanCache::Result result = cache.Query("(S0 &", bank);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("position"), std::string::npos)
      << result.error;
  EXPECT_EQ(cache.stats().entries, 0u);  // Nothing was compiled.
}

TEST(PlanCacheTest, ProvablyEmptyQueriesShortCircuitToExactZero) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(512, 101), 16, 101);
  PlanCache cache(PlanCache::Options{});
  for (const std::string text : {"S0 - S0", "(S0 & S1) - S0"}) {
    const PlanCache::Result result = cache.Query(text, *bank);
    EXPECT_TRUE(result.ok) << text;
    EXPECT_EQ(result.estimate, 0.0) << text;
    EXPECT_TRUE(result.cache_hit) << text;  // Answered without a plan.
  }
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().compiles, 0u);
}

TEST(PlanCacheTest, UncachedPathMatchesDirectAndCountsBypasses) {
  VennPartitionGenerator gen(2, BinaryIntersectionProbs(0.5));
  const auto bank = BankFromDataset(gen.Generate(1024, 111), 32, 111);
  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("S0 - S1");
  const std::vector<std::string> names = {"S0", "S1"};
  const std::vector<SketchGroup> groups = bank->Groups(names);
  const PlanCache::Result bypass =
      cache.EstimateUncached(*expr, names, groups);
  const ExpressionEstimate direct =
      EstimateSetExpression(*expr, names, groups);
  ASSERT_TRUE(bypass.ok);
  EXPECT_EQ(bypass.estimate, direct.expression.estimate);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);  // Bypasses never populate cache.
}

// --- Engine wiring -------------------------------------------------------

TEST(PlanCacheTest, EngineAnswersRunThroughThePlanCache) {
  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 32;
  options.seed = 7;
  StreamEngine engine(options);
  const StreamEngine::QueryHandle handle =
      engine.RegisterQuery("(A | B) & C");
  ASSERT_TRUE(handle.ok()) << handle.error;
  for (uint64_t e = 1; e <= 600; ++e) {
    engine.Ingest("A", e, 1);
    if (e % 2 == 0) engine.Ingest("B", e, 1);
    if (e % 3 == 0) engine.Ingest("C", e, 1);
  }

  const StreamEngine::Answer first = engine.AnswerQuery(handle.id);
  ASSERT_TRUE(first.ok);
  const PlanCache::Stats after_first = engine.plan_cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  // Same synopsis, same question: a pure cache hit with the same answer.
  const StreamEngine::Answer second = engine.AnswerQuery(handle.id);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.estimate, first.estimate);
  EXPECT_EQ(engine.plan_cache_stats().hits, 1u);

  // Ingest invalidates; the answer re-derives against the new state and
  // matches the direct estimator bit for bit.
  engine.Ingest("A", 999999u, 1);
  const StreamEngine::Answer third = engine.AnswerQuery(handle.id);
  ASSERT_TRUE(third.ok);
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 1u);
  const ExpressionEstimate direct =
      EstimateSetExpression(*Parse("(A | B) & C"), engine.bank());
  EXPECT_EQ(third.estimate, direct.expression.estimate);
}

TEST(PlanCacheTest, RestoredEngineStartsWithAFreshPlanCache) {
  StreamEngine::Options options;
  options.params = TestParams();
  options.copies = 32;
  options.seed = 17;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.RegisterQuery("A - B").ok());
  for (uint64_t e = 1; e <= 400; ++e) {
    engine.Ingest("A", e, 1);
    if (e % 2 == 0) engine.Ingest("B", e, 1);
  }
  const StreamEngine::Answer before = engine.AnswerQuery(0);
  ASSERT_TRUE(before.ok);
  EXPECT_GE(engine.plan_cache_stats().misses, 1u);

  const std::unique_ptr<StreamEngine> restored =
      StreamEngine::LoadSnapshot(engine.SaveSnapshot());
  ASSERT_NE(restored, nullptr);
  // Fresh cache, fresh bank identity: no counter or memo survives the
  // snapshot boundary, so a stale plan can never answer post-restore.
  const PlanCache::Stats fresh = restored->plan_cache_stats();
  EXPECT_EQ(fresh.hits, 0u);
  EXPECT_EQ(fresh.misses, 0u);
  EXPECT_EQ(fresh.entries, 0u);
  const StreamEngine::Answer after = restored->AnswerQuery(0);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.estimate, before.estimate);  // Same synopsis bytes.
  EXPECT_FALSE(restored->plan_cache_stats().hits > 0);
}

TEST(PlanCacheTest, BackendQueriesRouteAroundTheMemoAndCountStats) {
  SketchBank bank(SketchFamily(TestParams(), 32, 99), /*backend_size=*/512);
  ASSERT_TRUE(bank.AddStreamWithBackend("T", SketchBackendId::kThetaKmv,
                                        bank.backend_options()));
  ASSERT_TRUE(bank.AddStreamWithBackend("U", SketchBackendId::kThetaKmv,
                                        bank.backend_options()));
  ASSERT_TRUE(bank.AddStream("D"));
  for (uint64_t e = 0; e < 3000; ++e) {
    bank.MutableBackendSketch("T")->Update(e, 1);
    if (e < 1000) bank.MutableBackendSketch("U")->Update(e, 1);
    bank.Apply("D", e, 1);
  }

  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("T | U");
  const PlanCache::Result first = cache.Query(*expr, bank);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  // |T u U| = 3000 (U is a subset); theta at k=512 targets ~4.4% RSE.
  EXPECT_NEAR(first.estimate, 3000.0, 3000.0 * 0.2);
  EXPECT_LE(first.interval.lo, first.estimate);
  EXPECT_GE(first.interval.hi, first.estimate);
  EXPECT_EQ(cache.stats().backend_queries, 1u);

  // No memoization: a repeat re-evaluates inline (the synopsis is tiny),
  // so the backend counter keeps climbing and hits never do.
  const PlanCache::Result second = cache.Query(*expr, bank);
  ASSERT_TRUE(second.ok);
  EXPECT_DOUBLE_EQ(second.estimate, first.estimate);
  EXPECT_EQ(cache.stats().backend_queries, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // The two-phase protocol answers backend queries entirely in phase 1.
  PlanCache::Result hit;
  PlanCache::SnapshotRequest request;
  EXPECT_TRUE(cache.BeginQuery(*expr, bank, &hit, &request));
  ASSERT_TRUE(hit.ok);
  EXPECT_DOUBLE_EQ(hit.estimate, first.estimate);
  EXPECT_EQ(cache.stats().backend_queries, 3u);

  // Mixing a default-backend stream into a backend expression is a typed
  // refusal, not a crash or a silent wrong answer.
  const PlanCache::Result mixed = cache.Query(*Parse("T | D"), bank);
  EXPECT_FALSE(mixed.ok);
  EXPECT_NE(mixed.error.find("mixed sketch backends"), std::string::npos);

  // Unknown streams stay a typed error on the backend path too.
  const PlanCache::Result unknown = cache.Query(*Parse("T | Zz"), bank);
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown stream"), std::string::npos);

  // Default-backend queries are untouched by any of this: D still goes
  // through the memo and lands a cache entry.
  const PlanCache::Result d1 = cache.Query(*Parse("D"), bank);
  ASSERT_TRUE(d1.ok) << d1.error;
  const PlanCache::Result d2 = cache.Query(*Parse("D"), bank);
  ASSERT_TRUE(d2.ok);
  EXPECT_TRUE(d2.cache_hit);
  EXPECT_EQ(d2.estimate, d1.estimate);
}

TEST(PlanCacheTest, BackendQueryInvalidatesNothingAndFollowsEpochs) {
  SketchBank bank(SketchFamily(TestParams(), 32, 7), /*backend_size=*/256);
  ASSERT_TRUE(bank.AddStreamWithBackend("S", SketchBackendId::kSetSketch,
                                        bank.backend_options()));
  for (uint64_t e = 0; e < 2000; ++e) {
    bank.MutableBackendSketch("S")->Update(e, 1);
  }
  PlanCache cache(PlanCache::Options{});
  const ExprPtr expr = Parse("S");
  const PlanCache::Result before = cache.Query(*expr, bank);
  ASSERT_TRUE(before.ok) << before.error;

  // Deletions flow straight through: the next query sees the shrunken
  // stream with no epoch/invalidiation machinery in between.
  for (uint64_t e = 1000; e < 2000; ++e) {
    bank.MutableBackendSketch("S")->Update(e, -1);
  }
  const PlanCache::Result after = cache.Query(*expr, bank);
  ASSERT_TRUE(after.ok);
  EXPECT_NEAR(after.estimate, 1000.0, 1000.0 * 0.2);
  EXPECT_LT(after.estimate, before.estimate);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

}  // namespace
}  // namespace setsketch
