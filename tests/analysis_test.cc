// Tests for expression static analysis: simplification, structural and
// semantic equality, Venn-region evaluation.

#include <gtest/gtest.h>

#include "expr/analysis.h"
#include "expr/parser.h"

namespace setsketch {
namespace {

ExprPtr P(const std::string& text) {
  const ParseResult result = ParseExpression(text);
  EXPECT_TRUE(result.ok()) << result.error;
  return result.expression;
}

std::string SimplifyText(const std::string& text) {
  const ExprPtr simplified = Simplify(P(text));
  return simplified ? simplified->ToString() : "{}";
}

// ---------------------------------------------------------------------------
// Structural equality

TEST(StructuralEqualityTest, MatchesShapeAndNames) {
  EXPECT_TRUE(StructurallyEqual(*P("A & B"), *P("A & B")));
  EXPECT_FALSE(StructurallyEqual(*P("A & B"), *P("B & A")));
  EXPECT_FALSE(StructurallyEqual(*P("A & B"), *P("A | B")));
  EXPECT_FALSE(StructurallyEqual(*P("A"), *P("B")));
  EXPECT_TRUE(StructurallyEqual(*P("(A - B) & C"), *P("(A - B) & C")));
}

// ---------------------------------------------------------------------------
// Simplification

TEST(SimplifyTest, Idempotents) {
  EXPECT_EQ(SimplifyText("A | A"), "A");
  EXPECT_EQ(SimplifyText("A & A"), "A");
  EXPECT_EQ(SimplifyText("A - A"), "{}");
}

TEST(SimplifyTest, Absorption) {
  EXPECT_EQ(SimplifyText("A | (A & B)"), "A");
  EXPECT_EQ(SimplifyText("(A & B) | A"), "A");
  EXPECT_EQ(SimplifyText("A & (A | B)"), "A");
  EXPECT_EQ(SimplifyText("(A | B) & A"), "A");
}

TEST(SimplifyTest, DifferenceIdentities) {
  EXPECT_EQ(SimplifyText("A - (A | B)"), "{}");
  EXPECT_EQ(SimplifyText("A - (B | A)"), "{}");
  EXPECT_EQ(SimplifyText("(A - B) - A"), "{}");
}

TEST(SimplifyTest, EmptySetPropagation) {
  // (A - A) vanishes and the enclosing operators fold it away.
  EXPECT_EQ(SimplifyText("(A - A) | B"), "B");
  EXPECT_EQ(SimplifyText("B | (A - A)"), "B");
  EXPECT_EQ(SimplifyText("(A - A) & B"), "{}");
  EXPECT_EQ(SimplifyText("B - (A - A)"), "B");
  EXPECT_EQ(SimplifyText("(A - A) - B"), "{}");
}

TEST(SimplifyTest, NestedCascades) {
  EXPECT_EQ(SimplifyText("((A | A) & (A | B))"), "A");
  EXPECT_EQ(SimplifyText("(A & A) - (A | B)"), "{}");
}

TEST(SimplifyTest, LeavesIrreducibleExpressionsAlone) {
  EXPECT_EQ(SimplifyText("A & B"), "(A & B)");
  EXPECT_EQ(SimplifyText("(A - B) & C"), "((A - B) & C)");
}

TEST(SimplifyTest, PreservesSemantics) {
  // Every rewrite must agree with the original on all Venn regions.
  const std::vector<std::string> cases = {
      "A | (A & B)", "A & (A | B)", "A - (A | B)", "(A - B) - A",
      "((A | A) & (A | B)) - (C - C)", "(A & B) | (B & A)"};
  for (const std::string& text : cases) {
    const ExprPtr original = P(text);
    const ExprPtr simplified = Simplify(original);
    if (!simplified) {
      EXPECT_TRUE(ProvablyEmpty(*original)) << text;
    } else {
      EXPECT_TRUE(SemanticallyEqual(*original, *simplified)) << text;
    }
  }
}

// ---------------------------------------------------------------------------
// Semantic equality / emptiness

TEST(SemanticEqualityTest, CommutativityAndDeMorganStyle) {
  EXPECT_TRUE(SemanticallyEqual(*P("A & B"), *P("B & A")));
  EXPECT_TRUE(SemanticallyEqual(*P("A | B"), *P("B | A")));
  EXPECT_TRUE(SemanticallyEqual(*P("A - B"), *P("A - (A & B)")));
  EXPECT_TRUE(SemanticallyEqual(*P("(A | B) - B"), *P("A - B")));
  EXPECT_FALSE(SemanticallyEqual(*P("A - B"), *P("B - A")));
  EXPECT_FALSE(SemanticallyEqual(*P("A & B"), *P("A | B")));
}

TEST(SemanticEqualityTest, DisjointStreamUniverses) {
  EXPECT_FALSE(SemanticallyEqual(*P("A"), *P("B")));
  EXPECT_TRUE(SemanticallyEqual(*P("A | A"), *P("A")));
}

TEST(ProvablyEmptyTest, DetectsContradictions) {
  EXPECT_TRUE(ProvablyEmpty(*P("A - A")));
  EXPECT_TRUE(ProvablyEmpty(*P("(A & B) - A")));
  EXPECT_TRUE(ProvablyEmpty(*P("(A & B) - (A | C)")));
  EXPECT_FALSE(ProvablyEmpty(*P("A - B")));
  EXPECT_FALSE(ProvablyEmpty(*P("A & B")));
}

// ---------------------------------------------------------------------------
// Venn regions

TEST(RegionTest, BinaryOperators) {
  const std::vector<std::string> order = {"A", "B"};
  // A & B: only region 3 (both bits).
  EXPECT_EQ(ResultRegions(*P("A & B"), order),
            (std::vector<uint32_t>{3}));
  // A - B: only region 1.
  EXPECT_EQ(ResultRegions(*P("A - B"), order),
            (std::vector<uint32_t>{1}));
  // A | B: regions 1, 2, 3.
  EXPECT_EQ(ResultRegions(*P("A | B"), order),
            (std::vector<uint32_t>{1, 2, 3}));
}

TEST(RegionTest, PaperExpression) {
  // (A - B) & C over A=bit0, B=bit1, C=bit2 is exactly region 5.
  const std::vector<std::string> order = {"A", "B", "C"};
  EXPECT_EQ(ResultRegions(*P("(A - B) & C"), order),
            (std::vector<uint32_t>{5}));
}

TEST(RegionTest, NamesAbsentFromOrderAreEmptyStreams) {
  // With only A in the order, B is always empty: A - B == A.
  const std::vector<std::string> order = {"A"};
  EXPECT_EQ(ResultRegions(*P("A - B"), order),
            (std::vector<uint32_t>{1}));
  EXPECT_TRUE(ResultRegions(*P("A & B"), order).empty());
}

TEST(RegionTest, RegionCountMatchesTruthTable) {
  // |regions(A | B | C)| = 7 (every non-empty region).
  const std::vector<std::string> order = {"A", "B", "C"};
  EXPECT_EQ(ResultRegions(*P("A | B | C"), order).size(), 7u);
  // A & B & C: the single all-ones region.
  EXPECT_EQ(ResultRegions(*P("A & B & C"), order),
            (std::vector<uint32_t>{7}));
}

}  // namespace
}  // namespace setsketch
