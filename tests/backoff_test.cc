// Tests for the shared retry-pacing policy (util/backoff.h): exact
// doubling/cap numerics, jitter bounds, seed-reproducible schedules, and
// DeriveSeed's identity separation. The schedule is load-bearing for
// three users (client retries, router redial, probe scheduler), so the
// numerics are pinned here rather than re-derived per call site.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/backoff.h"

namespace setsketch {
namespace {

// Strips the jitter factor back out of a delay: the pre-jitter base in
// milliseconds, recovered by re-running the same seeded RNG alongside.
class BaseRecoverer {
 public:
  explicit BaseRecoverer(uint64_t seed) : rng_(seed) {}

  double BaseMs(int64_t delay_micros) {
    const double jitter = 0.5 + rng_.NextDouble();
    return static_cast<double>(delay_micros) / 1000.0 / jitter;
  }

 private:
  Xoshiro256StarStar rng_;
};

TEST(BackoffTest, DelayDoublesUpToCap) {
  const uint64_t seed = 42;
  Backoff backoff(/*initial_ms=*/10, /*cap_ms=*/80, seed);
  BaseRecoverer recover(seed);
  const std::vector<double> expected = {10, 20, 40, 80, 80, 80};
  for (size_t k = 0; k < expected.size(); ++k) {
    const int64_t delay =
        backoff.NextDelayMicros(static_cast<int>(k) + 1);
    EXPECT_NEAR(recover.BaseMs(delay), expected[k], 0.01)
        << "failure count " << (k + 1);
  }
}

TEST(BackoffTest, JitterStaysWithinHalfToThreeHalves) {
  Backoff backoff(/*initial_ms=*/16, /*cap_ms=*/16, /*seed=*/7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t delay = backoff.NextDelayMicros(1);
    EXPECT_GE(delay, 8000);    // 16 ms * 0.5
    EXPECT_LT(delay, 24000);   // 16 ms * 1.5 (exclusive)
  }
}

TEST(BackoffTest, NonPositiveInitialAndCapClampToOneMs) {
  const uint64_t seed = 99;
  Backoff backoff(/*initial_ms=*/0, /*cap_ms=*/0, seed);
  BaseRecoverer recover(seed);
  // initial <= 0 floors at 1 ms; cap <= 0 floors at 1 ms, so the
  // schedule is pinned flat at 1 ms regardless of the failure count.
  EXPECT_NEAR(recover.BaseMs(backoff.NextDelayMicros(1)), 1.0, 0.01);
  EXPECT_NEAR(recover.BaseMs(backoff.NextDelayMicros(10)), 1.0, 0.01);
}

TEST(BackoffTest, DoublingExponentClampsAtTwenty) {
  const uint64_t seed = 1;
  // A huge cap would overflow if the shift were unbounded; the exponent
  // clamp keeps the base at initial * 2^20 from failure 21 onward.
  Backoff backoff(/*initial_ms=*/1, /*cap_ms=*/(1 << 30), seed);
  BaseRecoverer recover(seed);
  const double at_21 = recover.BaseMs(backoff.NextDelayMicros(21));
  const double at_1000 = recover.BaseMs(backoff.NextDelayMicros(1000));
  EXPECT_NEAR(at_21, static_cast<double>(1 << 20), 0.01);
  EXPECT_NEAR(at_1000, static_cast<double>(1 << 20), 0.01);
}

TEST(BackoffTest, FixedSeedReproducesSchedule) {
  Backoff a(5, 1000, /*seed=*/1234);
  Backoff b(5, 1000, /*seed=*/1234);
  for (int k = 1; k <= 32; ++k) {
    EXPECT_EQ(a.NextDelayMicros(k), b.NextDelayMicros(k));
  }
}

TEST(BackoffTest, SetInitialPreservesJitterState) {
  const uint64_t seed = 77;
  Backoff backoff(/*initial_ms=*/1, /*cap_ms=*/64, seed);
  BaseRecoverer recover(seed);
  recover.BaseMs(backoff.NextDelayMicros(1));  // Consume one draw each.
  backoff.set_initial_ms(8);
  EXPECT_EQ(backoff.initial_ms(), 8);
  // The next draw continues the same RNG stream with the new floor.
  EXPECT_NEAR(recover.BaseMs(backoff.NextDelayMicros(1)), 8.0, 0.01);
  EXPECT_NEAR(recover.BaseMs(backoff.NextDelayMicros(2)), 16.0, 0.01);
}

TEST(BackoffTest, DeriveSeedIsDeterministic) {
  const uint64_t a = Backoff::DeriveSeed(0x1234, "site-a", 9001);
  const uint64_t b = Backoff::DeriveSeed(0x1234, "site-a", 9001);
  EXPECT_EQ(a, b);
}

TEST(BackoffTest, DeriveSeedSeparatesIdentities) {
  const uint64_t salt = 0x726F757470726F62ULL;
  const uint64_t base = Backoff::DeriveSeed(salt, "site-a", 9001);
  EXPECT_NE(base, Backoff::DeriveSeed(salt, "site-b", 9001));
  EXPECT_NE(base, Backoff::DeriveSeed(salt, "site-a", 9002));
  EXPECT_NE(base, Backoff::DeriveSeed(salt + 1, "site-a", 9001));
}

}  // namespace
}  // namespace setsketch
