// Concurrency stress tests, written to run under ThreadSanitizer
// (tools/check.sh stage 3: -DSETSKETCH_SANITIZE=thread) but correct in
// every build: each test also asserts functional results, so a plain run
// still verifies behavior while a TSan run additionally proves the
// interleavings are race-free.
//
// Coverage targets the shared-state seams PRs 1–2 introduced:
//   * lazy first use of SketchSeed's bit-sliced SecondLevelSlice from
//     many threads at once (the regression test for the lazy-init race —
//     without the std::call_once publication in SketchSeed::slice(),
//     TSan flags this immediately);
//   * ShardQueue push/drain/shutdown from concurrent producers and a
//     consumer, including Stop() racing active pushes;
//   * ParallelIngest fanning one update batch over a shared SketchBank;
//   * SketchServer serving PUSH/QUERY/STATS from concurrent clients;
//   * Wal appends from many threads racing a rotation (the shard-mutex
//     seam the fault-tolerance PR introduced);
//   * the cluster router's probe loop, repair sweeps, and online
//     membership changes racing forwarded pushes and federated queries
//     (the write gate / placement / in-doubt seams of the self-healing
//     PR).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_router.h"
#include "core/sketch_bank.h"
#include "core/sketch_seed.h"
#include "query/parallel_ingest.h"
#include "server/shard_queue.h"
#include "server/sketch_client.h"
#include "server/sketch_server.h"
#include "server/wal.h"
#include "stream/update.h"

namespace setsketch {
namespace {

/// Spin barrier: release all threads into the contended region at once so
/// short critical sections actually overlap instead of serializing on
/// thread start-up latency.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : waiting_(parties) {}

  void ArriveAndWait() {
    waiting_.fetch_sub(1, std::memory_order_acq_rel);
    while (waiting_.load(std::memory_order_acquire) > 0) {
    }
  }

 private:
  std::atomic<int> waiting_;
};

SketchParams SmallParams() {
  SketchParams params;
  params.levels = 24;
  params.num_second_level = 32;
  return params;
}

// --- Lazy SecondLevelSlice publication ----------------------------------

TEST(TsanConcurrencyTest, LazySliceConcurrentFirstUseIsRaceFree) {
  // Fresh seed per round so every round re-runs the lazy *first* build;
  // several rounds give the scheduler chances to overlap the window.
  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) {
    const SketchSeed seed(SmallParams(), 0x5EEDF00DULL + round);
    SpinBarrier barrier(kThreads);
    std::vector<const SecondLevelSlice*> seen(kThreads, nullptr);
    std::vector<uint64_t> bits(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        barrier.ArriveAndWait();
        const SecondLevelSlice* slice = seed.slice();
        seen[static_cast<size_t>(t)] = slice;
        bits[static_cast<size_t>(t)] =
            slice->Bits(0x9E3779B97F4A7C15ULL * (round + 1));
      });
    }
    for (std::thread& thread : threads) thread.join();
    // One fully built slice, observed identically by every thread.
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]) << "thread " << t;
      EXPECT_EQ(bits[static_cast<size_t>(t)], bits[0]) << "thread " << t;
    }
    // The lazily built slice agrees with per-function scalar evaluation.
    const uint64_t probe = 0x9E3779B97F4A7C15ULL * (round + 1);
    uint64_t scalar = 0;
    for (int j = 0; j < seed.num_second_level(); ++j) {
      scalar |= static_cast<uint64_t>(seed.second_level(j)(probe)) << j;
    }
    EXPECT_EQ(bits[0], scalar);
  }
}

// --- ShardQueue under producer/consumer/shutdown contention -------------

TEST(TsanConcurrencyTest, ShardQueuePushDrainShutdownStress) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;
  ShardQueue queue(8);

  // Producers follow the server's admission protocol: CanAccept + Push
  // under one shared producer mutex (Push itself is unconditional).
  std::mutex push_mutex;
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> refused{0};
  SpinBarrier barrier(kProducers + 1);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      barrier.ArriveAndWait();
      for (int i = 0; i < kPerProducer; ++i) {
        std::lock_guard<std::mutex> lock(push_mutex);
        if (queue.CanAccept()) {
          ASSERT_TRUE(queue.Push(std::make_shared<IngestBatch>()));
          ++pushed;
        } else {
          queue.CountRejected();
          ++refused;
        }
      }
    });
  }

  std::atomic<uint64_t> drained{0};
  std::thread consumer([&] {
    barrier.ArriveAndWait();
    while (queue.PopOrWait() != nullptr) {
      ++drained;
      queue.TaskDone();
    }
  });

  for (std::thread& producer : producers) producer.join();
  queue.WaitDrained();
  queue.Stop();  // Races the consumer's PopOrWait on purpose.
  consumer.join();

  EXPECT_EQ(drained.load(), pushed.load());
  EXPECT_EQ(pushed.load() + refused.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  const ShardQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.pushed, pushed.load());
  EXPECT_EQ(stats.rejected, refused.load());
  EXPECT_EQ(stats.depth, 0u);
}

TEST(TsanConcurrencyTest, ShardQueueStopRacingActivePushes) {
  // Stop() fired from a second thread mid-stream: pushes after the stop
  // return false, everything pushed before is still delivered (drain
  // semantics), and no accounting is lost in the race window.
  for (int round = 0; round < 20; ++round) {
    ShardQueue queue(64);
    std::atomic<uint64_t> accepted{0};
    std::atomic<bool> stop_issued{false};
    SpinBarrier barrier(3);
    std::thread producer([&] {
      barrier.ArriveAndWait();
      // Single producer: CanAccept-then-Push needs no producer mutex
      // (only the consumer changes in_flight concurrently, downwards).
      for (int i = 0; i < 200; ++i) {
        if (!queue.CanAccept()) {
          if (stop_issued.load()) break;
          continue;  // Full: retry; the consumer is draining.
        }
        if (!queue.Push(std::make_shared<IngestBatch>())) break;
        ++accepted;
      }
    });
    std::thread stopper([&] {
      barrier.ArriveAndWait();
      stop_issued.store(true);
      queue.Stop();
    });
    uint64_t drained = 0;
    barrier.ArriveAndWait();
    while (queue.PopOrWait() != nullptr) {
      ++drained;
      queue.TaskDone();
    }
    producer.join();
    stopper.join();
    // The consumer loop exits only once stopped AND empty, so every
    // accepted batch was delivered... but late pushes can land after the
    // consumer saw the stopped+empty state; drain the remainder.
    while (queue.PopOrWait() != nullptr) {
      ++drained;
      queue.TaskDone();
    }
    EXPECT_EQ(drained, accepted.load()) << "round " << round;
  }
}

// --- ParallelIngest over a shared bank ----------------------------------

TEST(TsanConcurrencyTest, ParallelIngestSharedBankMatchesSerial) {
  const SketchParams params = SmallParams();
  constexpr int kCopies = 32;
  constexpr uint64_t kSeed = 20030609;
  const std::vector<std::string> names = {"A", "B", "C"};

  std::vector<Update> updates;
  updates.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t element =
        static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 1;
    updates.push_back(Update{static_cast<StreamId>(i % 3), element,
                             i % 7 == 6 ? -1 : 1});
  }

  SketchBank parallel_bank(SketchFamily(params, kCopies, kSeed));
  SketchBank serial_bank(SketchFamily(params, kCopies, kSeed));
  for (const std::string& name : names) {
    parallel_bank.AddStream(name);
    serial_bank.AddStream(name);
  }

  const size_t applied =
      ParallelIngest(&parallel_bank, names, updates, /*threads=*/4);
  EXPECT_EQ(applied, updates.size());
  for (const Update& u : updates) {
    serial_bank.Apply(names[u.stream], u.element, u.delta);
  }

  // Copy-range ownership must leave the result bit-identical to serial.
  for (const std::string& name : names) {
    const auto& got = parallel_bank.Sketches(name);
    const auto& want = serial_bank.Sketches(name);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i] == want[i]) << name << " copy " << i;
    }
  }
}

// --- WAL appends racing rotation ----------------------------------------

TEST(TsanConcurrencyTest, WalConcurrentAppendsAndRotationLoseNoRecord) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "tsan_wal_stress";
  std::filesystem::remove_all(dir);

  Wal::Options options;
  options.dir = dir.string();
  options.shards = 2;
  options.fsync = false;  // Contention is the point here, not durability.
  std::string open_error;
  std::unique_ptr<Wal> wal = Wal::Open(options, 0, &open_error);
  ASSERT_NE(wal, nullptr) << open_error;

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 150;
  SpinBarrier barrier(kWriters + 1);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&wal, &barrier, w] {
      barrier.ArriveAndWait();
      for (int i = 0; i < kPerWriter; ++i) {
        WalRecord record;
        record.site_id = "writer-" + std::to_string(w);
        record.sequence = static_cast<uint64_t>(i) + 1;
        record.payload = "payload";
        std::string error;
        ASSERT_TRUE(wal->Append(record, &error)) << error;
      }
    });
  }
  // Rotations race the appends: each append lands entirely in one
  // generation or the next, never torn across the boundary.
  std::thread rotator([&wal, &barrier] {
    barrier.ArriveAndWait();
    for (int r = 0; r < 5; ++r) {
      uint64_t previous = 0;
      std::string error;
      ASSERT_TRUE(wal->Rotate(&previous, &error)) << error;
    }
  });
  for (std::thread& writer : writers) writer.join();
  rotator.join();
  EXPECT_EQ(wal->records_appended(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  wal.reset();

  // Every appended record replays exactly once across all generations.
  std::vector<uint64_t> per_writer_sum(kWriters, 0);
  WalReplayStats stats;
  std::string replay_error;
  ASSERT_TRUE(Wal::Replay(
      options.dir, 0,
      [&per_writer_sum](const WalRecord& record) {
        const int writer = record.site_id.back() - '0';
        ASSERT_GE(writer, 0);
        ASSERT_LT(writer, static_cast<int>(per_writer_sum.size()));
        per_writer_sum[static_cast<size_t>(writer)] += record.sequence;
      },
      &stats, &replay_error))
      << replay_error;
  EXPECT_EQ(stats.records_replayed,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(stats.torn_segments, 0u);
  constexpr uint64_t kExpectedSum =
      static_cast<uint64_t>(kPerWriter) * (kPerWriter + 1) / 2;
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(per_writer_sum[static_cast<size_t>(w)], kExpectedSum)
        << "writer " << w;
  }
}

// --- SketchServer under mixed concurrent load ---------------------------

TEST(TsanConcurrencyTest, ServerConcurrentPushQueryStats) {
  SketchServer::Options options;
  options.params = SmallParams();
  options.copies = 32;
  options.seed = 4242;
  options.shards = 2;
  options.queue_capacity = 4;
  options.witness.pool_all_levels = true;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kPushers = 2;
  constexpr int kBatches = 25;
  constexpr int kPerBatch = 200;
  SpinBarrier barrier(kPushers + 2);
  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&server, &barrier, p] {
      std::string connect_error;
      auto client =
          SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
      ASSERT_NE(client, nullptr) << connect_error;
      barrier.ArriveAndWait();
      for (int b = 0; b < kBatches; ++b) {
        UpdateBatch batch;
        batch.stream_names = {"A", "B"};
        batch.updates.reserve(kPerBatch);
        for (int i = 0; i < kPerBatch; ++i) {
          const uint64_t element = static_cast<uint64_t>(
              (p * kBatches + b) * kPerBatch + i) * 2654435761ULL + 1;
          batch.updates.push_back(
              Update{static_cast<StreamId>(i % 2), element, 1});
        }
        const SketchClient::Status status =
            client->PushUpdatesWithRetry(batch);
        ASSERT_TRUE(status.ok) << status.error;
      }
    });
  }

  std::atomic<bool> done{false};
  std::thread querier([&server, &barrier, &done] {
    std::string connect_error;
    auto client =
        SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
    ASSERT_NE(client, nullptr) << connect_error;
    barrier.ArriveAndWait();
    while (!done.load()) {
      const QueryResultInfo answer = client->Query("A | B");
      // Before any push lands the streams may be unknown; both outcomes
      // are legal mid-stream, racing answers must just never crash.
      if (answer.ok) {
        EXPECT_GE(answer.estimate, 0.0);
      }
    }
  });
  std::thread statser([&server, &barrier, &done] {
    std::string connect_error;
    auto client =
        SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
    ASSERT_NE(client, nullptr) << connect_error;
    barrier.ArriveAndWait();
    std::string text;
    while (!done.load()) {
      ASSERT_TRUE(client->Stats(&text).ok);
    }
  });

  for (std::thread& pusher : pushers) pusher.join();
  done.store(true);
  querier.join();
  statser.join();

  server.Stop();
  const SketchServer::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.updates_applied,
            static_cast<uint64_t>(kPushers) * kBatches * kPerBatch);
}

// --- Plan cache under concurrent QUERY vs PUSH_UPDATES ------------------

TEST(TsanConcurrencyTest, ServerPlanCacheConcurrentQueryVsPush) {
  // Queriers hammer one logical query in two equivalent spellings (plus
  // EXPLAIN) while pushers mutate the very streams it reads. The plan
  // cache memoizes, invalidates on ingest epochs, and rebuilds merges
  // concurrently with admission — TSan proves the locking; the functional
  // assertions prove answers stay sane and the counters stay coherent.
  SketchServer::Options options;
  options.params = SmallParams();
  options.copies = 32;
  options.seed = 777;
  options.shards = 2;
  options.queue_capacity = 4;
  options.witness.pool_all_levels = true;
  SketchServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kPushers = 2;
  constexpr int kQueriers = 2;
  constexpr int kBatches = 20;
  constexpr int kPerBatch = 150;
  SpinBarrier barrier(kPushers + kQueriers);

  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&server, &barrier, p] {
      std::string connect_error;
      auto client =
          SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
      ASSERT_NE(client, nullptr) << connect_error;
      barrier.ArriveAndWait();
      for (int b = 0; b < kBatches; ++b) {
        UpdateBatch batch;
        batch.stream_names = {"A", "B", "C"};
        batch.updates.reserve(kPerBatch);
        for (int i = 0; i < kPerBatch; ++i) {
          const uint64_t element = static_cast<uint64_t>(
              (p * kBatches + b) * kPerBatch + i) * 0x9E3779B97F4A7C15ULL;
          batch.updates.push_back(
              Update{static_cast<StreamId>(i % 3), element | 1, 1});
        }
        ASSERT_TRUE(client->PushUpdatesWithRetry(batch).ok);
      }
    });
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> queriers;
  queriers.reserve(kQueriers);
  for (int q = 0; q < kQueriers; ++q) {
    queriers.emplace_back([&server, &barrier, &done, q] {
      std::string connect_error;
      auto client =
          SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
      ASSERT_NE(client, nullptr) << connect_error;
      // Equivalent spellings: both canonicalize to one cached plan, so
      // the queriers contend on the same entry from both sides.
      const std::string spelling =
          q % 2 == 0 ? "A | (B & C)" : "(C & B) | A";
      barrier.ArriveAndWait();
      while (!done.load()) {
        const QueryResultInfo answer = client->Query(spelling);
        if (answer.ok) {
          EXPECT_GE(answer.estimate, 0.0);
          EXPECT_LE(answer.lo, answer.hi);
        }
        std::string report;
        ASSERT_TRUE(client->Explain(spelling, &report).ok);
        EXPECT_NE(report.find("canonical plan"), std::string::npos);
      }
    });
  }

  for (std::thread& pusher : pushers) pusher.join();
  done.store(true);
  for (std::thread& querier : queriers) querier.join();

  // Quiescent now: one query warms (or reuses) the plan, the repeat must
  // be a pure cache hit with a bit-identical answer.
  {
    std::string connect_error;
    auto client =
        SketchClient::Connect("127.0.0.1", server.port(), &connect_error);
    ASSERT_NE(client, nullptr) << connect_error;
    const QueryResultInfo warm = client->Query("A | (B & C)");
    ASSERT_TRUE(warm.ok) << warm.error;
    const SketchServer::StatsSnapshot before = server.stats();
    const QueryResultInfo repeat = client->Query("(C & B) | A");
    ASSERT_TRUE(repeat.ok) << repeat.error;
    EXPECT_EQ(repeat.estimate, warm.estimate);
    const SketchServer::StatsSnapshot after = server.stats();
    EXPECT_EQ(after.plan_cache_hits, before.plan_cache_hits + 1);
    EXPECT_EQ(after.plan_cache_misses, before.plan_cache_misses);
  }

  server.Stop();
  const SketchServer::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.updates_applied,
            static_cast<uint64_t>(kPushers) * kBatches * kPerBatch);
  // Every planned query is accounted as hit, miss, or invalidation.
  EXPECT_GT(stats.plan_cache_hits + stats.plan_cache_misses +
                stats.plan_cache_invalidations,
            0u);
}

// --- Cluster router: probe/repair/membership racing PUSH + QUERY --------

TEST(TsanConcurrencyTest, RouterRepairMembershipPushQueryStress) {
  // The self-healing router's shared-state seams all at once: the
  // background probe loop, explicit RepairShard sweeps, online
  // add-shard/drain-shard (write-gate exclusive transfers + dual-write
  // overlay + ring flips) — all racing client pushes and federated
  // queries. Functional bar: every acknowledged batch lands exactly once,
  // so the final federated answers match a fault-free reference server
  // bit-for-bit.
  SketchServer::Options shard_options;
  shard_options.params = SmallParams();
  shard_options.copies = 32;
  shard_options.seed = 20030609;
  shard_options.shards = 2;
  shard_options.queue_capacity = 16;
  shard_options.witness.pool_all_levels = true;
  SketchServer s0(shard_options);
  SketchServer s1(shard_options);
  SketchServer extra(shard_options);
  SketchServer reference(shard_options);
  std::string error;
  ASSERT_TRUE(s0.Start(&error)) << error;
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(extra.Start(&error)) << error;
  ASSERT_TRUE(reference.Start(&error)) << error;

  ClusterRouter::Options options;
  {
    ClusterShard shard;
    shard.name = "s0";
    shard.host = "127.0.0.1";
    shard.port = s0.port();
    options.shards.push_back(shard);
    shard.name = "s1";
    shard.port = s1.port();
    options.shards.push_back(shard);
  }
  options.replicas = 1;
  options.params = SmallParams();
  options.copies = 32;
  options.seed = 20030609;
  options.witness.pool_all_levels = true;
  options.probe_interval_ms = 10;  // Background probe loop is live.
  options.shard_connect_timeout_ms = 1000;
  options.shard_io_timeout_ms = 5000;
  ClusterRouter router(options);
  ASSERT_TRUE(router.Start(&error)) << error;
  ASSERT_EQ(router.ProbeAll(), 2u);

  constexpr int kPushers = 2;
  constexpr int kBatches = 20;
  constexpr int kPerBatch = 60;
  SpinBarrier barrier(kPushers + 3);

  std::vector<std::thread> pushers;
  pushers.reserve(kPushers);
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&router, &reference, &barrier, p] {
      SketchClient::Options client_options;
      client_options.port = router.port();
      client_options.site_id = "stress-" + std::to_string(p);
      std::string connect_error;
      auto via_router =
          SketchClient::Connect(client_options, &connect_error);
      ASSERT_NE(via_router, nullptr) << connect_error;
      client_options.port = reference.port();
      auto via_reference =
          SketchClient::Connect(client_options, &connect_error);
      ASSERT_NE(via_reference, nullptr) << connect_error;
      barrier.ArriveAndWait();
      for (int b = 0; b < kBatches; ++b) {
        UpdateBatch batch;
        batch.stream_names = {"A", "B", "C"};
        batch.updates.reserve(kPerBatch);
        for (int i = 0; i < kPerBatch; ++i) {
          const uint64_t element = static_cast<uint64_t>(
              (p * kBatches + b) * kPerBatch + i) * 2654435761ULL + 3;
          batch.updates.push_back(
              Update{static_cast<StreamId>(i % 3), element, 1});
        }
        ASSERT_TRUE(via_router->PushUpdatesWithRetry(batch).ok);
        ASSERT_TRUE(via_reference->PushUpdatesWithRetry(batch).ok);
      }
    });
  }

  std::atomic<bool> done{false};
  std::thread querier([&router, &barrier, &done] {
    std::string connect_error;
    auto client =
        SketchClient::Connect("127.0.0.1", router.port(), &connect_error);
    ASSERT_NE(client, nullptr) << connect_error;
    barrier.ArriveAndWait();
    while (!done.load()) {
      const QueryResultInfo answer = client->Query("(A | B) & C");
      // Unknown streams before the first push lands are legal; once
      // answers come they must be sane.
      if (answer.ok) {
        EXPECT_GE(answer.estimate, 0.0);
      }
    }
  });
  std::thread repairer([&router, &barrier, &done] {
    barrier.ArriveAndWait();
    while (!done.load()) {
      // Healthy, non-stale shards converge trivially — the point is the
      // lock interleaving with pushes, probes, and transfers.
      router.RepairShard("s0");
      router.RepairShard("s1");
      router.ProbeAll();
    }
  });
  std::thread membership([&router, &extra, &barrier] {
    barrier.ArriveAndWait();
    for (int cycle = 0; cycle < 3; ++cycle) {
      ClusterShard joining;
      joining.name = "extra";
      joining.host = "127.0.0.1";
      joining.port = extra.port();
      uint64_t moved = 0;
      std::string member_error;
      ASSERT_TRUE(router.AddShard(joining, &moved, &member_error))
          << "cycle " << cycle << ": " << member_error;
      ASSERT_TRUE(router.DrainShard("extra", &moved, &member_error))
          << "cycle " << cycle << ": " << member_error;
    }
  });

  for (std::thread& pusher : pushers) pusher.join();
  membership.join();
  done.store(true);
  querier.join();
  repairer.join();

  // Quiescent: the federated view must equal the fault-free reference
  // exactly — no batch lost or double-applied across all the transfers.
  {
    std::string connect_error;
    auto via_router =
        SketchClient::Connect("127.0.0.1", router.port(), &connect_error);
    ASSERT_NE(via_router, nullptr) << connect_error;
    auto via_reference = SketchClient::Connect(
        "127.0.0.1", reference.port(), &connect_error);
    ASSERT_NE(via_reference, nullptr) << connect_error;
    for (const char* expression :
         {"A", "B", "C", "(A | B) & C", "A - (B & C)"}) {
      const QueryResultInfo fed = via_router->Query(expression);
      const QueryResultInfo ref = via_reference->Query(expression);
      ASSERT_TRUE(ref.ok) << expression << ": " << ref.error;
      ASSERT_TRUE(fed.ok) << expression << ": " << fed.error;
      EXPECT_EQ(fed.estimate, ref.estimate) << expression;
      EXPECT_EQ(fed.lo, ref.lo) << expression;
      EXPECT_EQ(fed.hi, ref.hi) << expression;
    }
  }

  router.Stop();
  s0.Stop();
  s1.Stop();
  extra.Stop();
  reference.Stop();
}

}  // namespace
}  // namespace setsketch
