// Monte-Carlo verification of the paper's statistical building blocks:
// the property-check confidence of Lemma 3.1, the witness-probability
// identities of Sections 3.4/3.5/4, and the limited-independence
// approximations of Section 3.6 (Corollary 3.7 / Lemma 3.8 in spirit).
//
// These tests simulate the randomized quantities across many seeds and
// check the empirical frequencies against the closed forms the analysis
// derives. Tolerances are several sigma wide; seeds are fixed, so the
// tests are deterministic.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/property_checks.h"
#include "core/sketch_seed.h"
#include "hash/prng.h"

namespace setsketch {
namespace {

// Lemma 3.1: SingletonBucket errs (declares a 2-element bucket a
// singleton) with probability 2^-s.
TEST(Lemma31Test, SingletonFalsePositiveRateIsTwoToMinusS) {
  const int s = 4;  // Small s so errors are observable: rate 1/16.
  SketchParams params;
  params.levels = 8;
  params.num_second_level = s;
  int trials = 0, errors = 0;
  for (uint64_t seed = 0; seed < 4000; ++seed) {
    const auto sketch_seed =
        std::make_shared<const SketchSeed>(params, seed);
    // Two fixed distinct elements; force them into one bucket by finding
    // a pair that shares a level under this seed.
    uint64_t e1 = 1, e2 = 2;
    bool found = false;
    for (uint64_t probe = 2; probe < 40 && !found; ++probe) {
      if (sketch_seed->Level(probe) == sketch_seed->Level(1)) {
        e2 = probe;
        found = true;
      }
    }
    if (!found) continue;
    TwoLevelHashSketch sketch(sketch_seed);
    sketch.Update(e1, 1);
    sketch.Update(e2, 1);
    ++trials;
    if (SingletonBucket(sketch, sketch_seed->Level(1))) ++errors;
  }
  ASSERT_GT(trials, 2000);
  const double rate = static_cast<double>(errors) / trials;
  const double expected = std::exp2(-s);
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(rate, expected, 6 * sigma)
      << errors << "/" << trials;
}

// Section 3.4's witness identity: conditioned on a bucket being a
// singleton for A u B, the probability it witnesses A - B is exactly
// |A - B| / |A u B| — at ANY level (the fact pooled sampling relies on).
TEST(WitnessIdentityTest, ConditionalWitnessProbabilityIsRatio) {
  SketchParams params;
  params.levels = 16;
  params.num_second_level = 16;
  // Fixed sets: |A u B| = 64, |A - B| = 16.
  const int total = 64, only_a = 16;
  int valid = 0, witnesses = 0;
  for (uint64_t seed = 0; seed < 6000; ++seed) {
    const auto sketch_seed =
        std::make_shared<const SketchSeed>(params, 777000 + seed);
    TwoLevelHashSketch a(sketch_seed), b(sketch_seed);
    for (int e = 0; e < total; ++e) {
      const uint64_t elem = static_cast<uint64_t>(e) * 2654435761ULL + 9;
      if (e < only_a) {
        a.Update(elem, 1);
      } else {
        // Shared or B-only; membership of A does not matter for the
        // denominator, put half in both and half only in B.
        if (e % 2 == 0) a.Update(elem, 1);
        b.Update(elem, 1);
      }
    }
    // Examine one mid-range level per trial.
    const int level = 3 + static_cast<int>(seed % 4);
    if (!SingletonUnionBucket(a, b, level)) continue;
    ++valid;
    if (SingletonBucket(a, level) && BucketEmpty(b, level)) ++witnesses;
  }
  ASSERT_GT(valid, 500);
  const double rate = static_cast<double>(witnesses) / valid;
  const double expected = static_cast<double>(only_a) / total;
  const double sigma = std::sqrt(expected * (1 - expected) / valid);
  EXPECT_NEAR(rate, expected, 6 * sigma) << witnesses << "/" << valid;
}

// Section 3.3's occupancy law: P[bucket j non-empty] = 1 - (1 - 1/R)^u
// with R = 2^(j+1), for both hash families.
class OccupancyLawTest : public ::testing::TestWithParam<FirstLevelKind> {};

TEST_P(OccupancyLawTest, NonEmptyProbabilityMatchesClosedForm) {
  SketchParams params;
  params.levels = 16;
  params.num_second_level = 4;
  params.first_level_kind = GetParam();
  params.independence = 8;
  const int u = 96;
  const int level = 6;  // R = 128, p ~ 0.53.
  int nonempty = 0;
  const int trials = 3000;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    const auto sketch_seed =
        std::make_shared<const SketchSeed>(params, 31000 + seed);
    TwoLevelHashSketch sketch(sketch_seed);
    for (int e = 0; e < u; ++e) {
      sketch.Update(static_cast<uint64_t>(e) * 48271 + 5, 1);
    }
    if (!sketch.LevelEmpty(level)) ++nonempty;
  }
  const double big_r = std::exp2(level + 1);
  const double expected = 1.0 - std::pow(1.0 - 1.0 / big_r, u);
  const double rate = static_cast<double>(nonempty) / trials;
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(rate, expected, 6 * sigma);
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, OccupancyLawTest,
                         ::testing::Values(FirstLevelKind::kMix64,
                                           FirstLevelKind::kKWisePoly));

// Section 3.6 in spirit: the occupancy probability under t-wise
// independent hashing matches the fully-independent closed form to within
// small relative error for t >= 4 (Corollary 3.7's regime).
TEST(LimitedIndependenceTest, TWiseOccupancyTracksClosedForm) {
  for (int t : {4, 8}) {
    SketchParams params;
    params.levels = 16;
    params.num_second_level = 4;
    params.first_level_kind = FirstLevelKind::kKWisePoly;
    params.independence = t;
    const int u = 48;
    const int level = 7;  // R = 256: u/R ~ 0.19 < 1/4 (small-p regime).
    int nonempty = 0;
    const int trials = 3000;
    for (uint64_t seed = 0; seed < trials; ++seed) {
      const auto sketch_seed =
          std::make_shared<const SketchSeed>(params, 91000 + seed);
      TwoLevelHashSketch sketch(sketch_seed);
      for (int e = 0; e < u; ++e) {
        sketch.Update(static_cast<uint64_t>(e) * 16807 + 3, 1);
      }
      if (!sketch.LevelEmpty(level)) ++nonempty;
    }
    const double big_r = std::exp2(level + 1);
    const double expected = 1.0 - std::pow(1.0 - 1.0 / big_r, u);
    const double rate = static_cast<double>(nonempty) / trials;
    const double sigma = std::sqrt(expected * (1 - expected) / trials);
    EXPECT_NEAR(rate, expected, 6 * sigma) << "t = " << t;
  }
}

// The singleton probability (u/R)(1 - 1/R)^(u-1) underlying the witness
// estimators' valid-observation analysis.
TEST(SingletonLawTest, UnionSingletonProbabilityMatchesClosedForm) {
  SketchParams params;
  params.levels = 16;
  params.num_second_level = 16;
  const int u = 32;
  const int level = 7;  // R = 256.
  int singletons = 0;
  const int trials = 4000;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    const auto sketch_seed =
        std::make_shared<const SketchSeed>(params, 52000 + seed);
    TwoLevelHashSketch sketch(sketch_seed);
    for (int e = 0; e < u; ++e) {
      sketch.Update(static_cast<uint64_t>(e) * 104729 + 1, 1);
    }
    if (SingletonBucket(sketch, level)) ++singletons;
  }
  const double big_r = std::exp2(level + 1);
  const double expected =
      (u / big_r) * std::pow(1.0 - 1.0 / big_r, u - 1);
  const double rate = static_cast<double>(singletons) / trials;
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(rate, expected, 6 * sigma);
}

}  // namespace
}  // namespace setsketch
